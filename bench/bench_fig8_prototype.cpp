// Figure 8 + Table 1: the prototype experiment. Six DL jobs (Table 1)
// arrive at a single Minsky machine; BF, FCFS, TOPO-AWARE and
// TOPO-AWARE-P each schedule the same workload. Reproduces:
//   (a)-(d) the per-GPU placement timelines,
//   (e) per-job QoS slowdown vs the ideal run,
//   (f) QoS + queue-waiting slowdown,
//   and the cumulative-execution-time speedup (paper: BF 461.7 s, FCFS
//   456.2 s, TOPO-AWARE 454.2 s, TOPO-AWARE-P 356.9 s => ~1.30x).
//
// --golden-out regenerates the golden metrics file the golden_test ctest
// compares against:
//   build-release/bench/bench_fig8_prototype --golden-out tests/golden/fig8.json
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "runner/experiments.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("golden-out",
                 "write the Fig. 8 golden metrics JSON here and exit", "");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (const std::string out = cli.get("golden-out"); !out.empty()) {
    json::WriteOptions pretty;
    pretty.indent = 2;
    if (auto status = json::write_file(runner::fig8_payload(), out, pretty);
        !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
  }

  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);

  std::printf("Table 1 workload:\n");
  metrics::Table config({"job", "NN", "batch", "GPUs", "min utility",
                         "arrival(s)", "iterations"});
  for (const auto& job : jobs) {
    config.add_row({std::to_string(job.id),
                    std::string(jobgraph::to_string(job.profile.nn)),
                    std::to_string(job.profile.batch_size),
                    std::to_string(job.num_gpus),
                    util::format_double(job.min_utility, 1),
                    util::format_double(job.arrival_time, 2),
                    std::to_string(job.iterations)});
  }
  std::fputs(config.render().c_str(), stdout);

  metrics::Table summary({"policy", "cumulative time(s)", "speedup vs BF",
                          "SLO violations", "mean wait(s)"});
  double bf_makespan = 0.0;
  for (const sched::Policy policy :
       {sched::Policy::kBestFit, sched::Policy::kFcfs,
        sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
    const auto report = exp::run_policy(policy, jobs, minsky, model);
    if (policy == sched::Policy::kBestFit) {
      bf_makespan = report.recorder.makespan();
    }
    std::printf("\n(%s) GPU timeline:\n%s",
                std::string(sched::to_string(policy)).c_str(),
                report.recorder
                    .render_timeline(minsky, /*t_end=*/0.0, /*columns=*/72)
                    .c_str());
    metrics::Table detail({"job", "start(s)", "end(s)", "GPUs", "utility",
                           "P2P", "QoS slowdown", "QoS+wait slowdown"});
    for (const auto& record : report.recorder.records()) {
      std::string gpu_list;
      for (const int gpu : record.gpus) {
        if (!gpu_list.empty()) gpu_list += ",";
        gpu_list += std::to_string(gpu);
      }
      detail.add_row({std::to_string(record.id),
                      util::format_double(record.start, 1),
                      util::format_double(record.end, 1), gpu_list,
                      util::format_double(record.placement_utility, 2),
                      record.p2p ? "yes" : "no",
                      util::format_double(record.qos_slowdown(), 2),
                      util::format_double(record.qos_wait_slowdown(), 2)});
    }
    std::fputs(detail.render().c_str(), stdout);
    summary.add_row(
        {std::string(sched::to_string(policy)),
         util::format_double(report.recorder.makespan(), 1),
         util::format_double(bf_makespan / report.recorder.makespan(), 3),
         std::to_string(report.recorder.slo_violations()),
         util::format_double(report.recorder.mean_waiting_time(), 1)});
  }
  std::printf("\n");
  std::fputs(summary.render("Fig. 8 summary (paper: TOPO-AWARE-P ~1.30x "
                            "over BF, zero SLO violations)")
                 .c_str(),
             stdout);
  return 0;
}
