// Section 5.5.3 — scheduler overhead sweep: per-decision latency versus
// cluster size x job-graph size.
//
// The paper reports the decision time of the topology-aware scheduler
// growing with both the cluster and the job graph (~3 s for
// TOPO-AWARE[-P] vs ~0.45 s for the greedy policies at 1k machines with
// their Python/C prototype). The C++ reproduction is orders of magnitude
// faster, but the artifact is the same shape: the greedy-vs-topology-aware
// gap and the growth trend across the (machines x tasks-per-job) grid.
//
// Each grid cell is a sweep scenario; each (scenario, seed) replica runs
// the full four-policy comparison on a workload whose jobs all request
// `tasks` GPUs (so the DRB job-graph size is controlled). Latencies come
// from the driver's always-on per-decision histogram and land in the
// payload "timing" subtree, keeping the deterministic sections of
// BENCH_overhead.json byte-identical across thread counts and obs modes.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "perf/profile.hpp"
#include "runner/experiments.hpp"
#include "sim/arrivals.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;

util::Expected<std::vector<int>> parse_int_list(const std::string& spec,
                                                const char* what) {
  std::vector<int> values;
  for (const auto& token : util::split(spec, ',')) {
    const std::string_view trimmed = util::trim(token);
    if (trimmed.empty()) continue;
    const auto value = util::parse_int(trimmed);
    if (!value || *value <= 0) {
      return util::Error{std::string(what) + ": bad entry '" +
                         std::string(trimmed) + "'"};
    }
    values.push_back(static_cast<int>(*value));
  }
  if (values.empty()) {
    return util::Error{std::string(what) + ": empty list"};
  }
  return values;
}

/// A controlled-size workload: `job_count` jobs, each an all-to-all job
/// graph over `tasks` GPUs, NN/batch mix cycled deterministically, Poisson
/// arrivals scaled to the cluster like the Section 5.5 scenarios.
std::vector<jobgraph::JobRequest> overhead_jobs(
    int job_count, int tasks, long long iterations,
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    util::Rng& rng) {
  util::Rng arrival_rng = rng.fork(1);
  const double rate_per_minute =
      10.0 * static_cast<double>(topology.machine_count()) / 5.0;
  const std::vector<double> arrivals =
      sim::poisson_arrivals(job_count, rate_per_minute, arrival_rng);

  const jobgraph::NeuralNet nets[] = {jobgraph::NeuralNet::kAlexNet,
                                      jobgraph::NeuralNet::kCaffeRef,
                                      jobgraph::NeuralNet::kGoogLeNet};
  const int batches[] = {1, 4, 16};
  const int per_machine =
      static_cast<int>(topology.gpus_of_machine(0).size());

  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  for (int i = 0; i < job_count; ++i) {
    jobgraph::JobRequest request = perf::make_profiled_dl(
        i, arrivals[static_cast<size_t>(i)], nets[i % 3],
        batches[(i / 3) % 3], tasks, tasks == 1 ? 0.3 : 0.5, model, topology,
        iterations);
    // Jobs larger than one machine must be allowed to span machines.
    if (tasks > per_machine) request.profile.single_node = false;
    jobs.push_back(std::move(request));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("machines", "cluster sizes to sweep", "5,20,50");
  cli.add_option("tasks", "job-graph sizes (GPUs per job) to sweep", "2,4,8");
  cli.add_option("jobs", "jobs per replica", "40");
  cli.add_option("iterations", "training iterations per job", "250");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("repeats",
                 "per-replica repetitions; each policy keeps the timing "
                 "subtree of its fastest run (min mean decision latency), "
                 "stabilizing the perf gate against scheduler noise", "1");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }
  const auto machines = parse_int_list(cli.get("machines"), "machines");
  if (!machines) {
    std::fprintf(stderr, "%s\n", machines.error().message.c_str());
    return 1;
  }
  const auto tasks = parse_int_list(cli.get("tasks"), "tasks");
  if (!tasks) {
    std::fprintf(stderr, "%s\n", tasks.error().message.c_str());
    return 1;
  }
  const int job_count = static_cast<int>(cli.get_int("jobs"));
  const long long iterations = cli.get_int("iterations");
  const int repeats = static_cast<int>(cli.get_int("repeats"));
  if (repeats < 1) {
    std::fprintf(stderr, "--repeats must be >= 1\n");
    return 1;
  }

  runner::SweepOptions options;
  options.name = "overhead";
  options.scenarios.clear();
  for (const int m : *machines) {
    for (const int t : *tasks) {
      options.scenarios.push_back("minsky-" + std::to_string(m) + "m-" +
                                  std::to_string(t) + "t");
    }
  }
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "overhead";
  {
    json::Array grid_machines;
    for (const int m : *machines) grid_machines.push_back(m);
    options.metadata["machines"] = std::move(grid_machines);
    json::Array grid_tasks;
    for (const int t : *tasks) grid_tasks.push_back(t);
    options.metadata["tasks"] = std::move(grid_tasks);
  }
  options.metadata["jobs"] = job_count;
  options.metadata["iterations"] = iterations;
  options.metadata["repeats"] = repeats;
  options.metadata["policies"] = json::Array{
      json::Value("BF"), json::Value("FCFS"), json::Value("TOPO-AWARE"),
      json::Value("TOPO-AWARE-P")};

  const int tasks_axis = static_cast<int>(tasks->size());
  const std::vector<int> machine_axis = *machines;
  const std::vector<int> task_axis = *tasks;
  const runner::SweepResult result = runner::run_sweep(
      options, [=](const runner::ReplicaContext& context) {
        const int m = machine_axis[static_cast<size_t>(context.scenario_index /
                                                       tasks_axis)];
        const int t =
            task_axis[static_cast<size_t>(context.scenario_index % tasks_axis)];
        const topo::TopologyGraph topology = topo::builders::make_cluster(
            m, 4, topo::builders::MachineShape::kPower8Minsky);
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        util::Rng rng = context.rng;
        const std::vector<jobgraph::JobRequest> jobs =
            overhead_jobs(job_count, t, iterations, model, topology, rng);
        json::Value payload = runner::policy_comparison_payload(
            exp::compare_policies(jobs, topology, model, {},
                                  /*record_series=*/false));
        // Min-of-repeats estimator: the deterministic sections (placements,
        // utilities, event counts) are byte-identical across repeats, so
        // re-running only tightens the wall-clock timing subtrees. Each
        // policy independently keeps its fastest run's timing — the min is
        // far less sensitive to scheduler noise than a single-shot mean.
        for (int repeat = 1; repeat < repeats; ++repeat) {
          const json::Value candidate = runner::policy_comparison_payload(
              exp::compare_policies(jobs, topology, model, {},
                                    /*record_series=*/false));
          json::Object& policies =
              payload.mutable_object()["policies"].mutable_object();
          for (auto& [name, entry] : policies) {
            const double incumbent = entry.at("timing")
                                         .at("decision_latency_us")
                                         .at("mean")
                                         .as_number();
            const json::Value& challenger =
                candidate.at("policies").at(name).at("timing");
            if (challenger.at("decision_latency_us").at("mean").as_number() <
                incumbent) {
              entry.set("timing", challenger);
            }
          }
        }
        payload.set("machines", m);
        payload.set("tasks_per_job", t);
        return payload;
      });

  std::printf(
      "Section 5.5.3 — scheduler overhead: %zu scenarios x %zu seed(s), "
      "%.2fs wall (%.0f events/s)\n",
      options.scenarios.size(), seeds->size(), result.wall_seconds,
      result.events_per_second());
  metrics::Table table({"scenario", "policy", "mean decision(us)", "p50(us)",
                        "p95(us)", "max(us)"});
  for (const std::string& scenario : options.scenarios) {
    for (const char* policy : {"BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"}) {
      const std::string prefix =
          std::string("policies.") + policy + ".timing.decision_latency_us.";
      const auto cell = [&](const char* metric) {
        return util::format_double(
            runner::find_aggregate(result, scenario, prefix + metric).mean, 1);
      };
      table.add_row({scenario, policy, cell("mean"), cell("p50"), cell("p95"),
                     cell("max")});
    }
  }
  std::fputs(table.render().c_str(), stdout);

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "%s\n", written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
