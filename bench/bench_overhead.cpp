// Section 5.5.3: placement-decision overhead.
//
// Measures the wall-clock cost of one scheduling decision for each policy
// as the cluster grows (the paper reports ~3 s for TOPO-AWARE[-P] vs
// ~0.45 s for the greedy algorithms at 1k machines with a Python/C
// prototype; the C++ reproduction is orders of magnitude faster but the
// greedy-vs-topology-aware gap and the growth trend are the artifact).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "cluster/state.hpp"
#include "perf/profile.hpp"
#include "sched/scheduler.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace {

using namespace gts;

/// A cluster pre-loaded to ~50% occupancy so decisions see realistic
/// state, shared per (machines) configuration.
struct Fixture {
  topo::TopologyGraph topology;
  perf::DlWorkloadModel model;
  cluster::ClusterState state;
  jobgraph::JobRequest candidate;

  explicit Fixture(int machines)
      : topology(topo::builders::cluster(
            machines, topo::builders::MachineShape::kPower8Minsky)),
        model(perf::CalibrationParams::paper_minsky()),
        state(topology, model),
        candidate(perf::make_profiled_dl(1 << 28, 0.0,
                                         jobgraph::NeuralNet::kAlexNet, 4, 2,
                                         0.5, model, topology, 1000)) {
    // Occupy half the GPUs deterministically: one 2-GPU job on socket 0 of
    // every even machine, one 1-GPU job on every odd machine.
    int id = 0;
    for (int machine = 0; machine < machines; ++machine) {
      const std::vector<int> gpus = topology.gpus_of_machine(machine);
      if (machine % 2 == 0) {
        state.place(perf::make_profiled_dl(id++, 0.0,
                                           jobgraph::NeuralNet::kAlexNet, 1,
                                           2, 0.5, model, topology, 1 << 20),
                    {gpus[0], gpus[1]}, 0.0);
      } else {
        state.place(perf::make_profiled_dl(id++, 0.0,
                                           jobgraph::NeuralNet::kGoogLeNet, 16,
                                           1, 0.3, model, topology, 1 << 20),
                    {gpus[2]}, 0.0);
      }
    }
  }
};

Fixture& fixture_for(int machines) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[machines];
  if (!slot) slot = std::make_unique<Fixture>(machines);
  return *slot;
}

void run_decision(benchmark::State& bench_state, sched::Policy policy) {
  const int machines = static_cast<int>(bench_state.range(0));
  Fixture& fixture = fixture_for(machines);
  const auto scheduler = sched::make_scheduler(policy);
  for (auto _ : bench_state) {
    auto placement = scheduler->place(fixture.candidate, fixture.state);
    benchmark::DoNotOptimize(placement);
  }
  bench_state.SetLabel(std::string(sched::to_string(policy)));
}

void BM_DecisionFcfs(benchmark::State& s) {
  run_decision(s, sched::Policy::kFcfs);
}
void BM_DecisionBestFit(benchmark::State& s) {
  run_decision(s, sched::Policy::kBestFit);
}
void BM_DecisionTopoAware(benchmark::State& s) {
  run_decision(s, sched::Policy::kTopoAware);
}
void BM_DecisionTopoAwareP(benchmark::State& s) {
  run_decision(s, sched::Policy::kTopoAwareP);
}

BENCHMARK(BM_DecisionFcfs)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_DecisionBestFit)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_DecisionTopoAware)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_DecisionTopoAwareP)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

/// Host filtering alone (the Theta(|V_P|) phase of the complexity bound).
void BM_FilterHosts(benchmark::State& s) {
  const int machines = static_cast<int>(s.range(0));
  Fixture& fixture = fixture_for(machines);
  for (auto _ : s) {
    auto hosts = sched::filter_hosts(fixture.candidate, fixture.state);
    benchmark::DoNotOptimize(hosts);
  }
}
BENCHMARK(BM_FilterHosts)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
