// Ablation: postponement threshold sensitivity. TOPO-AWARE-P postpones a
// job whose achievable utility is below its profile's min_utility
// (Table 1 uses 0.3 for 1-GPU and 0.5 for multi-GPU jobs). This sweep
// rescales the multi-GPU threshold to show the trade-off: too low and the
// policy degenerates to TOPO-AWARE (placements below par); too high and
// jobs wait for allocations that add little.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  metrics::Table table({"multi-GPU min utility", "cumulative time(s)",
                        "SLO violations", "unplaced jobs", "mean wait(s)",
                        "QoS mean", "QoS max"});
  for (const double threshold :
       {0.0, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    auto jobs = exp::table1_jobs(model, minsky);
    for (auto& job : jobs) {
      if (job.num_gpus > 1) job.min_utility = threshold;
    }
    const auto report =
        exp::run_policy(sched::Policy::kTopoAwareP, jobs, minsky, model);
    const auto qos = metrics::summarize(report.recorder.sorted_qos_slowdowns());
    int unplaced = 0;
    for (const auto& record : report.recorder.records()) {
      if (!record.placed()) ++unplaced;
    }
    table.add_row({util::format_double(threshold, 1),
                   util::format_double(report.recorder.makespan(), 1),
                   std::to_string(report.recorder.slo_violations()),
                   std::to_string(unplaced),
                   util::format_double(report.recorder.mean_waiting_time(), 1),
                   util::format_double(qos.mean, 3),
                   util::format_double(qos.max, 3)});
  }
  std::fputs(table
                 .render("Ablation: TOPO-AWARE-P postponement threshold on "
                         "the Table 1 scenario (paper value: 0.5)")
                 .c_str(),
             stdout);
  std::printf(
      "\nNote: a threshold above the best achievable utility starves "
      "multi-GPU jobs — they are postponed forever (the 'unplaced' "
      "column), which is why the paper ties the threshold to the job's "
      "own profile instead of a global constant.\n");
  return 0;
}
