// Ablation: postponement threshold sensitivity. TOPO-AWARE-P postpones a
// job whose achievable utility is below its profile's min_utility
// (Table 1 uses 0.3 for 1-GPU and 0.5 for multi-GPU jobs). This sweep
// rescales the multi-GPU threshold to show the trade-off: too low and the
// policy degenerates to TOPO-AWARE (placements below par); too high and
// jobs wait for allocations that add little.
//
// Runs as a (threshold x seed) sweep on the experiment runner; --threads
// fans the thresholds out, --out emits BENCH_ablation_threshold.json.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "runner/sweep.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {
constexpr double kThresholds[] = {0.0, 0.2, 0.3, 0.4, 0.5,
                                  0.6, 0.7, 0.8, 0.9};
}

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'", "1");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }

  runner::SweepOptions options;
  options.name = "ablation_threshold";
  options.scenarios.clear();
  for (const double threshold : kThresholds) {
    options.scenarios.push_back("min_utility=" +
                                util::format_double(threshold, 1));
  }
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "ablation_threshold";
  options.metadata["workload"] = "table1";
  options.metadata["policy"] = "TOPO-AWARE-P";

  const runner::SweepResult result =
      runner::run_sweep(options, [](const runner::ReplicaContext& context) {
        const topo::TopologyGraph minsky = topo::builders::power8_minsky();
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        const double threshold =
            kThresholds[static_cast<size_t>(context.scenario_index)];
        auto jobs = exp::table1_jobs(model, minsky);
        for (auto& job : jobs) {
          if (job.num_gpus > 1) job.min_utility = threshold;
        }
        const auto report =
            exp::run_policy(sched::Policy::kTopoAwareP, jobs, minsky, model);
        const auto qos =
            metrics::summarize(report.recorder.sorted_qos_slowdowns());
        int unplaced = 0;
        for (const auto& record : report.recorder.records()) {
          if (!record.placed()) ++unplaced;
        }
        json::Object payload;
        payload["events"] = static_cast<double>(report.events);
        payload["makespan_s"] = report.recorder.makespan();
        payload["slo_violations"] = report.recorder.slo_violations();
        payload["unplaced_jobs"] = unplaced;
        payload["mean_wait_s"] = report.recorder.mean_waiting_time();
        payload["qos_mean"] = qos.mean;
        payload["qos_max"] = qos.max;
        return json::Value(payload);
      });

  metrics::Table table({"multi-GPU min utility", "cumulative time(s)",
                        "SLO violations", "unplaced jobs", "mean wait(s)",
                        "QoS mean", "QoS max"});
  for (const runner::Replica& replica : result.replicas) {
    if (replica.seed != result.options.seeds.front()) continue;
    const json::Value& payload = replica.payload;
    table.add_row(
        {result.options.scenarios[static_cast<size_t>(replica.scenario_index)],
         util::format_double(payload.at("makespan_s").as_number(), 1),
         std::to_string(payload.at("slo_violations").as_int()),
         std::to_string(payload.at("unplaced_jobs").as_int()),
         util::format_double(payload.at("mean_wait_s").as_number(), 1),
         util::format_double(payload.at("qos_mean").as_number(), 3),
         util::format_double(payload.at("qos_max").as_number(), 3)});
  }
  std::fputs(table
                 .render("Ablation: TOPO-AWARE-P postponement threshold on "
                         "the Table 1 scenario (paper value: 0.5)")
                 .c_str(),
             stdout);
  std::printf(
      "\nNote: a threshold above the best achievable utility starves "
      "multi-GPU jobs — they are postponed forever (the 'unplaced' "
      "column), which is why the paper ties the threshold to the job's "
      "own profile instead of a global constant.\n");

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto obs_written = obs::finalize();
  if (!obs_written) {
    std::fprintf(stderr, "%s\n", obs_written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *obs_written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
