// Figure 11 — Scenario 2: 10k jobs on 1k Minsky machines (Section 5.5.2),
// plus the Section 5.5.3 per-decision overhead comparison at that scale.
//
// Expected shape: FCFS worst, BF next, the topology-aware policies
// dominate with TOPO-AWARE-P violating no SLOs; topology-aware decisions
// cost several times a greedy decision.
//
// The full 10k/1k configuration takes a few minutes of wall clock; use
// --jobs/--machines to shrink it for smoke runs.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("machines", "cluster size", "1000");
  cli.add_option("jobs", "number of jobs", "10000");
  cli.add_option("seed", "workload seed", "42");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  exp::LargeScaleOptions options;
  options.machines = static_cast<int>(cli.get_int("machines"));
  options.jobs = static_cast<int>(cli.get_int("jobs"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  std::printf("Fig. 11 — Scenario 2: %d jobs, %d machines (seed %llu)\n",
              options.jobs, options.machines,
              static_cast<unsigned long long>(options.seed));
  const exp::PolicyComparison comparison = exp::run_large_scale(options);

  metrics::Table table({"policy", "SLO violations", "QoS mean", "QoS p95",
                        "QoS max", "QoS+wait mean", "QoS+wait p95",
                        "mean wait(s)", "mean decision(us)"});
  for (const auto& entry : comparison.entries) {
    const metrics::Summary qos = metrics::summarize(entry.qos_slowdowns);
    const metrics::Summary wait =
        metrics::summarize(entry.qos_wait_slowdowns);
    table.add_row({entry.name, std::to_string(entry.slo_violations),
                   util::format_double(qos.mean, 3),
                   util::format_double(qos.p95, 3),
                   util::format_double(qos.max, 3),
                   util::format_double(wait.mean, 3),
                   util::format_double(wait.p95, 3),
                   util::format_double(entry.mean_waiting, 1),
                   util::format_double(entry.mean_decision_us, 1)});
  }
  std::fputs(table.render().c_str(), stdout);

  const double greedy_us =
      comparison.entry(sched::Policy::kFcfs).mean_decision_us;
  const double topo_us =
      comparison.entry(sched::Policy::kTopoAwareP).mean_decision_us;
  std::printf(
      "\nSection 5.5.3 overhead at this scale: TOPO-AWARE-P %.1f us/decision "
      "vs FCFS %.1f us/decision (%.1fx; the paper reports ~3 s vs ~0.45 s "
      "with their Python/C prototype)\n",
      topo_us, greedy_us, greedy_us > 0.0 ? topo_us / greedy_us : 0.0);
  return 0;
}
