// Figure 11 — Scenario 2: 10k jobs on 1k Minsky machines (Section 5.5.2),
// plus the Section 5.5.3 per-decision overhead comparison at that scale,
// as a multi-seed sweep on the parallel experiment runner.
//
// Expected shape: FCFS worst, BF next, the topology-aware policies
// dominate with TOPO-AWARE-P violating no SLOs; topology-aware decisions
// cost several times a greedy decision.
//
// The full 10k/1k configuration takes a few minutes of wall clock per
// seed; use --jobs/--machines to shrink it for smoke runs, --seeds N and
// --threads to saturate the machine, --out for BENCH_fig11.json.
#include <cstdio>

#include "obs/obs.hpp"
#include "runner/experiments.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("machines", "cluster size", "1000");
  cli.add_option("jobs", "number of jobs", "10000");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }

  runner::LargeScaleSweepConfig config;
  config.name = "fig11";
  config.machines = static_cast<int>(cli.get_int("machines"));
  config.jobs = static_cast<int>(cli.get_int("jobs"));
  config.seeds = *seeds;
  config.threads = static_cast<int>(cli.get_int("threads"));
  const runner::SweepResult result = runner::run_large_scale_sweep(config);

  std::printf(
      "Fig. 11 — Scenario 2: %d jobs, %d machines, %zu seed(s), "
      "%.2fs wall (%.0f events/s)\n",
      config.jobs, config.machines, seeds->size(), result.wall_seconds,
      result.events_per_second());
  std::fputs(runner::render_large_scale_table(result).c_str(), stdout);

  const std::string& scenario = result.options.scenarios.front();
  const double greedy_us =
      runner::find_aggregate(result, scenario,
                             "policies.FCFS.timing.mean_decision_us")
          .mean;
  const double topo_us =
      runner::find_aggregate(result, scenario,
                             "policies.TOPO-AWARE-P.timing.mean_decision_us")
          .mean;
  std::printf(
      "\nSection 5.5.3 overhead at this scale: TOPO-AWARE-P %.1f us/decision "
      "vs FCFS %.1f us/decision (%.1fx; the paper reports ~3 s vs ~0.45 s "
      "with their Python/C prototype)\n",
      topo_us, greedy_us, greedy_us > 0.0 ? topo_us / greedy_us : 0.0);

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto obs_written = obs::finalize();
  if (!obs_written) {
    std::fprintf(stderr, "%s\n", obs_written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *obs_written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
