// Figure 9: validation of the trace-driven simulation against the
// prototype. The same Table 1 scenario runs through (a) the prototype
// runtime (manifest-driven pipeline) and (b) the simulation driver; the
// mean-job-utility series and per-job completions must agree.
#include <cmath>
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/chart.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "proto/runtime.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);

  proto::PrototypeRuntime runtime(minsky, model);
  metrics::Table table({"policy", "prototype makespan(s)",
                        "simulation makespan(s)", "max |job end delta|(s)"});
  for (const sched::Policy policy :
       {sched::Policy::kBestFit, sched::Policy::kFcfs,
        sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
    proto::PrototypeConfig config;
    config.policy = policy;
    const proto::PrototypeRun prototype = runtime.run(config, jobs);
    const auto simulation = exp::run_policy(policy, jobs, minsky, model);

    double max_delta = 0.0;
    for (const auto& record : prototype.report.recorder.records()) {
      const auto* sim_record = simulation.recorder.find(record.id);
      if (sim_record != nullptr && record.finished() &&
          sim_record->finished()) {
        max_delta = std::max(max_delta, std::fabs(record.end - sim_record->end));
      }
    }
    table.add_row(
        {std::string(sched::to_string(policy)),
         util::format_double(prototype.report.recorder.makespan(), 1),
         util::format_double(simulation.recorder.makespan(), 1),
         util::format_double(max_delta, 4)});

    if (policy == sched::Policy::kTopoAwareP) {
      // Fig. 9's mean-job-utility series for the postponing policy.
      metrics::Series series{"mean job utility", {}};
      for (const auto& point : simulation.recorder.mean_utility()) {
        series.points.push_back({point.t, point.value});
      }
      const std::vector<metrics::Series> all = {series};
      metrics::ChartOptions options;
      options.x_label = "time (s)";
      options.y_label = "mean running-job utility";
      std::fputs(metrics::line_chart(all, options).c_str(), stdout);
    }
  }
  std::fputs(table
                 .render("Fig. 9: prototype vs simulation (identical "
                         "behaviour expected — both run on the same "
                         "calibrated substrate)")
                 .c_str(),
             stdout);
  return 0;
}
