// Scheduler-service load benchmark: N concurrent client connections
// drive a live gts_schedd core (in-process Server on a per-replica
// Unix-domain socket) at a configured arrival rate and measure wire
// round-trip latency and decision throughput.
//
// Each (scenario, seed) replica boots its own ServiceCore + Server on a
// private socket, fans `--connections` submitter threads out over the
// workload (round-robin job assignment, submits retried on
// backpressure), then drains the daemon and collects the decision
// figures. With --pipeline each connection flushes its whole remaining
// wave of submits in one write and then collects the replies — the burst
// shape batched admission (--batch-max > 1) exists for; without it the
// clients are strict request/response and throughput measures round
// trips, not the admission path. Pipelined latency is recorded per reply
// as time-since-wave-flush, so the tail shows queueing inside a wave.
// The BENCH document (schema_version 1) keeps the determinism
// contract: the admitted/finished/rejected job counts are byte-identical
// across runs, while everything the wall clock can perturb — request
// latency percentiles, whole-run and steady-state throughput (the latter
// clips the first/last 20% of the reply-time span to exclude ramp-up and
// drain), backpressure retries, the per-job lifecycle summary
// (postponements, degradations, SLO violations, mean JCT slowdown), and
// (because arrivals clamp to the pump's progress once the bounded queue
// pushes back) makespan/decisions/events — lives under the payload's
// "timing" subtree.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "jobgraph/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "runner/sweep.hpp"
#include "sim/arrivals.hpp"
#include "svc/client.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;

/// Deterministic mixed workload with Poisson arrivals (Section 5.3
/// style), submitted over the wire as manifests.
std::vector<jobgraph::JobRequest> service_jobs(
    int job_count, long long iterations, double rate_per_minute,
    util::Rng& rng) {
  util::Rng arrival_rng = rng.fork(1);
  const std::vector<double> arrivals =
      sim::poisson_arrivals(job_count, rate_per_minute, arrival_rng);
  const jobgraph::NeuralNet nets[] = {jobgraph::NeuralNet::kAlexNet,
                                      jobgraph::NeuralNet::kCaffeRef,
                                      jobgraph::NeuralNet::kGoogLeNet};
  const int batches[] = {1, 4, 16};
  const int gpus[] = {1, 2, 2, 4};
  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  for (int i = 0; i < job_count; ++i) {
    jobs.push_back(jobgraph::JobRequest::make_dl(
        i + 1, arrivals[static_cast<size_t>(i)], nets[i % 3],
        batches[(i / 3) % 3], gpus[i % 4], 0.4, iterations));
  }
  return jobs;
}

struct ReplicaFigures {
  obs::HistogramData latency_us;  // client-observed request round trips
  long long requests = 0;
  long long backpressure_retries = 0;
  /// Reply arrival times (wall seconds since the replica's submit start):
  /// the raw series behind the steady-state throughput window.
  std::vector<double> reply_s;
};

/// Raw blocking UDS connection for --pipeline waves. svc::Client is
/// strictly one-outstanding-request by design, which is exactly the
/// shape pipelining must NOT have.
class RawConnection {
 public:
  static std::optional<RawConnection> connect(const std::string& path) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return std::nullopt;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() + 1 > sizeof(addr.sun_path)) {
      ::close(fd);
      return std::nullopt;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      return std::nullopt;
    }
    return RawConnection(fd);
  }
  RawConnection(RawConnection&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  RawConnection(const RawConnection&) = delete;
  RawConnection& operator=(const RawConnection&) = delete;
  RawConnection& operator=(RawConnection&&) = delete;
  ~RawConnection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_all(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until the next newline-terminated reply line arrives.
  std::optional<std::string> read_line() {
    char buffer[4096];
    while (true) {
      const size_t newline = in_.find('\n');
      if (newline != std::string::npos) {
        std::string line = in_.substr(0, newline);
        in_.erase(0, newline + 1);
        return line;
      }
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n <= 0) return std::nullopt;
      in_.append(buffer, static_cast<size_t>(n));
    }
  }

 private:
  explicit RawConnection(int fd) : fd_(fd) {}
  int fd_;
  std::string in_;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("connections", "concurrent client connections", "4");
  cli.add_option("jobs", "jobs per replica", "60");
  cli.add_option("rate", "arrival rate (jobs per simulated minute)", "30");
  cli.add_option("machines", "cluster size (Minsky machines)", "4");
  cli.add_option("iterations", "training iterations per job", "250");
  cli.add_option("max-queue", "daemon admission bound", "16");
  cli.add_option("batch-max",
                 "requests dispatched per reactor round (1 = unbatched)", "1");
  cli.add_option("parse-threads",
                 "protocol-parse workers for batched rounds (0 = inline)",
                 "0");
  cli.add_flag("pipeline",
               "clients flush submit waves instead of strict request/response");
  cli.add_flag("parallel-scoring",
               "parallel candidate scoring inside the placement policy");
  cli.add_option("scoring-threads",
                 "scoring workers with --parallel-scoring (0 = all cores)",
                 "0");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "sweep worker threads", "1");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }
  const int connections = static_cast<int>(cli.get_int("connections"));
  const int job_count = static_cast<int>(cli.get_int("jobs"));
  const double rate = cli.get_double("rate");
  const int machines = static_cast<int>(cli.get_int("machines"));
  const long long iterations = cli.get_int("iterations");
  const int max_queue = static_cast<int>(cli.get_int("max-queue"));
  const int batch_max = static_cast<int>(cli.get_int("batch-max"));
  const int parse_threads = static_cast<int>(cli.get_int("parse-threads"));
  const bool pipeline = cli.has("pipeline");
  const bool parallel_scoring = cli.has("parallel-scoring");
  const int scoring_threads = static_cast<int>(cli.get_int("scoring-threads"));
  if (connections < 1 || job_count < 1 || machines < 1 || max_queue < 1) {
    std::fprintf(stderr, "connections/jobs/machines/max-queue must be >= 1\n");
    return 1;
  }
  if (batch_max < 1 || parse_threads < 0 || scoring_threads < 0) {
    std::fprintf(stderr,
                 "batch-max must be >= 1; parse-threads/scoring-threads"
                 " must be >= 0\n");
    return 1;
  }
  // Resolved scoring-worker count: what the scheduler will actually spin
  // up. Recorded in metadata AND the payload so tools/bench_compare.py
  // refuses to gate a batched/parallel run against an unbatched baseline.
  const int worker_threads =
      !parallel_scoring ? 0
      : scoring_threads > 0
          ? scoring_threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));

  runner::SweepOptions options;
  options.name = "service_load";
  options.scenarios = {util::fmt("minsky-{}m-{}conn", machines, connections)};
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "service_load";
  options.metadata["connections"] = connections;
  options.metadata["jobs"] = job_count;
  options.metadata["machines"] = machines;
  options.metadata["max_queue"] = max_queue;
  options.metadata["rate_per_minute"] = rate;
  options.metadata["batch_max"] = batch_max;
  options.metadata["pipeline"] = pipeline;
  options.metadata["parse_threads"] = parse_threads;
  options.metadata["parallel_scoring"] = parallel_scoring;
  options.metadata["worker_threads"] = worker_threads;

  const runner::SweepResult result = runner::run_sweep(
      options, [=](const runner::ReplicaContext& context) {
        const topo::TopologyGraph topology = topo::builders::make_cluster(
            machines, 4, topo::builders::MachineShape::kPower8Minsky);
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        svc::ServiceOptions service_options;
        service_options.config.max_queue = max_queue;
        service_options.config.retry_after_ms = 1.0;
        service_options.config.batch_max = batch_max;
        service_options.config.parse_threads = parse_threads;
        service_options.config.parallel_scoring = parallel_scoring;
        service_options.config.scoring_threads = scoring_threads;
        svc::ServiceCore core(topology, model, service_options);

        const std::string socket_path =
            util::fmt("./svc_load_{}_{}.sock", static_cast<int>(::getpid()),
                      context.replica_index);
        svc::ServerOptions server_options;
        server_options.unix_socket = socket_path;
        server_options.batch_max = batch_max;
        server_options.parse_threads = parse_threads;
        svc::Server server(core, server_options);
        if (auto status = server.start(); !status) {
          throw std::runtime_error(status.error().message);
        }
        std::thread server_thread([&server] { (void)server.run(); });

        util::Rng rng = context.rng;
        const std::vector<jobgraph::JobRequest> jobs =
            service_jobs(job_count, iterations, rate, rng);

        // Submitters: connection c takes jobs c, c+C, c+2C, ... and
        // retries on backpressure (the daemon's retry_after_ms hint),
        // so every job is eventually admitted and the placed set stays
        // deterministic.
        const auto wall_start = std::chrono::steady_clock::now();
        std::vector<ReplicaFigures> figures(
            static_cast<size_t>(connections));
        std::atomic<bool> failed{false};
        std::vector<std::thread> submitters;
        submitters.reserve(static_cast<size_t>(connections));
        for (int c = 0; c < connections; ++c) {
          submitters.emplace_back([&, c] {
            ReplicaFigures& local = figures[static_cast<size_t>(c)];
            if (pipeline) {
              // Wave mode: flush every still-unadmitted submit in one
              // write, then collect the replies in order. Backpressured
              // jobs go into the next wave after the daemon's retry
              // hint. Latency is reply-arrival minus wave flush.
              auto connection = RawConnection::connect(socket_path);
              if (!connection) {
                failed.store(true);
                return;
              }
              std::vector<int> wave;
              for (int i = c; i < job_count; i += connections) {
                wave.push_back(i);
              }
              while (!wave.empty() && !failed.load()) {
                std::string bytes;
                for (const int i : wave) {
                  svc::Request request;
                  request.id = jobs[static_cast<size_t>(i)].id;
                  request.verb = "submit";
                  request.params.set(
                      "job",
                      jobgraph::to_manifest(jobs[static_cast<size_t>(i)]));
                  bytes += svc::encode(request);
                }
                const auto wave_start = std::chrono::steady_clock::now();
                if (!connection->send_all(bytes)) {
                  failed.store(true);
                  return;
                }
                std::vector<int> retry;
                double retry_after_ms = 0.1;
                for (const int i : wave) {
                  const auto line = connection->read_line();
                  const auto reply_at = std::chrono::steady_clock::now();
                  const double us = std::chrono::duration<double, std::micro>(
                                        reply_at - wave_start)
                                        .count();
                  ++local.requests;
                  local.latency_us.record(us);
                  local.reply_s.push_back(
                      std::chrono::duration<double>(reply_at - wall_start)
                          .count());
                  if (!line) {
                    failed.store(true);
                    return;
                  }
                  const auto response = svc::parse_response(*line + "\n");
                  if (!response) {
                    failed.store(true);
                    return;
                  }
                  if (response->ok) continue;
                  if (response->code != svc::ErrorCode::kBackpressure) {
                    failed.store(true);
                    return;
                  }
                  ++local.backpressure_retries;
                  retry.push_back(i);
                  retry_after_ms =
                      std::max(retry_after_ms, response->retry_after_ms);
                }
                wave = std::move(retry);
                if (!wave.empty()) {
                  std::this_thread::sleep_for(
                      std::chrono::duration<double, std::milli>(
                          retry_after_ms));
                }
              }
              return;
            }
            auto client = svc::Client::connect_unix(socket_path);
            if (!client) {
              failed.store(true);
              return;
            }
            for (int i = c; i < job_count; i += connections) {
              json::Value params;
              params.set("job", jobgraph::to_manifest(
                                    jobs[static_cast<size_t>(i)]));
              while (true) {
                const auto t0 = std::chrono::steady_clock::now();
                const auto response = client->call("submit", params);
                const auto reply_at = std::chrono::steady_clock::now();
                const double us = std::chrono::duration<double, std::micro>(
                                      reply_at - t0)
                                      .count();
                ++local.requests;
                local.latency_us.record(us);
                local.reply_s.push_back(
                    std::chrono::duration<double>(reply_at - wall_start)
                        .count());
                if (!response) {
                  failed.store(true);
                  return;
                }
                if (response->ok) break;
                if (response->code != svc::ErrorCode::kBackpressure) {
                  failed.store(true);
                  return;
                }
                ++local.backpressure_retries;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        std::max(0.1, response->retry_after_ms)));
              }
            }
          });
        }
        // Pump: while submitters fight the bounded queue, keep granting
        // virtual time so backpressure can clear. Waiting (admitted but
        // unplaced) jobs count against the admission bound and only
        // leave it when running jobs finish, so the pump must advance
        // past the arrival horizon, not just up to it.
        std::atomic<bool> submitting{true};
        std::thread pump([&] {
          auto client = svc::Client::connect_unix(socket_path);
          if (!client) return;
          while (submitting.load()) {
            const auto now = client->call("metrics");
            if (!now || !now->ok) return;
            json::Value params;
            params.set("to", now->result.at("now").as_number() + 120.0);
            (void)client->call("advance", params);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        });
        for (std::thread& thread : submitters) thread.join();
        submitting.store(false);
        pump.join();
        const double wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        if (failed.load()) {
          server.stop();
          server_thread.join();
          throw std::runtime_error("service_load: a submitter failed");
        }

        // Control session: drain to completion, read the figures, stop.
        auto control = svc::Client::connect_unix(socket_path);
        if (!control) throw std::runtime_error(control.error().message);
        const auto drained = control->call("drain");
        const auto listing = control->call("list");
        const auto metrics = control->call("metrics");
        (void)control->call("shutdown");
        server_thread.join();
        if (!drained || !listing || !metrics || !drained->ok ||
            !listing->ok || !metrics->ok) {
          throw std::runtime_error("service_load: control session failed");
        }

        ReplicaFigures total;
        for (const ReplicaFigures& f : figures) {
          total.requests += f.requests;
          total.backpressure_retries += f.backpressure_retries;
          total.latency_us.merge(f.latency_us);
          total.reply_s.insert(total.reply_s.end(), f.reply_s.begin(),
                               f.reply_s.end());
        }
        std::sort(total.reply_s.begin(), total.reply_s.end());

        // Steady-state window: the whole-run throughput divides by a span
        // that includes connection ramp-up and the final drain of the
        // bounded queue, both of which under-count the sustainable rate.
        // Clip the first and last 20% of the reply-time span and measure
        // only the middle 60%.
        long long steady_requests = 0;
        double steady_wall_seconds = 0.0;
        if (total.reply_s.size() >= 2) {
          const double first = total.reply_s.front();
          const double last = total.reply_s.back();
          const double span = last - first;
          const double lo = first + 0.2 * span;
          const double hi = last - 0.2 * span;
          steady_wall_seconds = hi - lo;
          for (const double t : total.reply_s) {
            if (t >= lo && t <= hi) ++steady_requests;
          }
        }
        json::Value payload;
        payload.set("jobs", job_count);
        payload.set("batch_max", batch_max);
        payload.set("pipeline", pipeline);
        payload.set("worker_threads", worker_threads);
        payload.set("finished",
                    listing->result.at("finished").as_array().size());
        payload.set("rejected",
                    listing->result.at("rejected").as_array().size());
        json::Value timing;
        timing.set("makespan", drained->result.at("now").as_number());
        timing.set("decisions", metrics->result.at("decisions").as_int());
        timing.set("events", metrics->result.at("events").as_number());
        timing.set("requests", total.requests);
        timing.set("backpressure_retries", total.backpressure_retries);
        timing.set("wall_seconds", wall_seconds);
        timing.set("throughput_rps",
                   wall_seconds > 0.0
                       ? static_cast<double>(total.requests) / wall_seconds
                       : 0.0);
        timing.set("steady_requests", steady_requests);
        timing.set("steady_wall_seconds", steady_wall_seconds);
        timing.set("steady_throughput_rps",
                   steady_wall_seconds > 0.0
                       ? static_cast<double>(steady_requests) /
                             steady_wall_seconds
                       : 0.0);
        // Per-job lifecycle summary (PR 8): postponements and SLO figures
        // depend on where the wall-clock pump happened to be when each
        // submit landed, so they live under "timing" with the other
        // wall-perturbed numbers.
        timing.set("postponements",
                   metrics->result.at("postponements").as_int(0));
        timing.set("degradations",
                   metrics->result.at("degradations").as_int(0));
        timing.set("slo_violations",
                   metrics->result.at("slo_violations").as_int(0));
        timing.set("mean_jct_slowdown",
                   metrics->result.at("mean_jct_slowdown").as_number(-1.0));
        timing.set("mean_waiting_time",
                   metrics->result.at("mean_waiting_time").as_number(0.0));
        timing.set("p50_us", total.latency_us.percentile(0.50));
        timing.set("p95_us", total.latency_us.percentile(0.95));
        timing.set("p99_us", total.latency_us.percentile(0.99));
        timing.set("latency_us", total.latency_us.to_json());
        payload.set("timing", std::move(timing));
        return payload;
      });

  std::printf(
      "service load: %d connection(s) x %d job(s), %zu seed(s), %.2fs wall\n",
      connections, job_count, seeds->size(), result.wall_seconds);
  for (const runner::Replica& replica : result.replicas) {
    const json::Value& timing = replica.payload.at("timing");
    std::printf(
        "  seed %llu: %lld requests (%lld backpressure retries), "
        "%.0f req/s (steady %.0f req/s over %.2fs), p50 %.0fus p95 %.0fus "
        "p99 %.0fus, %lld decisions, makespan %.1fs\n",
        static_cast<unsigned long long>(replica.seed),
        timing.at("requests").as_int(),
        timing.at("backpressure_retries").as_int(),
        timing.at("throughput_rps").as_number(),
        timing.at("steady_throughput_rps").as_number(),
        timing.at("steady_wall_seconds").as_number(),
        timing.at("p50_us").as_number(), timing.at("p95_us").as_number(),
        timing.at("p99_us").as_number(), timing.at("decisions").as_int(),
        timing.at("makespan").as_number());
  }

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "%s\n", written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
