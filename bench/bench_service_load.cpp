// Scheduler-service load benchmark: N concurrent client connections
// drive a live gts_schedd core (in-process Server on a per-replica
// Unix-domain socket) at a configured arrival rate and measure wire
// round-trip latency and decision throughput.
//
// Each (scenario, seed) replica boots its own ServiceCore + Server on a
// private socket, fans `--connections` submitter threads out over the
// workload (round-robin job assignment, submits retried on
// backpressure), then drains the daemon and collects the decision
// figures. The BENCH document (schema_version 1) keeps the determinism
// contract: the admitted/finished/rejected job counts are byte-identical
// across runs, while everything the wall clock can perturb — request
// latency percentiles, throughput, backpressure retries, and (because
// arrivals clamp to the pump's progress once the bounded queue pushes
// back) makespan/decisions/events — lives under the payload's "timing"
// subtree.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "jobgraph/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "runner/sweep.hpp"
#include "sim/arrivals.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;

/// Deterministic mixed workload with Poisson arrivals (Section 5.3
/// style), submitted over the wire as manifests.
std::vector<jobgraph::JobRequest> service_jobs(
    int job_count, long long iterations, double rate_per_minute,
    util::Rng& rng) {
  util::Rng arrival_rng = rng.fork(1);
  const std::vector<double> arrivals =
      sim::poisson_arrivals(job_count, rate_per_minute, arrival_rng);
  const jobgraph::NeuralNet nets[] = {jobgraph::NeuralNet::kAlexNet,
                                      jobgraph::NeuralNet::kCaffeRef,
                                      jobgraph::NeuralNet::kGoogLeNet};
  const int batches[] = {1, 4, 16};
  const int gpus[] = {1, 2, 2, 4};
  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  for (int i = 0; i < job_count; ++i) {
    jobs.push_back(jobgraph::JobRequest::make_dl(
        i + 1, arrivals[static_cast<size_t>(i)], nets[i % 3],
        batches[(i / 3) % 3], gpus[i % 4], 0.4, iterations));
  }
  return jobs;
}

struct ReplicaFigures {
  obs::HistogramData latency_us;  // client-observed request round trips
  long long requests = 0;
  long long backpressure_retries = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("connections", "concurrent client connections", "4");
  cli.add_option("jobs", "jobs per replica", "60");
  cli.add_option("rate", "arrival rate (jobs per simulated minute)", "30");
  cli.add_option("machines", "cluster size (Minsky machines)", "4");
  cli.add_option("iterations", "training iterations per job", "250");
  cli.add_option("max-queue", "daemon admission bound", "16");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "sweep worker threads", "1");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }
  const int connections = static_cast<int>(cli.get_int("connections"));
  const int job_count = static_cast<int>(cli.get_int("jobs"));
  const double rate = cli.get_double("rate");
  const int machines = static_cast<int>(cli.get_int("machines"));
  const long long iterations = cli.get_int("iterations");
  const int max_queue = static_cast<int>(cli.get_int("max-queue"));
  if (connections < 1 || job_count < 1 || machines < 1 || max_queue < 1) {
    std::fprintf(stderr, "connections/jobs/machines/max-queue must be >= 1\n");
    return 1;
  }

  runner::SweepOptions options;
  options.name = "service_load";
  options.scenarios = {util::fmt("minsky-{}m-{}conn", machines, connections)};
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "service_load";
  options.metadata["connections"] = connections;
  options.metadata["jobs"] = job_count;
  options.metadata["machines"] = machines;
  options.metadata["max_queue"] = max_queue;
  options.metadata["rate_per_minute"] = rate;

  const runner::SweepResult result = runner::run_sweep(
      options, [=](const runner::ReplicaContext& context) {
        const topo::TopologyGraph topology = topo::builders::cluster(
            machines, topo::builders::MachineShape::kPower8Minsky);
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        svc::ServiceOptions service_options;
        service_options.config.max_queue = max_queue;
        service_options.config.retry_after_ms = 1.0;
        svc::ServiceCore core(topology, model, service_options);

        const std::string socket_path =
            util::fmt("./svc_load_{}_{}.sock", static_cast<int>(::getpid()),
                      context.replica_index);
        svc::ServerOptions server_options;
        server_options.unix_socket = socket_path;
        svc::Server server(core, server_options);
        if (auto status = server.start(); !status) {
          throw std::runtime_error(status.error().message);
        }
        std::thread server_thread([&server] { (void)server.run(); });

        util::Rng rng = context.rng;
        const std::vector<jobgraph::JobRequest> jobs =
            service_jobs(job_count, iterations, rate, rng);

        // Submitters: connection c takes jobs c, c+C, c+2C, ... and
        // retries on backpressure (the daemon's retry_after_ms hint),
        // so every job is eventually admitted and the placed set stays
        // deterministic.
        const auto wall_start = std::chrono::steady_clock::now();
        std::vector<ReplicaFigures> figures(
            static_cast<size_t>(connections));
        std::atomic<bool> failed{false};
        std::vector<std::thread> submitters;
        submitters.reserve(static_cast<size_t>(connections));
        for (int c = 0; c < connections; ++c) {
          submitters.emplace_back([&, c] {
            auto client = svc::Client::connect_unix(socket_path);
            if (!client) {
              failed.store(true);
              return;
            }
            ReplicaFigures& local = figures[static_cast<size_t>(c)];
            for (int i = c; i < job_count; i += connections) {
              json::Value params;
              params.set("job", jobgraph::to_manifest(
                                    jobs[static_cast<size_t>(i)]));
              while (true) {
                const auto t0 = std::chrono::steady_clock::now();
                const auto response = client->call("submit", params);
                const double us =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                ++local.requests;
                local.latency_us.record(us);
                if (!response) {
                  failed.store(true);
                  return;
                }
                if (response->ok) break;
                if (response->code != svc::ErrorCode::kBackpressure) {
                  failed.store(true);
                  return;
                }
                ++local.backpressure_retries;
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        std::max(0.1, response->retry_after_ms)));
              }
            }
          });
        }
        // Pump: while submitters fight the bounded queue, keep granting
        // virtual time so backpressure can clear. Waiting (admitted but
        // unplaced) jobs count against the admission bound and only
        // leave it when running jobs finish, so the pump must advance
        // past the arrival horizon, not just up to it.
        std::atomic<bool> submitting{true};
        std::thread pump([&] {
          auto client = svc::Client::connect_unix(socket_path);
          if (!client) return;
          while (submitting.load()) {
            const auto now = client->call("metrics");
            if (!now || !now->ok) return;
            json::Value params;
            params.set("to", now->result.at("now").as_number() + 120.0);
            (void)client->call("advance", params);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        });
        for (std::thread& thread : submitters) thread.join();
        submitting.store(false);
        pump.join();
        const double wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wall_start)
                .count();
        if (failed.load()) {
          server.stop();
          server_thread.join();
          throw std::runtime_error("service_load: a submitter failed");
        }

        // Control session: drain to completion, read the figures, stop.
        auto control = svc::Client::connect_unix(socket_path);
        if (!control) throw std::runtime_error(control.error().message);
        const auto drained = control->call("drain");
        const auto listing = control->call("list");
        const auto metrics = control->call("metrics");
        (void)control->call("shutdown");
        server_thread.join();
        if (!drained || !listing || !metrics || !drained->ok ||
            !listing->ok || !metrics->ok) {
          throw std::runtime_error("service_load: control session failed");
        }

        ReplicaFigures total;
        for (const ReplicaFigures& f : figures) {
          total.requests += f.requests;
          total.backpressure_retries += f.backpressure_retries;
          total.latency_us.merge(f.latency_us);
        }
        json::Value payload;
        payload.set("jobs", job_count);
        payload.set("finished",
                    listing->result.at("finished").as_array().size());
        payload.set("rejected",
                    listing->result.at("rejected").as_array().size());
        json::Value timing;
        timing.set("makespan", drained->result.at("now").as_number());
        timing.set("decisions", metrics->result.at("decisions").as_int());
        timing.set("events", metrics->result.at("events").as_number());
        timing.set("requests", total.requests);
        timing.set("backpressure_retries", total.backpressure_retries);
        timing.set("wall_seconds", wall_seconds);
        timing.set("throughput_rps",
                   wall_seconds > 0.0
                       ? static_cast<double>(total.requests) / wall_seconds
                       : 0.0);
        timing.set("p50_us", total.latency_us.percentile(0.50));
        timing.set("p95_us", total.latency_us.percentile(0.95));
        timing.set("p99_us", total.latency_us.percentile(0.99));
        timing.set("latency_us", total.latency_us.to_json());
        payload.set("timing", std::move(timing));
        return payload;
      });

  std::printf(
      "service load: %d connection(s) x %d job(s), %zu seed(s), %.2fs wall\n",
      connections, job_count, seeds->size(), result.wall_seconds);
  for (const runner::Replica& replica : result.replicas) {
    const json::Value& timing = replica.payload.at("timing");
    std::printf(
        "  seed %llu: %lld requests (%lld backpressure retries), "
        "%.0f req/s, p50 %.0fus p95 %.0fus p99 %.0fus, %lld decisions, "
        "makespan %.1fs\n",
        static_cast<unsigned long long>(replica.seed),
        timing.at("requests").as_int(),
        timing.at("backpressure_retries").as_int(),
        timing.at("throughput_rps").as_number(),
        timing.at("p50_us").as_number(), timing.at("p95_us").as_number(),
        timing.at("p99_us").as_number(), timing.at("decisions").as_int(),
        timing.at("makespan").as_number());
  }

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "%s\n", written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
