// Event-path microbenchmark: per-event wall-clock cost of the
// ClusterState mutations the simulation driver performs between
// placement decisions, swept over (machines x multi-machine job share):
//
//   place   — ClusterState::place (flow indexing + scoped rate updates)
//   remove  — ClusterState::remove (unindexing + scoped rate updates)
//   query   — next_completion + due_completions (the finish-time heap
//             probe the driver runs after every mutation to re-arm its
//             completion event)
//
// Every scenario runs the identical deterministic event sequence twice:
// once on the scoped event path (link-indexed touched sets, the default)
// and once with full_event_recompute — the differential oracle that
// re-rates every running job per event, the pre-scoping behaviour. Both
// passes produce byte-identical cluster state (tests/event_path_test.cpp
// proves it); this bench measures the work difference: scoped cost is
// O(jobs touching the placed/removed job's machines and links), oracle
// cost is O(resident jobs) model evaluations per event.
//
// The multi-machine share axis is the interference-scoping stress knob:
// multi-machine jobs put flows on shared inter-machine links, so their
// placement used to trigger the all-jobs fallback. The scoped path walks
// the link->jobs index instead and stays flat as the share grows.
//
// Like bench_decision_micro, the event sequence is replayed --repeats
// times and each event records its minimum stage time across repeats.
// Stage latencies land in the payload "timing" subtree (gated by
// tools/bench_compare.py against bench/baselines/BENCH_advance_micro.json);
// the events/sec throughput and the scoped-vs-oracle speedup ride in the
// same subtree as scalars — reported, but not gated (higher is better,
// and the gate only understands latencies).
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "cluster/state.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "perf/profile.hpp"
#include "runner/experiments.hpp"
#include "runner/sweep.hpp"
#include "sim/arrivals.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;
using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - begin).count();
}

util::Expected<std::vector<int>> parse_int_list(const std::string& spec,
                                                const char* what,
                                                int minimum) {
  std::vector<int> values;
  for (const auto& token : util::split(spec, ',')) {
    const std::string_view trimmed = util::trim(token);
    if (trimmed.empty()) continue;
    const auto value = util::parse_int(trimmed);
    if (!value || *value < minimum) {
      return util::Error{std::string(what) + ": bad entry '" +
                         std::string(trimmed) + "'"};
    }
    values.push_back(static_cast<int>(*value));
  }
  if (values.empty()) {
    return util::Error{std::string(what) + ": empty list"};
  }
  return values;
}

/// Controlled workload: `multi_pct` percent of the jobs are 8-task
/// all-to-all graphs marked multi-machine (they straddle Minsky machines
/// and put flows on inter-machine links); the rest cycle through 1/2/4
/// GPU single-machine shapes. The multi-machine jobs are interleaved
/// evenly so the resident mix holds the share throughout the run.
std::vector<jobgraph::JobRequest> event_jobs(
    int job_count, int multi_pct, const perf::DlWorkloadModel& model,
    const topo::TopologyGraph& topology, util::Rng& rng) {
  util::Rng arrival_rng = rng.fork(1);
  const double rate_per_minute =
      10.0 * static_cast<double>(topology.machine_count()) / 5.0;
  const std::vector<double> arrivals =
      sim::poisson_arrivals(job_count, rate_per_minute, arrival_rng);

  const jobgraph::NeuralNet nets[] = {jobgraph::NeuralNet::kAlexNet,
                                      jobgraph::NeuralNet::kCaffeRef,
                                      jobgraph::NeuralNet::kGoogLeNet};
  const int batches[] = {1, 4, 16};
  const int single_tasks[] = {1, 2, 4};
  const int per_machine =
      static_cast<int>(topology.gpus_of_machine(0).size());

  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  for (int i = 0; i < job_count; ++i) {
    // Bresenham-style interleave: job i is multi-machine exactly when the
    // running quota i*pct/100 crosses an integer.
    const bool multi =
        ((i + 1) * multi_pct) / 100 > (i * multi_pct) / 100;
    const int tasks = multi ? 2 * per_machine : single_tasks[i % 3];
    jobgraph::JobRequest request = perf::make_profiled_dl(
        i, arrivals[static_cast<size_t>(i)], nets[i % 3],
        batches[(i / 3) % 3], tasks, tasks == 1 ? 0.3 : 0.5, model, topology,
        250);
    if (tasks > per_machine) request.profile.single_node = false;
    jobs.push_back(std::move(request));
  }
  return jobs;
}

/// Per-event stage latency of one pass, microseconds. Kind tells which
/// stage the sample belongs to (the sequence is deterministic, so kinds
/// line up across repeats and across the scoped/oracle passes).
enum class EventKind { kPlace, kRemove, kQuery };

struct PassResult {
  std::vector<double> event_us;  // one entry per event, sequence order
  double wall_us = 0.0;          // sum of the timed stages
  long long places = 0;
  long long removes = 0;
  long long queries = 0;

  void min_with(const PassResult& other) {
    for (size_t i = 0; i < event_us.size(); ++i) {
      event_us[i] = std::min(event_us[i], other.event_us[i]);
    }
    wall_us = std::min(wall_us, other.wall_us);
  }
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("machines", "cluster sizes to sweep", "5,20,50");
  cli.add_option("multi",
                 "percent of jobs that span machines (list to sweep)",
                 "0,25,50");
  cli.add_option("jobs", "jobs per replica", "300");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("repeats", "timed passes per replica (min taken)", "3");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }
  const auto machines = parse_int_list(cli.get("machines"), "machines", 1);
  if (!machines) {
    std::fprintf(stderr, "%s\n", machines.error().message.c_str());
    return 1;
  }
  const auto multi = parse_int_list(cli.get("multi"), "multi", 0);
  if (!multi) {
    std::fprintf(stderr, "%s\n", multi.error().message.c_str());
    return 1;
  }
  for (const int pct : *multi) {
    if (pct > 100) {
      std::fprintf(stderr, "--multi: %d is not a percentage\n", pct);
      return 1;
    }
  }
  const int job_count = static_cast<int>(cli.get_int("jobs"));
  const int repeats = std::max(1, static_cast<int>(cli.get_int("repeats")));

  runner::SweepOptions options;
  options.name = "advance_micro";
  options.scenarios.clear();
  for (const int m : *machines) {
    for (const int pct : *multi) {
      options.scenarios.push_back("minsky-" + std::to_string(m) + "m-" +
                                  std::to_string(pct) + "pc");
    }
  }
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "advance_micro";
  {
    json::Array grid_machines;
    for (const int m : *machines) grid_machines.push_back(m);
    options.metadata["machines"] = std::move(grid_machines);
    json::Array grid_multi;
    for (const int pct : *multi) grid_multi.push_back(pct);
    options.metadata["multi"] = std::move(grid_multi);
  }
  options.metadata["jobs"] = job_count;
  options.metadata["repeats"] = repeats;
  options.metadata["stages"] = json::Array{
      json::Value("place"), json::Value("remove"), json::Value("query")};

  const int multi_axis_size = static_cast<int>(multi->size());
  const std::vector<int> machine_axis = *machines;
  const std::vector<int> multi_axis = *multi;
  const runner::SweepResult result = runner::run_sweep(
      options, [=](const runner::ReplicaContext& context) {
        const int m = machine_axis[static_cast<size_t>(
            context.scenario_index / multi_axis_size)];
        const int pct = multi_axis[static_cast<size_t>(
            context.scenario_index % multi_axis_size)];
        const topo::TopologyGraph topology = topo::builders::cluster(
            m, topo::builders::MachineShape::kPower8Minsky);
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        util::Rng rng = context.rng;
        const std::vector<jobgraph::JobRequest> jobs =
            event_jobs(job_count, pct, model, topology, rng);
        const int gpu_count = topology.gpu_count();

        // One pass = the whole event sequence against a fresh cluster:
        // first-free placement, evict-oldest when saturated, and the
        // driver's completion-probe after every mutation. Placement does
        // not consult rates, so the sequence is identical in both modes.
        std::vector<EventKind> kinds;
        const auto run_pass = [&](bool full_recompute) {
          cluster::ClusterState state(topology, model);
          state.set_full_event_recompute(full_recompute);
          PassResult pass;
          std::deque<int> resident;  // placed job ids, oldest first
          std::vector<int> gpus;
          const bool record_kinds = kinds.empty();

          const auto probe = [&](double now) {
            const auto begin = Clock::now();
            (void)state.next_completion(now);
            (void)state.due_completions(now);
            const double us = elapsed_us(begin, Clock::now());
            pass.event_us.push_back(us);
            pass.wall_us += us;
            ++pass.queries;
            if (record_kinds) kinds.push_back(EventKind::kQuery);
          };

          for (const jobgraph::JobRequest& request : jobs) {
            const double now = request.arrival_time;
            while (state.free_gpu_count() < request.num_gpus &&
                   !resident.empty()) {
              const int victim = resident.front();
              resident.pop_front();
              const auto begin = Clock::now();
              state.remove(victim, now);
              const double us = elapsed_us(begin, Clock::now());
              pass.event_us.push_back(us);
              pass.wall_us += us;
              ++pass.removes;
              if (record_kinds) kinds.push_back(EventKind::kRemove);
              probe(now);
            }
            if (state.free_gpu_count() < request.num_gpus) continue;

            gpus.clear();
            for (int g = 0; g < gpu_count &&
                            static_cast<int>(gpus.size()) < request.num_gpus;
                 ++g) {
              if (state.gpu_free(g)) gpus.push_back(g);
            }
            const auto begin = Clock::now();
            state.place(request, gpus, now, /*placement_utility=*/1.0);
            const double us = elapsed_us(begin, Clock::now());
            pass.event_us.push_back(us);
            pass.wall_us += us;
            ++pass.places;
            resident.push_back(request.id);
            if (record_kinds) kinds.push_back(EventKind::kPlace);
            probe(now);
          }
          return pass;
        };

        const auto run_mode = [&](bool full_recompute) {
          PassResult best = run_pass(full_recompute);
          for (int repeat = 1; repeat < repeats; ++repeat) {
            best.min_with(run_pass(full_recompute));
          }
          return best;
        };
        const PassResult scoped = run_mode(false);
        const PassResult full = run_mode(true);
        GTS_CHECK(scoped.event_us.size() == full.event_us.size(),
                  "event sequences diverged between modes");

        const auto stage_histograms = [&](const PassResult& pass) {
          obs::HistogramData place_us, remove_us, query_us;
          for (size_t i = 0; i < pass.event_us.size(); ++i) {
            switch (kinds[i]) {
              case EventKind::kPlace: place_us.record(pass.event_us[i]); break;
              case EventKind::kRemove:
                remove_us.record(pass.event_us[i]);
                break;
              case EventKind::kQuery: query_us.record(pass.event_us[i]); break;
            }
          }
          return std::array<obs::HistogramData, 3>{place_us, remove_us,
                                                   query_us};
        };
        const auto events_per_sec = [&](const PassResult& pass) {
          const double mutations =
              static_cast<double>(pass.places + pass.removes);
          return pass.wall_us > 0.0 ? mutations / (pass.wall_us * 1e-6)
                                    : 0.0;
        };

        json::Object payload;
        payload["machines"] = m;
        payload["multi_pct"] = pct;
        payload["places"] = scoped.places;
        payload["removes"] = scoped.removes;
        payload["queries"] = scoped.queries;
        payload["events"] = scoped.places + scoped.removes;
        const auto [place_us, remove_us, query_us] = stage_histograms(scoped);
        const auto [full_place_us, full_remove_us, full_query_us] =
            stage_histograms(full);
        const double scoped_eps = events_per_sec(scoped);
        const double full_eps = events_per_sec(full);
        json::Object timing;
        timing["place_us"] = place_us.to_json();
        timing["remove_us"] = remove_us.to_json();
        timing["query_us"] = query_us.to_json();
        timing["full_place_us"] = full_place_us.to_json();
        timing["full_remove_us"] = full_remove_us.to_json();
        timing["full_query_us"] = full_query_us.to_json();
        // Scalars, deliberately not named "*.mean": reported in
        // timing_aggregates but outside the regression gate (throughput is
        // higher-is-better, which the latency gate would misread).
        timing["events_per_sec"] = scoped_eps;
        timing["full_events_per_sec"] = full_eps;
        timing["speedup"] = full_eps > 0.0 ? scoped_eps / full_eps : 0.0;
        payload[runner::kTimingKey] = std::move(timing);
        return json::Value(std::move(payload));
      });

  std::printf(
      "event-path microbenchmark: %zu scenarios x %zu seed(s), %.2fs wall\n",
      options.scenarios.size(), seeds->size(), result.wall_seconds);
  metrics::Table table({"scenario", "place(us)", "remove(us)", "query(us)",
                        "events/s", "oracle ev/s", "speedup"});
  for (const std::string& scenario : options.scenarios) {
    const auto cell = [&](const char* metric, int digits) {
      return util::format_double(
          runner::find_aggregate(result, scenario,
                                 std::string("timing.") + metric)
              .mean,
          digits);
    };
    table.add_row({scenario, cell("place_us.mean", 1),
                   cell("remove_us.mean", 1), cell("query_us.mean", 2),
                   cell("events_per_sec", 0), cell("full_events_per_sec", 0),
                   cell("speedup", 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "%s\n", written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
