// Figure 4: pack (P2P) vs spread (no-P2P) speedup per batch size on the
// NVLink Minsky machine. Speedup > 1 means pack wins.
//
// Paper anchors: AlexNet ~1.30x at batch 1-2, converging to ~1.0 from
// batch 16; CaffeRef slightly below AlexNet; GoogLeNet nearly flat.
#include <cstdio>
#include <cmath>
#include <vector>

#include "exp/figures.hpp"
#include "metrics/chart.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto rows = exp::fig4_pack_vs_spread(model, minsky);

  metrics::Table table({"NN", "batch", "pack(s)", "spread(s)", "speedup"});
  std::vector<metrics::Series> series(
      static_cast<size_t>(jobgraph::kNeuralNetCount));
  for (int nn = 0; nn < jobgraph::kNeuralNetCount; ++nn) {
    series[static_cast<size_t>(nn)].name =
        std::string(jobgraph::to_string(static_cast<jobgraph::NeuralNet>(nn)));
  }
  for (const auto& row : rows) {
    table.add_row({std::string(jobgraph::to_string(row.nn)),
                   std::to_string(row.batch_size),
                   util::format_double(row.pack_time, 1),
                   util::format_double(row.spread_time, 1),
                   util::format_double(row.speedup, 3)});
    // Log2 x-axis so the batch sweep spreads evenly, as in the paper.
    series[static_cast<size_t>(row.nn)].points.push_back(
        {std::log2(static_cast<double>(row.batch_size)), row.speedup});
  }
  std::fputs(
      table.render("Fig. 4: pack vs spread speedup (4000 iterations)").c_str(),
      stdout);
  metrics::ChartOptions options;
  options.x_label = "log2(batch size per GPU)";
  options.y_label = "speedup (spread/pack)";
  std::fputs(metrics::line_chart(series, options).c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  return 0;
}
