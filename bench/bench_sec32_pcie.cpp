// Section 3.2 (prose): NVLink vs PCI-e Gen3 machines.
//
// "AlexNet with a batch equals one the speedup is ~1.27x with NVLink, and
//  ~1.24x with PCI-e. For a batch size equals two, the speedup drops from
//  ~1.30x with NVLink to ~1.21x with PCI-e. For a batch size equals eight,
//  the speedup decreases from ~1.20x to only ~1.1x."
#include <cstdio>

#include "exp/figures.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph nvlink_machine = topo::builders::power8_minsky();
  const topo::TopologyGraph pcie_machine = topo::builders::power8_pcie();
  const perf::DlWorkloadModel p100(perf::CalibrationParams::paper_minsky());
  const perf::DlWorkloadModel k80(perf::CalibrationParams::paper_k80());

  const auto nvlink_rows = exp::fig4_pack_vs_spread(p100, nvlink_machine);
  const auto pcie_rows = exp::fig4_pack_vs_spread(k80, pcie_machine);

  metrics::Table table(
      {"NN", "batch", "NVLink speedup", "PCI-e speedup", "delta"});
  for (size_t i = 0; i < nvlink_rows.size(); ++i) {
    const auto& nv = nvlink_rows[i];
    const auto& pc = pcie_rows[i];
    table.add_row({std::string(jobgraph::to_string(nv.nn)),
                   std::to_string(nv.batch_size),
                   util::format_double(nv.speedup, 3),
                   util::format_double(pc.speedup, 3),
                   util::format_double(nv.speedup - pc.speedup, 3)});
  }
  std::fputs(table
                 .render("Section 3.2: pack-vs-spread speedup, NVLink P100 "
                         "machine vs PCI-e Gen3 K80 machine")
                 .c_str(),
             stdout);
  std::printf(
      "\nPaper anchors (AlexNet): batch 1: 1.27 vs 1.24 | batch 2: 1.30 vs "
      "1.21 | batch 8: 1.20 vs 1.10\n");
  std::printf("CSV:\n%s", table.csv().c_str());
  return 0;
}
