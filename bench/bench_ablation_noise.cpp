// Ablation: execution-noise robustness. The paper argues (Section 4.2)
// that "because of the cloud's high variability, our model does not need
// to be optimal; high-quality decisions will be accurate enough". Here
// every job's iteration time is multiplied by lognormal noise the
// scheduler cannot see, at increasing sigma, and the Table 1 scenario is
// re-run: the topology-aware win should survive realistic variability.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "sched/driver.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);

  metrics::Table table({"noise sigma", "seed", "BF makespan(s)",
                        "TOPO-AWARE-P makespan(s)", "speedup",
                        "P SLO violations"});
  for (const double sigma : {0.0, 0.05, 0.10, 0.20, 0.30}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      sched::DriverOptions options;
      options.noise_sigma = sigma;
      options.noise_seed = seed;

      const auto bf_sched = sched::make_scheduler(sched::Policy::kBestFit);
      sched::Driver bf_driver(minsky, model, *bf_sched, options);
      const auto bf = bf_driver.run(jobs);

      const auto tp_sched = sched::make_scheduler(sched::Policy::kTopoAwareP);
      sched::Driver tp_driver(minsky, model, *tp_sched, options);
      const auto tp = tp_driver.run(jobs);

      table.add_row(
          {util::format_double(sigma, 2), std::to_string(seed),
           util::format_double(bf.recorder.makespan(), 1),
           util::format_double(tp.recorder.makespan(), 1),
           util::format_double(
               bf.recorder.makespan() / tp.recorder.makespan(), 3),
           std::to_string(tp.recorder.slo_violations())});
      if (sigma == 0.0) break;  // deterministic: one row suffices
    }
  }
  std::fputs(table
                 .render("Ablation: topology-aware speedup under lognormal "
                         "execution noise invisible to the scheduler")
                 .c_str(),
             stdout);
  return 0;
}
