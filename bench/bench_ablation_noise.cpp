// Ablation: execution-noise robustness. The paper argues (Section 4.2)
// that "because of the cloud's high variability, our model does not need
// to be optimal; high-quality decisions will be accurate enough". Here
// every job's iteration time is multiplied by lognormal noise the
// scheduler cannot see, at increasing sigma, and the Table 1 scenario is
// re-run: the topology-aware win should survive realistic variability.
//
// Runs as a (sigma x noise-seed) sweep on the experiment runner; the
// aggregate table reports the mean speedup with its 95% CI across seeds.
// --threads fans replicas out, --out emits BENCH_ablation_noise.json.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "runner/sweep.hpp"
#include "sched/driver.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {
constexpr double kSigmas[] = {0.0, 0.05, 0.10, 0.20, 0.30};
}

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'", "3");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }

  runner::SweepOptions options;
  options.name = "ablation_noise";
  options.scenarios.clear();
  for (const double sigma : kSigmas) {
    options.scenarios.push_back("sigma=" + util::format_double(sigma, 2));
  }
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "ablation_noise";
  options.metadata["workload"] = "table1";
  options.metadata["policies"] =
      json::Array{json::Value("BF"), json::Value("TOPO-AWARE-P")};

  const runner::SweepResult result =
      runner::run_sweep(options, [](const runner::ReplicaContext& context) {
        const topo::TopologyGraph minsky = topo::builders::power8_minsky();
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        const auto jobs = exp::table1_jobs(model, minsky);
        sched::DriverOptions driver_options;
        driver_options.noise_sigma =
            kSigmas[static_cast<size_t>(context.scenario_index)];
        driver_options.noise_seed = context.seed;

        const auto bf_sched = sched::make_scheduler(sched::Policy::kBestFit);
        sched::Driver bf_driver(minsky, model, *bf_sched, driver_options);
        const auto bf = bf_driver.run(jobs);

        const auto tp_sched =
            sched::make_scheduler(sched::Policy::kTopoAwareP);
        sched::Driver tp_driver(minsky, model, *tp_sched, driver_options);
        const auto tp = tp_driver.run(jobs);

        json::Object payload;
        payload["events"] = static_cast<double>(bf.events + tp.events);
        payload["bf_makespan_s"] = bf.recorder.makespan();
        payload["tp_makespan_s"] = tp.recorder.makespan();
        payload["speedup"] =
            bf.recorder.makespan() / tp.recorder.makespan();
        payload["tp_slo_violations"] = tp.recorder.slo_violations();
        return json::Value(payload);
      });

  metrics::Table table({"noise sigma", "seeds", "BF makespan(s)",
                        "TOPO-AWARE-P makespan(s)", "speedup +-CI95",
                        "P SLO violations (mean)"});
  for (const std::string& scenario : result.options.scenarios) {
    metrics::Summary bf{};
    metrics::Summary tp{};
    metrics::Summary speedup{};
    metrics::Summary slo{};
    for (const runner::MetricAggregate& aggregate : result.aggregates) {
      if (aggregate.scenario != scenario) continue;
      if (aggregate.metric == "bf_makespan_s") bf = aggregate.summary;
      if (aggregate.metric == "tp_makespan_s") tp = aggregate.summary;
      if (aggregate.metric == "speedup") speedup = aggregate.summary;
      if (aggregate.metric == "tp_slo_violations") slo = aggregate.summary;
    }
    table.add_row({scenario, std::to_string(speedup.count),
                   util::format_double(bf.mean, 1),
                   util::format_double(tp.mean, 1),
                   util::format_double(speedup.mean, 3) + " +-" +
                       util::format_double(speedup.ci95_half, 3),
                   util::format_double(slo.mean, 1)});
  }
  std::fputs(table
                 .render("Ablation: topology-aware speedup under lognormal "
                         "execution noise invisible to the scheduler")
                 .c_str(),
             stdout);

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto obs_written = obs::finalize();
  if (!obs_written) {
    std::fprintf(stderr, "%s\n", obs_written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *obs_written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
