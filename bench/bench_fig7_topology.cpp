// Figures 1 & 7: the physical GPU topology graphs.
//
// Builds the IBM Power8 "Minsky" and NVIDIA DGX-1 topologies (plus the
// PCI-e comparison machine and a small cluster), prints their structure,
// level weights, GPU distance matrices, and the nvidia-smi-style
// connectivity matrix the discovery path consumes.
#include <cstdio>
#include <string>

#include "topo/builders.hpp"
#include "topo/discovery.hpp"

namespace {

void show(const std::string& title, const gts::topo::TopologyGraph& graph) {
  std::printf("==== %s ====\n", title.c_str());
  std::fputs(graph.describe().c_str(), stdout);
  std::printf("-- nvidia-smi topo --matrix (synthesized) --\n%s\n",
              gts::topo::discovery::render_matrix(graph).c_str());
}

}  // namespace

int main() {
  using namespace gts::topo::builders;
  std::printf("Fig. 1 / Fig. 7 reproduction: physical topology graphs\n\n");
  show("IBM Power8 S822LC 'Minsky' (2 sockets x 2 P100, dual NVLink)",
       power8_minsky());
  show("Power8 PCI-e Gen3 + K80 comparison machine (Section 3.2)",
       power8_pcie());
  show("NVIDIA DGX-1 (8 P100, hybrid cube-mesh NVLink)", dgx1());
  show("Cluster of 3 Minsky machines (simulation substrate)",
       cluster(3, MachineShape::kPower8Minsky));
  return 0;
}
