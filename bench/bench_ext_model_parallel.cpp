// Extension: model-parallel workloads. Section 2 of the paper expects
// topology-aware scheduling to be "even more critical for
// model-parallelization workloads because of the higher communication
// requirements" but evaluates data-parallel jobs only. Here pipeline
// (ring) jobs with heavy inter-stage traffic are compared pack vs spread
// and scheduled against the greedy baselines.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;

/// A 2-GPU model-parallel job: one stage boundary carrying `weight_scale`
/// times the data-parallel class volume.
jobgraph::JobRequest pipeline_job(int id, double arrival, double weight_scale,
                                  const perf::DlWorkloadModel& model,
                                  const topo::TopologyGraph& topology,
                                  long long iterations) {
  jobgraph::JobRequest job = perf::make_profiled_dl(
      id, arrival, jobgraph::NeuralNet::kAlexNet, 1, 2, 0.5, model, topology,
      iterations);
  jobgraph::JobGraph stages(2);
  stages.add_edge(0, 1, job.profile.comm_weight * weight_scale);
  job.comm_graph = stages;
  perf::fill_profile(job, model, topology);  // re-anchor with the MP graph
  return job;
}

}  // namespace

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  // Pack-vs-spread speedup as the stage boundary gets heavier: the
  // data-parallel Fig. 4 point is scale 1.0.
  metrics::Table speedups({"stage volume (x data-parallel)", "pack(s)",
                           "spread(s)", "speedup"});
  const std::vector<int> pack = perf::pack_placement(minsky, 2);
  const std::vector<int> spread = perf::spread_placement(minsky, 2);
  for (const double scale : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const jobgraph::JobRequest job =
        pipeline_job(0, 0.0, scale, model, minsky, 4000);
    const double pack_time = model.completion_time(job, pack, minsky);
    const double spread_time = model.completion_time(job, spread, minsky);
    speedups.add_row({util::format_double(scale, 1),
                      util::format_double(pack_time, 1),
                      util::format_double(spread_time, 1),
                      util::format_double(spread_time / pack_time, 3)});
  }
  std::fputs(speedups
                 .render("model-parallel pack vs spread (AlexNet-sized "
                         "stages, batch 1): heavier stage boundaries widen "
                         "the gap, as Section 2 predicts")
                 .c_str(),
             stdout);

  // Scheduling comparison: four 2-stage MP jobs with 4x traffic arriving
  // at a machine warmed by two 1-GPU jobs.
  std::vector<jobgraph::JobRequest> jobs;
  jobs.push_back(perf::make_profiled_dl(0, 0.0, jobgraph::NeuralNet::kGoogLeNet,
                                        16, 1, 0.3, model, minsky, 700));
  jobs.push_back(perf::make_profiled_dl(1, 2.0, jobgraph::NeuralNet::kGoogLeNet,
                                        16, 1, 0.3, model, minsky, 700));
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(pipeline_job(2 + i, 10.0 + 5.0 * i, 4.0, model, minsky,
                                400));
  }
  // Finding worth noting: plain TOPO-AWARE can do WORSE than Best-Fit
  // here. Its interference-aware placement spreads the two 1-GPU warm
  // jobs across sockets, leaving no intact socket for the heavy 2-GPU
  // stages, which it then places cross-socket rather than wait — the
  // fragmentation cost of interference avoidance. TOPO-AWARE-P's
  // postponement recovers the QoS (zero violations, smallest worst-case
  // slowdown), which is exactly why the paper pairs the utility with the
  // postponing policy.
  metrics::Table policies({"policy", "makespan(s)", "SLO violations",
                           "worst QoS slowdown"});
  for (const sched::Policy policy :
       {sched::Policy::kBestFit, sched::Policy::kFcfs,
        sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
    const auto report = exp::run_policy(policy, jobs, minsky, model);
    const auto slowdowns = report.recorder.sorted_qos_slowdowns();
    policies.add_row({std::string(sched::to_string(policy)),
                      util::format_double(report.recorder.makespan(), 1),
                      std::to_string(report.recorder.slo_violations()),
                      util::format_double(
                          slowdowns.empty() ? 0.0 : slowdowns.front(), 2)});
  }
  std::printf("\n");
  std::fputs(policies
                 .render("four 4x-traffic model-parallel jobs + background "
                         "load on one Minsky machine")
                 .c_str(),
             stdout);
  return 0;
}
