// Figure 3: application breakdown — GPU computation vs communication as a
// percentage of execution time, pack (P2P) vs spread (no P2P), for
// AlexNet / CaffeRef / GoogLeNet across the four batch classes.
//
// Paper anchors: AlexNet compute ~1 s per 40 iterations at tiny batches
// and ~66 s at big ones, communication ~2 s throughout; communication
// dominates at tiny batches and vanishes relative to compute at big ones.
#include <cstdio>

#include "exp/figures.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  const auto rows = exp::fig3_breakdown(model, minsky, /*iterations=*/40);

  metrics::Table table({"NN", "batch", "placement", "compute(s)", "comm(s)",
                        "compute%", "comm%"});
  for (const auto& row : rows) {
    table.add_row({std::string(jobgraph::to_string(row.nn)),
                   std::string(jobgraph::to_string(row.batch)),
                   row.pack ? "pack(P2P)" : "spread(no-P2P)",
                   util::format_double(row.compute_s, 2),
                   util::format_double(row.comm_s, 2),
                   util::format_double(100.0 * row.compute_fraction, 1),
                   util::format_double(100.0 * row.comm_fraction, 1)});
  }
  std::fputs(table
                 .render("Fig. 3: % of execution time, 40 iterations, "
                         "2-GPU data-parallel jobs")
                 .c_str(),
             stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  return 0;
}
