// Figure 5: NVLink bandwidth usage over time for AlexNet at batch sizes
// 1, 4, 64, 128 (2-GPU pack placement on the Minsky machine).
//
// Paper anchors: small batches saturate the link with ~40 GB/s bursts;
// big batches idle near ~6 GB/s with rare spikes.
#include <cstdio>
#include <vector>

#include "exp/figures.hpp"
#include "metrics/chart.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  const int batches[] = {1, 4, 64, 128};
  std::vector<metrics::Series> series;
  metrics::Table table({"batch", "mean GB/s", "p95 GB/s", "peak GB/s"});
  for (const int batch : batches) {
    const auto points =
        exp::fig5_bandwidth_series(model, minsky, batch, 250.0, 0.5);
    metrics::Series s;
    s.name = "batch " + std::to_string(batch);
    std::vector<double> values;
    for (const auto& p : points) {
      s.points.push_back({p.t, p.gbps});
      values.push_back(p.gbps);
    }
    const metrics::Summary summary = metrics::summarize(values);
    table.add_row({std::to_string(batch),
                   util::format_double(summary.mean, 1),
                   util::format_double(summary.p95, 1),
                   util::format_double(summary.max, 1)});
    series.push_back(std::move(s));
  }
  std::fputs(
      table.render("Fig. 5: NVLink bandwidth usage for AlexNet (250 s run)")
          .c_str(),
      stdout);
  metrics::ChartOptions options;
  options.x_label = "time (s)";
  options.y_label = "NVLink bandwidth (GB/s)";
  std::fputs(metrics::line_chart(series, options).c_str(), stdout);
  return 0;
}
