// Extension: the algorithm on the NVIDIA DGX-1 (Fig. 1's second system,
// which the paper models but does not evaluate on). The hybrid cube-mesh
// gives three placement tiers — direct NVLink pair, same quad, cross
// quad — and the topology-aware mapper should exploit them. Also runs a
// Section 5.3 workload on a small DGX-1 cluster to show the Fig. 10
// ordering is topology-agnostic.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph dgx = topo::builders::dgx1();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  // Placement tiers for a 2-GPU AlexNet job at batch 1.
  const jobgraph::JobRequest job = perf::make_profiled_dl(
      0, 0.0, jobgraph::NeuralNet::kAlexNet, 1, 2, 0.0, model, dgx, 4000);
  struct Tier {
    const char* name;
    std::vector<int> gpus;
  };
  const Tier tiers[] = {
      {"direct NVLink, same quad (0,1)", {0, 1}},
      {"direct NVLink, cross quad (0,4)", {0, 4}},
      {"no direct link: PCI-e + SMP bus (0,5)", {0, 5}},
      {"no direct link: PCI-e + SMP bus (1,6)", {1, 6}},
  };
  metrics::Table tier_table(
      {"placement", "distance", "P2P", "effective GB/s", "time(s)"});
  for (const Tier& tier : tiers) {
    tier_table.add_row(
        {tier.name,
         util::format_double(dgx.gpu_distance(tier.gpus[0], tier.gpus[1]), 0),
         dgx.gpu_path(tier.gpus[0], tier.gpus[1]).peer_to_peer ? "yes" : "no",
         util::format_double(model.effective_bandwidth(
                                 dgx, tier.gpus[0], tier.gpus[1], nullptr),
                             1),
         util::format_double(model.completion_time(job, tier.gpus, dgx), 1)});
  }
  std::fputs(
      tier_table.render("DGX-1 placement tiers (2-GPU AlexNet, batch 1, "
                        "4000 iterations)")
          .c_str(),
      stdout);

  // Policy comparison on a 3x DGX-1 cluster.
  const topo::TopologyGraph cluster =
      topo::builders::cluster(3, topo::builders::MachineShape::kDgx1);
  trace::GeneratorOptions gen;
  gen.job_count = 100;
  gen.iterations = 250;
  gen.arrival_rate_per_minute = 10.0;
  const auto jobs = trace::generate_workload(gen, model, cluster);
  const auto comparison = exp::compare_policies(jobs, cluster, model);

  metrics::Table policy_table({"policy", "SLO violations", "QoS mean",
                               "QoS p95", "mean wait(s)"});
  for (const auto& entry : comparison.entries) {
    const metrics::Summary qos = metrics::summarize(entry.qos_slowdowns);
    policy_table.add_row({entry.name, std::to_string(entry.slo_violations),
                          util::format_double(qos.mean, 3),
                          util::format_double(qos.p95, 3),
                          util::format_double(entry.mean_waiting, 1)});
  }
  std::printf("\n");
  std::fputs(policy_table
                 .render("100-job Section 5.3 workload on 3 DGX-1 machines")
                 .c_str(),
             stdout);
  std::printf(
      "\nFinding: on the DGX-1 a 2-GPU placement is binary — a direct "
      "NVLink pair or a 1.6x-slower host route — so non-postponing "
      "TOPO-AWARE (which spreads 1-GPU jobs to dodge interference and "
      "then takes whatever pairs remain) can underperform even Best-Fit. "
      "TOPO-AWARE-P's postponement is what makes the utility safe here: "
      "zero SLO violations and the best worst-case behaviour.\n");
  return 0;
}
