// Ablation: utility-weight sensitivity (alpha_cc / alpha_b / alpha_d of
// Eq. 1/2). The paper fixes equal thirds; this sweep shows how the
// Table 1 scenario responds when the scheduler over- or under-weights
// communication cost, interference, or fragmentation.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const auto jobs = exp::table1_jobs(model, minsky);

  struct WeightSpec {
    const char* name;
    sched::UtilityWeights weights;
  };
  const WeightSpec specs[] = {
      {"equal thirds (paper)", {1.0 / 3, 1.0 / 3, 1.0 / 3}},
      {"comm only", {1.0, 0.0, 0.0}},
      {"interference only", {0.0, 1.0, 0.0}},
      {"fragmentation only", {0.0, 0.0, 1.0}},
      {"comm heavy", {0.6, 0.2, 0.2}},
      {"interference heavy", {0.2, 0.6, 0.2}},
      {"fragmentation heavy", {0.2, 0.2, 0.6}},
  };

  metrics::Table table({"weights", "policy", "cumulative time(s)",
                        "SLO violations", "mean wait(s)", "worst QoS"});
  for (const WeightSpec& spec : specs) {
    for (const sched::Policy policy :
         {sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
      const auto report =
          exp::run_policy(policy, jobs, minsky, model, spec.weights);
      const auto slowdowns = report.recorder.sorted_qos_slowdowns();
      table.add_row({spec.name, std::string(sched::to_string(policy)),
                     util::format_double(report.recorder.makespan(), 1),
                     std::to_string(report.recorder.slo_violations()),
                     util::format_double(report.recorder.mean_waiting_time(), 1),
                     util::format_double(
                         slowdowns.empty() ? 0.0 : slowdowns.front(), 2)});
    }
  }
  std::fputs(table
                 .render("Ablation: Eq. 1/2 weight sensitivity on the "
                         "Table 1 scenario")
                 .c_str(),
             stdout);
  return 0;
}
