// Ablation: utility-weight sensitivity (alpha_cc / alpha_b / alpha_d of
// Eq. 1/2). The paper fixes equal thirds; this sweep shows how the
// Table 1 scenario responds when the scheduler over- or under-weights
// communication cost, interference, or fragmentation.
//
// Runs as a (weight-spec x seed) sweep on the experiment runner: each
// replica is self-contained, --threads fans the specs out, --out emits
// BENCH_ablation_alpha.json. The scenario is deterministic, so the
// default is a single seed.
#include <cstdio>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "perf/model.hpp"
#include "runner/sweep.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

struct WeightSpec {
  const char* name;
  gts::sched::UtilityWeights weights;
};

constexpr WeightSpec kSpecs[] = {
    {"equal thirds (paper)", {1.0 / 3, 1.0 / 3, 1.0 / 3}},
    {"comm only", {1.0, 0.0, 0.0}},
    {"interference only", {0.0, 1.0, 0.0}},
    {"fragmentation only", {0.0, 0.0, 1.0}},
    {"comm heavy", {0.6, 0.2, 0.2}},
    {"interference heavy", {0.2, 0.6, 0.2}},
    {"fragmentation heavy", {0.2, 0.2, 0.6}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'", "1");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }

  runner::SweepOptions options;
  options.name = "ablation_alpha";
  options.scenarios.clear();
  for (const WeightSpec& spec : kSpecs) options.scenarios.push_back(spec.name);
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "ablation_alpha";
  options.metadata["workload"] = "table1";

  const runner::SweepResult result =
      runner::run_sweep(options, [](const runner::ReplicaContext& context) {
        const topo::TopologyGraph minsky = topo::builders::power8_minsky();
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        const auto jobs = exp::table1_jobs(model, minsky);
        const sched::UtilityWeights weights =
            kSpecs[static_cast<size_t>(context.scenario_index)].weights;

        json::Object policies;
        double events = 0.0;
        for (const sched::Policy policy :
             {sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
          const auto report =
              exp::run_policy(policy, jobs, minsky, model, weights);
          const auto slowdowns = report.recorder.sorted_qos_slowdowns();
          json::Object entry;
          entry["makespan_s"] = report.recorder.makespan();
          entry["slo_violations"] = report.recorder.slo_violations();
          entry["mean_wait_s"] = report.recorder.mean_waiting_time();
          entry["worst_qos"] = slowdowns.empty() ? 0.0 : slowdowns.front();
          policies[std::string(sched::to_string(policy))] = std::move(entry);
          events += static_cast<double>(report.events);
        }
        json::Object payload;
        payload["events"] = events;
        payload["policies"] = std::move(policies);
        return json::Value(payload);
      });

  metrics::Table table({"weights", "policy", "cumulative time(s)",
                        "SLO violations", "mean wait(s)", "worst QoS"});
  for (const runner::Replica& replica : result.replicas) {
    if (replica.seed != result.options.seeds.front()) continue;
    const std::string& scenario =
        result.options.scenarios[static_cast<size_t>(replica.scenario_index)];
    for (const auto& [policy, entry] :
         replica.payload.at("policies").as_object()) {
      table.add_row(
          {scenario, policy,
           util::format_double(entry.at("makespan_s").as_number(), 1),
           std::to_string(entry.at("slo_violations").as_int()),
           util::format_double(entry.at("mean_wait_s").as_number(), 1),
           util::format_double(entry.at("worst_qos").as_number(), 2)});
    }
  }
  std::fputs(table
                 .render("Ablation: Eq. 1/2 weight sensitivity on the "
                         "Table 1 scenario")
                 .c_str(),
             stdout);

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto obs_written = obs::finalize();
  if (!obs_written) {
    std::fprintf(stderr, "%s\n", obs_written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *obs_written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
