// Figure 10 — Scenario 1: 100 jobs on 5 Minsky machines (Section 5.5.1).
//
// Prints the per-policy slowdown curves (jobs ordered worst to best) for
// (a) placement-quality QoS and (b) QoS including queue waiting time, plus
// the SLO-violation counts. Expected shape: TOPO-AWARE-P violates no SLOs
// and dominates; the greedy algorithms trail, FCFS worst on waiting.
#include <cstdio>
#include <vector>

#include "exp/scenarios.hpp"
#include "metrics/chart.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("machines", "cluster size", "5");
  cli.add_option("jobs", "number of jobs", "100");
  cli.add_option("seed", "workload seed", "42");
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }

  exp::LargeScaleOptions options;
  options.machines = static_cast<int>(cli.get_int("machines"));
  options.jobs = static_cast<int>(cli.get_int("jobs"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const exp::PolicyComparison comparison = exp::run_large_scale(options);

  metrics::Table table({"policy", "SLO violations", "QoS mean", "QoS p95",
                        "QoS max", "QoS+wait mean", "QoS+wait p95",
                        "mean wait(s)", "mean decision(us)"});
  std::vector<metrics::Series> qos_series;
  std::vector<metrics::Series> wait_series;
  for (const auto& entry : comparison.entries) {
    const metrics::Summary qos = metrics::summarize(entry.qos_slowdowns);
    const metrics::Summary wait =
        metrics::summarize(entry.qos_wait_slowdowns);
    table.add_row({entry.name, std::to_string(entry.slo_violations),
                   util::format_double(qos.mean, 3),
                   util::format_double(qos.p95, 3),
                   util::format_double(qos.max, 3),
                   util::format_double(wait.mean, 3),
                   util::format_double(wait.p95, 3),
                   util::format_double(entry.mean_waiting, 1),
                   util::format_double(entry.mean_decision_us, 1)});
    metrics::Series q{entry.name, {}};
    for (size_t i = 0; i < entry.qos_slowdowns.size(); ++i) {
      q.points.push_back({static_cast<double>(i), entry.qos_slowdowns[i]});
    }
    qos_series.push_back(std::move(q));
    metrics::Series w{entry.name, {}};
    for (size_t i = 0; i < entry.qos_wait_slowdowns.size(); ++i) {
      w.points.push_back(
          {static_cast<double>(i), entry.qos_wait_slowdowns[i]});
    }
    wait_series.push_back(std::move(w));
  }
  std::printf("Fig. 10 — Scenario 1: %d jobs, %d machines (seed %llu)\n",
              options.jobs, options.machines,
              static_cast<unsigned long long>(options.seed));
  std::fputs(table.render().c_str(), stdout);

  metrics::ChartOptions chart;
  chart.x_label = "jobs ordered worst to best";
  chart.y_label = "(a) JOB'S QOS slowdown";
  std::fputs(metrics::line_chart(qos_series, chart).c_str(), stdout);
  chart.y_label = "(b) JOB'S QOS + WAITING TIME slowdown";
  std::fputs(metrics::line_chart(wait_series, chart).c_str(), stdout);
  return 0;
}
