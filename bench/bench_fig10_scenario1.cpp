// Figure 10 — Scenario 1: 100 jobs on 5 Minsky machines (Section 5.5.1),
// as a multi-seed sweep on the parallel experiment runner.
//
// Each (seed) replica runs the full four-policy comparison on its own
// sim::Engine/ClusterState; replicas fan out over --threads workers and
// the per-replica payloads are byte-identical for any thread count.
// --out writes the versioned BENCH_fig10.json document. With a single
// seed, also prints the paper's slowdown curves (jobs ordered worst to
// best) for (a) placement-quality QoS and (b) QoS + waiting time.
#include <cstdio>
#include <vector>

#include "metrics/chart.hpp"
#include "obs/obs.hpp"
#include "runner/experiments.hpp"
#include "util/cli.hpp"

namespace {

/// Rebuilds the Fig. 10 line charts from one replica's per-policy
/// "qos_curve"/"qos_wait_curve" payload arrays.
void render_curves(const gts::json::Value& payload) {
  using namespace gts;
  std::vector<metrics::Series> qos_series;
  std::vector<metrics::Series> wait_series;
  for (const auto& [policy, entry] : payload.at("policies").as_object()) {
    const auto curve_of = [&](const char* key) {
      metrics::Series series{policy, {}};
      const json::Array& values = entry.at(key).as_array();
      for (size_t i = 0; i < values.size(); ++i) {
        series.points.push_back(
            {static_cast<double>(i), values[i].as_number()});
      }
      return series;
    };
    qos_series.push_back(curve_of("qos_curve"));
    wait_series.push_back(curve_of("qos_wait_curve"));
  }
  metrics::ChartOptions chart;
  chart.x_label = "jobs ordered worst to best";
  chart.y_label = "(a) JOB'S QOS slowdown";
  std::fputs(metrics::line_chart(qos_series, chart).c_str(), stdout);
  chart.y_label = "(b) JOB'S QOS + WAITING TIME slowdown";
  std::fputs(metrics::line_chart(wait_series, chart).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gts;
  util::CliParser cli;
  cli.add_option("machines", "cluster size", "5");
  cli.add_option("jobs", "number of jobs", "100");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }

  runner::LargeScaleSweepConfig config;
  config.name = "fig10";
  config.machines = static_cast<int>(cli.get_int("machines"));
  config.jobs = static_cast<int>(cli.get_int("jobs"));
  config.seeds = *seeds;
  config.threads = static_cast<int>(cli.get_int("threads"));
  config.include_curves = seeds->size() == 1;
  const runner::SweepResult result = runner::run_large_scale_sweep(config);

  std::printf(
      "Fig. 10 — Scenario 1: %d jobs, %d machines, %zu seed(s), "
      "%.2fs wall (%.0f events/s)\n",
      config.jobs, config.machines, seeds->size(), result.wall_seconds,
      result.events_per_second());
  std::fputs(runner::render_large_scale_table(result).c_str(), stdout);
  if (config.include_curves) {
    render_curves(result.replicas.front().payload);
  }

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto obs_written = obs::finalize();
  if (!obs_written) {
    std::fprintf(stderr, "%s\n", obs_written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *obs_written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
