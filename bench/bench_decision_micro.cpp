// Decision-path microbenchmark: per-stage wall-clock cost of one
// TOPO-AWARE placement decision, broken into the stages the ISSUE's
// perf-regression gate watches:
//
//   filter   — Algorithm 1's filterHostsByConstraints over the cluster
//   cache    — hashed placement-cache key construction + probe
//   fm       — one top-level FM job bipartition (Algorithm 3) in isolation
//   drb      — the full DRB mapping (Algorithm 2, FM + utility inside)
//   utility  — final placement_utility evaluation of the chosen mapping
//   place    — a full TopoAwareScheduler::place() decision (candidate
//              scoring serial by default; --scoring-threads N fans it out
//              across a pool, decisions byte-identical either way)
//   total    — the whole decision (sum of the stages as actually run)
//
// Each replica streams a controlled workload through a live ClusterState
// (placing mapped jobs, evicting the oldest when the cluster saturates) so
// the stages see realistic co-runner, flow and fragmentation state rather
// than an empty cluster. The whole decision sequence is replayed
// `--repeats` times (it is deterministic, so every repeat makes identical
// decisions) and each decision records its *minimum* stage time across
// repeats — the usual microbenchmark estimator that filters scheduler
// preemption and cache-cold outliers, keeping the 15% regression gate
// meaningful. Stage latencies land in the payload "timing" subtree, so
// BENCH_decision_micro.json keeps its deterministic sections
// byte-identical across thread counts while timing_aggregates carries the
// wall-clock means that tools/bench_compare.py gates on.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/state.hpp"
#include "metrics/table.hpp"
#include "obs/obs.hpp"
#include "partition/fm.hpp"
#include "perf/profile.hpp"
#include "runner/experiments.hpp"
#include "runner/sweep.hpp"
#include "sched/placement_cache_key.hpp"
#include "sched/scheduler.hpp"
#include "sched/topo_aware.hpp"
#include "sched/utility.hpp"
#include "sim/arrivals.hpp"
#include "topo/builders.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;
using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - begin).count();
}

util::Expected<std::vector<int>> parse_int_list(const std::string& spec,
                                                const char* what) {
  std::vector<int> values;
  for (const auto& token : util::split(spec, ',')) {
    const std::string_view trimmed = util::trim(token);
    if (trimmed.empty()) continue;
    const auto value = util::parse_int(trimmed);
    if (!value || *value <= 0) {
      return util::Error{std::string(what) + ": bad entry '" +
                         std::string(trimmed) + "'"};
    }
    values.push_back(static_cast<int>(*value));
  }
  if (values.empty()) {
    return util::Error{std::string(what) + ": empty list"};
  }
  return values;
}

/// Same controlled workload as bench_overhead: all-to-all job graphs over
/// `tasks` GPUs, NN/batch mix cycled deterministically.
std::vector<jobgraph::JobRequest> micro_jobs(
    int job_count, int tasks, const perf::DlWorkloadModel& model,
    const topo::TopologyGraph& topology, util::Rng& rng) {
  util::Rng arrival_rng = rng.fork(1);
  const double rate_per_minute =
      10.0 * static_cast<double>(topology.machine_count()) / 5.0;
  const std::vector<double> arrivals =
      sim::poisson_arrivals(job_count, rate_per_minute, arrival_rng);

  const jobgraph::NeuralNet nets[] = {jobgraph::NeuralNet::kAlexNet,
                                      jobgraph::NeuralNet::kCaffeRef,
                                      jobgraph::NeuralNet::kGoogLeNet};
  const int batches[] = {1, 4, 16};
  const int per_machine =
      static_cast<int>(topology.gpus_of_machine(0).size());

  std::vector<jobgraph::JobRequest> jobs;
  jobs.reserve(static_cast<size_t>(job_count));
  for (int i = 0; i < job_count; ++i) {
    jobgraph::JobRequest request = perf::make_profiled_dl(
        i, arrivals[static_cast<size_t>(i)], nets[i % 3],
        batches[(i / 3) % 3], tasks, tasks == 1 ? 0.3 : 0.5, model, topology,
        250);
    if (tasks > per_machine) request.profile.single_node = false;
    jobs.push_back(std::move(request));
  }
  return jobs;
}

/// Per-decision stage latencies of one pass, microseconds.
struct StageSample {
  double filter_us = 0.0;
  double cache_us = 0.0;
  double fm_us = 0.0;
  double drb_us = 0.0;
  double utility_us = 0.0;
  double place_us = 0.0;
  double total_us = 0.0;

  void min_with(const StageSample& other) {
    filter_us = std::min(filter_us, other.filter_us);
    cache_us = std::min(cache_us, other.cache_us);
    fm_us = std::min(fm_us, other.fm_us);
    drb_us = std::min(drb_us, other.drb_us);
    utility_us = std::min(utility_us, other.utility_us);
    place_us = std::min(place_us, other.place_us);
    total_us = std::min(total_us, other.total_us);
  }
};

/// Deterministic counters of one pass; identical across repeats.
struct PassCounters {
  long long decisions = 0;
  long long mapped = 0;
  long long cache_hits = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("machines", "cluster sizes to sweep", "5,20,50");
  cli.add_option("tasks", "job-graph sizes (GPUs per job) to sweep", "8");
  cli.add_option("jobs", "jobs per replica", "200");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "worker threads (0 = all cores)", "0");
  cli.add_option("repeats", "timed passes per replica (min taken)", "5");
  cli.add_option("scoring-threads",
                 "parallel candidate scoring in the place stage (0 = serial)",
                 "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }
  const auto machines = parse_int_list(cli.get("machines"), "machines");
  if (!machines) {
    std::fprintf(stderr, "%s\n", machines.error().message.c_str());
    return 1;
  }
  const auto tasks = parse_int_list(cli.get("tasks"), "tasks");
  if (!tasks) {
    std::fprintf(stderr, "%s\n", tasks.error().message.c_str());
    return 1;
  }
  const int job_count = static_cast<int>(cli.get_int("jobs"));
  const int repeats = std::max(1, static_cast<int>(cli.get_int("repeats")));
  const int scoring_threads =
      static_cast<int>(cli.get_int("scoring-threads"));
  if (scoring_threads < 0) {
    std::fprintf(stderr, "--scoring-threads must be >= 0\n");
    return 1;
  }

  runner::SweepOptions options;
  options.name = "decision_micro";
  options.scenarios.clear();
  for (const int m : *machines) {
    for (const int t : *tasks) {
      options.scenarios.push_back("minsky-" + std::to_string(m) + "m-" +
                                  std::to_string(t) + "t");
    }
  }
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  options.metadata["experiment"] = "decision_micro";
  {
    json::Array grid_machines;
    for (const int m : *machines) grid_machines.push_back(m);
    options.metadata["machines"] = std::move(grid_machines);
    json::Array grid_tasks;
    for (const int t : *tasks) grid_tasks.push_back(t);
    options.metadata["tasks"] = std::move(grid_tasks);
  }
  options.metadata["jobs"] = job_count;
  options.metadata["repeats"] = repeats;
  options.metadata["scoring_threads"] = scoring_threads;
  options.metadata["stages"] = json::Array{
      json::Value("filter"), json::Value("cache"),   json::Value("fm"),
      json::Value("drb"),    json::Value("utility"), json::Value("place")};

  const int tasks_axis = static_cast<int>(tasks->size());
  const std::vector<int> machine_axis = *machines;
  const std::vector<int> task_axis = *tasks;
  const runner::SweepResult result = runner::run_sweep(
      options, [=](const runner::ReplicaContext& context) {
        const int m = machine_axis[static_cast<size_t>(context.scenario_index /
                                                       tasks_axis)];
        const int t =
            task_axis[static_cast<size_t>(context.scenario_index % tasks_axis)];
        const topo::TopologyGraph topology = topo::builders::cluster(
            m, topo::builders::MachineShape::kPower8Minsky);
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        util::Rng rng = context.rng;
        const std::vector<jobgraph::JobRequest> jobs =
            micro_jobs(job_count, t, model, topology, rng);

        const sched::UtilityModel utility{sched::UtilityWeights{}};
        // Full-decision stage: a real scheduler instance, so the place
        // stage exercises the pre-score/candidate path (and, with
        // --scoring-threads, the parallel scorer) rather than one bare
        // drb_place call.
        sched::TopoAwareScheduler scheduler(sched::UtilityWeights{},
                                            /*postpone=*/false);
        if (scoring_threads > 0) {
          scheduler.set_parallel_scoring(scoring_threads);
        }
        std::vector<StageSample> best;  // per decision, min across repeats
        PassCounters counters;

        const auto run_pass = [&](int repeat) {
          cluster::ClusterState state(topology, model);
          partition::FmScratch fm_scratch;
          std::unordered_map<sched::PlacementCacheKey, bool,
                             sched::PlacementCacheKeyHash>
              cache;
          std::uint64_t cache_version = state.allocation_version();

          PassCounters pass;
          std::deque<int> resident;  // placed job ids, oldest first
          double now = 0.0;
          size_t decision_index = 0;

          for (const jobgraph::JobRequest& request : jobs) {
            now = request.arrival_time;
            // Evict the oldest jobs once the cluster saturates so later
            // decisions run against a churning (but deterministic) state.
            while (state.free_gpu_count() < 2 * request.num_gpus &&
                   !resident.empty()) {
              state.remove(resident.front(), now);
              resident.pop_front();
            }

            StageSample sample;
            const auto decision_begin = Clock::now();

            auto begin = Clock::now();
            const std::vector<int> available =
                sched::filter_hosts(request, state);
            sample.filter_us = elapsed_us(begin, Clock::now());

            // Cache stage: key construction + probe, with the same
            // allocation-epoch flush rule as TopoAwareScheduler.
            begin = Clock::now();
            if (cache_version != state.allocation_version()) {
              cache.clear();
              cache_version = state.allocation_version();
            }
            const sched::PlacementCacheKey key =
                sched::hashed_placement_cache_key(request, available);
            if (cache.find(key) != cache.end()) ++pass.cache_hits;
            sample.cache_us = elapsed_us(begin, Clock::now());

            // FM stage: the top-level job bipartition of Algorithm 3 in
            // isolation, with scratch reuse (the scheduler's hot call
            // shape).
            begin = Clock::now();
            partition::FmGraph fm_graph;
            fm_graph.vertex_count = request.comm_graph.task_count();
            fm_graph.edges.reserve(request.comm_graph.edges().size());
            for (const jobgraph::CommEdge& edge :
                 request.comm_graph.edges()) {
              fm_graph.edges.push_back({edge.a, edge.b, edge.weight});
            }
            std::vector<int> initial(
                static_cast<size_t>(fm_graph.vertex_count));
            for (int v = 0; v < fm_graph.vertex_count; ++v) {
              initial[static_cast<size_t>(v)] = v % 2;
            }
            const partition::FmResult fm_result = partition::fm_bipartition(
                fm_graph, std::move(initial), {}, &fm_scratch);
            (void)fm_result;
            sample.fm_us = elapsed_us(begin, Clock::now());

            // DRB stage: the full utility-driven mapping.
            std::optional<sched::Placement> placement;
            begin = Clock::now();
            if (static_cast<int>(available.size()) >= request.num_gpus) {
              placement = sched::drb_place(request, available, state, utility,
                                           nullptr);
            }
            sample.drb_us = elapsed_us(begin, Clock::now());

            // Utility stage: re-evaluating the chosen placement, the unit
            // of work the incremental aggregates accelerate.
            begin = Clock::now();
            if (placement) {
              (void)utility.placement_utility(request, placement->gpus,
                                              state);
            }
            sample.utility_us = elapsed_us(begin, Clock::now());

            // Place stage: the whole decision through the scheduler
            // (filter + cache + candidate scoring + reduction).
            begin = Clock::now();
            (void)scheduler.place(request, state);
            sample.place_us = elapsed_us(begin, Clock::now());

            cache.emplace(key, placement.has_value());
            sample.total_us = elapsed_us(decision_begin, Clock::now());
            ++pass.decisions;
            if (placement) {
              ++pass.mapped;
              state.place(request, placement->gpus, now, placement->utility);
              resident.push_back(request.id);
            }

            if (repeat == 0) {
              best.push_back(sample);
            } else {
              best[decision_index].min_with(sample);
            }
            ++decision_index;
          }
          counters = pass;
        };

        for (int repeat = 0; repeat < repeats; ++repeat) run_pass(repeat);

        json::Object payload;
        payload["machines"] = m;
        payload["tasks_per_job"] = t;
        payload["decisions"] = counters.decisions;
        payload["mapped"] = counters.mapped;
        payload["cache_hits"] = counters.cache_hits;
        obs::HistogramData filter_us, cache_us, fm_us, drb_us, utility_us,
            place_us, total_us;
        for (const StageSample& sample : best) {
          filter_us.record(sample.filter_us);
          cache_us.record(sample.cache_us);
          fm_us.record(sample.fm_us);
          drb_us.record(sample.drb_us);
          utility_us.record(sample.utility_us);
          place_us.record(sample.place_us);
          total_us.record(sample.total_us);
        }
        json::Object timing;
        timing["filter_us"] = filter_us.to_json();
        timing["cache_us"] = cache_us.to_json();
        timing["fm_us"] = fm_us.to_json();
        timing["drb_us"] = drb_us.to_json();
        timing["utility_us"] = utility_us.to_json();
        timing["place_us"] = place_us.to_json();
        timing["total_us"] = total_us.to_json();
        payload[runner::kTimingKey] = std::move(timing);
        return json::Value(std::move(payload));
      });

  std::printf(
      "decision-path microbenchmark: %zu scenarios x %zu seed(s), %.2fs "
      "wall\n",
      options.scenarios.size(), seeds->size(), result.wall_seconds);
  metrics::Table table({"scenario", "filter(us)", "cache(us)", "fm(us)",
                        "drb(us)", "utility(us)", "place(us)", "total(us)"});
  for (const std::string& scenario : options.scenarios) {
    const auto cell = [&](const char* stage) {
      return util::format_double(
          runner::find_aggregate(result, scenario,
                                 std::string("timing.") + stage + ".mean")
              .mean,
          1);
    };
    table.add_row({scenario, cell("filter_us"), cell("cache_us"),
                   cell("fm_us"), cell("drb_us"), cell("utility_us"),
                   cell("place_us"), cell("total_us")});
  }
  std::fputs(table.render().c_str(), stdout);

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "%s\n", written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
