// Microbenchmarks of the mapping machinery: Fiduccia-Mattheyses
// bipartitioning, the hierarchical physical bipartition, the full DRB
// mapping (complexity Theta(|E_A| * log2 |V_P|), Section 5.5.3), and the
// topology shortest-path layer it sits on.
#include <benchmark/benchmark.h>

#include "partition/drb.hpp"
#include "partition/fm.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace {

using namespace gts;

partition::FmGraph random_graph(int vertices, double density,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  partition::FmGraph graph;
  graph.vertex_count = vertices;
  for (int i = 0; i < vertices; ++i) {
    for (int j = i + 1; j < vertices; ++j) {
      if (rng.uniform() < density) {
        graph.edges.push_back({i, j, rng.uniform(0.5, 5.0)});
      }
    }
  }
  return graph;
}

void BM_FmBipartition(benchmark::State& state) {
  const int vertices = static_cast<int>(state.range(0));
  const partition::FmGraph graph = random_graph(vertices, 0.3, 99);
  std::vector<int> initial(static_cast<size_t>(vertices));
  for (int i = 0; i < vertices; ++i) initial[static_cast<size_t>(i)] = i % 2;
  for (auto _ : state) {
    auto result = partition::fm_bipartition(graph, initial);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(static_cast<int64_t>(graph.edges.size()));
}
BENCHMARK(BM_FmBipartition)->Arg(16)->Arg(64)->Arg(256)->Complexity();

/// Pack-preferring callbacks with negligible cost, isolating DRB itself.
class CheapCallbacks : public partition::DrbCallbacks {
 public:
  double task_utility(int, int side,
                      const partition::BipartitionView& view) const override {
    const auto& gpus = side == 0 ? view.gpus0 : view.gpus1;
    const auto& tasks = side == 0 ? view.tasks0 : view.tasks1;
    return static_cast<double>(tasks.size()) * 10.0 +
           static_cast<double>(gpus.size());
  }
};

void BM_DrbMap(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const topo::TopologyGraph topology = topo::builders::cluster(
      machines, topo::builders::MachineShape::kPower8Minsky);
  std::vector<int> available(static_cast<size_t>(topology.gpu_count()));
  for (int g = 0; g < topology.gpu_count(); ++g) {
    available[static_cast<size_t>(g)] = g;
  }
  const jobgraph::JobGraph job = jobgraph::JobGraph::all_to_all(4, 4.0);
  const CheapCallbacks callbacks;
  for (auto _ : state) {
    auto result = partition::drb_map(job, available, topology, callbacks);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(topology.gpu_count());
}
BENCHMARK(BM_DrbMap)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Complexity();

void BM_PhysicalBipartition(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const topo::TopologyGraph topology = topo::builders::cluster(
      machines, topo::builders::MachineShape::kPower8Minsky);
  std::vector<int> gpus(static_cast<size_t>(topology.gpu_count()));
  for (int g = 0; g < topology.gpu_count(); ++g) {
    gpus[static_cast<size_t>(g)] = g;
  }
  for (auto _ : state) {
    auto side = partition::physical_bipartition(gpus, topology);
    benchmark::DoNotOptimize(side);
  }
}
BENCHMARK(BM_PhysicalBipartition)->Arg(2)->Arg(8)->Arg(32);

void BM_GpuPathLookup(benchmark::State& state) {
  const topo::TopologyGraph topology = topo::builders::cluster(
      static_cast<int>(state.range(0)),
      topo::builders::MachineShape::kPower8Minsky);
  (void)topology.gpu_distance(0, 1);  // warm the cache
  const int n = topology.gpu_count();
  int i = 0;
  for (auto _ : state) {
    const int a = i % n;
    const int b = (i * 7 + 1) % n;
    if (a != b) {
      benchmark::DoNotOptimize(topology.gpu_distance(a, b));
    }
    ++i;
  }
}
BENCHMARK(BM_GpuPathLookup)->Arg(1)->Arg(100)->Arg(1000);

void BM_DijkstraMinsky(benchmark::State& state) {
  const topo::TopologyGraph topology = topo::builders::power8_minsky();
  for (auto _ : state) {
    auto path = topology.shortest_path(topology.gpu_node(0),
                                       topology.gpu_node(3));
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_DijkstraMinsky);

}  // namespace

BENCHMARK_MAIN();
