// Extension: multi-node jobs ("in the future, we plan to extend this work
// to transparently scale learning applications to multiple disaggregated
// GPUs across the cluster", Section 7). Jobs with single_node = false may
// span machines; the mapper still packs when a machine fits and only
// spans when forced, paying the cross-machine network path.
#include <cstdio>
#include <set>

#include "exp/scenarios.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "perf/profile.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph cluster = topo::builders::cluster(
      4, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  // An 8-GPU data-parallel job cannot fit one 4-GPU Minsky: it must span
  // two machines. Show what disaggregation costs per batch size.
  metrics::Table cost({"batch", "4-GPU single-node iter(ms)",
                       "8-GPU two-node iter(ms)",
                       "8-GPU scaled throughput (samples/s)",
                       "4-GPU throughput (samples/s)"});
  std::vector<int> two_nodes;
  for (int g = 0; g < 8; ++g) two_nodes.push_back(g);
  const std::vector<int> one_node = {0, 1, 2, 3};
  for (const int batch : {1, 4, 16, 64}) {
    jobgraph::JobRequest wide =
        jobgraph::JobRequest::make_dl(0, 0.0, jobgraph::NeuralNet::kAlexNet,
                                      batch, 8, 0.0, 1);
    wide.profile.single_node = false;
    const jobgraph::JobRequest narrow = jobgraph::JobRequest::make_dl(
        1, 0.0, jobgraph::NeuralNet::kAlexNet, batch, 4, 0.0, 1);
    const double wide_iter =
        model.iteration(wide, two_nodes, cluster).total_s;
    const double narrow_iter =
        model.iteration(narrow, one_node, cluster).total_s;
    cost.add_row(
        {std::to_string(batch), util::format_double(narrow_iter * 1e3, 1),
         util::format_double(wide_iter * 1e3, 1),
         util::format_double(8.0 * batch / wide_iter, 1),
         util::format_double(4.0 * batch / narrow_iter, 1)});
  }
  std::fputs(cost.render("disaggregation cost: 8 GPUs across 2 machines vs "
                         "4 GPUs in one (AlexNet)")
                 .c_str(),
             stdout);
  std::printf(
      "\nSmall batches lose throughput by spanning (the network path "
      "bottlenecks every pair); large batches amortize it — the same "
      "crossover as Fig. 4, one level up the hierarchy.\n\n");

  // Scheduling: a mixed workload where two 6-GPU multi-node jobs compete
  // with single-node jobs.
  std::vector<jobgraph::JobRequest> jobs;
  int id = 0;
  for (const double arrival : {0.0, 5.0, 10.0, 15.0}) {
    jobs.push_back(perf::make_profiled_dl(id++, arrival,
                                          jobgraph::NeuralNet::kAlexNet, 4, 2,
                                          0.5, model, cluster, 400));
  }
  for (const double arrival : {20.0, 25.0}) {
    jobgraph::JobRequest wide = perf::make_profiled_dl(
        id++, arrival, jobgraph::NeuralNet::kAlexNet, 16, 6, 0.0, model,
        cluster, 400);
    wide.profile.single_node = false;
    wide.min_utility = 0.0;  // no machine fits 6 GPUs; never satisfiable
    jobs.push_back(wide);
  }
  metrics::Table policies({"policy", "makespan(s)", "SLO violations",
                           "machines spanned by 6-GPU jobs"});
  for (const sched::Policy policy :
       {sched::Policy::kFcfs, sched::Policy::kBestFit,
        sched::Policy::kTopoAware}) {
    const auto report = exp::run_policy(policy, jobs, cluster, model);
    int max_span = 0;
    for (const auto& record : report.recorder.records()) {
      if (record.num_gpus != 6 || !record.placed()) continue;
      std::set<int> machines;
      for (const int gpu : record.gpus) {
        machines.insert(cluster.machine_of_gpu(gpu));
      }
      max_span = std::max(max_span, static_cast<int>(machines.size()));
    }
    policies.add_row({std::string(sched::to_string(policy)),
                      util::format_double(report.recorder.makespan(), 1),
                      std::to_string(report.recorder.slo_violations()),
                      std::to_string(max_span)});
  }
  std::fputs(policies
                 .render("mixed single-/multi-node workload on 4 Minsky "
                         "machines")
                 .c_str(),
             stdout);
  return 0;
}
