// Datacenter-scale sharding sweep: per-decision latency and placement
// quality, 500-5000 machines (DESIGN.md section 19).
//
// The single-driver TOPO-AWARE scheduler evaluates candidates over the
// whole cluster, so its per-decision cost grows with machine count. The
// sharded driver routes each arrival through the two-stage Filter/Score
// router and runs the full scheduling pass inside one cell only, keeping
// per-decision work O(cell). This bench is the artifact for that claim:
// a (machines x shards) sweep whose timing subtrees show flat sharded
// decision latency while the unsharded oracle climbs, plus the placement
// quality delta the federation gives up (the router sees aggregates, not
// GPUs, so cells can be locally fuller than the oracle would allow).
//
// Scenario labels follow bench_overhead: "minsky-1000m-8s". Everything
// outside the "timing" subtrees is byte-identical across --threads and
// --shard-threads (the runner's determinism contract); BENCH_scale.json
// diffs are gated in CI by tools/bench_compare.py against the committed
// baseline at 500 machines.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "cluster/recorder.hpp"
#include "obs/obs.hpp"
#include "runner/experiments.hpp"
#include "runner/sweep.hpp"
#include "sched/driver.hpp"
#include "shard/sharded_driver.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

using namespace gts;

util::Expected<std::vector<int>> parse_int_list(const std::string& spec,
                                                const char* what) {
  std::vector<int> values;
  for (const auto& token : util::split(spec, ',')) {
    const std::string_view trimmed = util::trim(token);
    if (trimmed.empty()) continue;
    const auto value = util::parse_int(trimmed);
    if (!value || *value <= 0) {
      return util::Error{std::string(what) + ": bad entry '" +
                         std::string(trimmed) + "'"};
    }
    values.push_back(static_cast<int>(*value));
  }
  if (values.empty()) {
    return util::Error{std::string(what) + ": empty list"};
  }
  return values;
}

/// Quality summary of one finished run, computed from the job records so
/// the sharded and unsharded drivers are judged by the same yardstick.
json::Value quality_payload(const sched::DriverReport& report) {
  double utility_sum = 0.0;
  double jct_sum = 0.0;
  double wait_sum = 0.0;
  long long placed = 0;
  long long finished = 0;
  for (const cluster::JobRecord& record : report.recorder.records()) {
    if (record.placed()) {
      utility_sum += record.placement_utility;
      wait_sum += record.waiting_time();
      ++placed;
    }
    if (record.finished()) {
      jct_sum += record.end - record.arrival;
      ++finished;
    }
  }
  json::Value quality;
  quality.set("placed", placed);
  quality.set("finished", finished);
  quality.set("makespan_s", report.recorder.makespan());
  quality.set("utility_mean",
              placed > 0 ? utility_sum / static_cast<double>(placed) : 0.0);
  quality.set("jct_mean_s",
              finished > 0 ? jct_sum / static_cast<double>(finished) : 0.0);
  quality.set("wait_mean_s",
              placed > 0 ? wait_sum / static_cast<double>(placed) : 0.0);
  quality.set("decisions", report.decision_count);
  quality.set("advance_events", report.advance_count);
  return quality;
}

json::Value timing_payload(const sched::DriverReport& report) {
  json::Value timing;
  timing.set("decision_latency_us", report.decision_latency_us.to_json());
  // The per-decision vs per-advance split (Section 5.5.3): scale
  // regressions attribute to the decision path (candidate scoring) or the
  // event path (completion processing + rate updates). The scoped event
  // path keeps the advance mean flat with machine count; the
  // full-recompute oracle climbed with resident-job count.
  timing.set("advance_latency_us", report.advance_latency_us.to_json());
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("machines", "cluster sizes to sweep", "500,1000,2000,5000");
  cli.add_option("shards",
                 "shard counts to sweep ('auto' = machines / cell-machines)",
                 "auto");
  cli.add_option("cell-machines",
                 "target cell size for --shards auto", "125");
  cli.add_option("shard-threads",
                 "cell-advance workers (results stay byte-identical)", "1");
  cli.add_option("jobs",
                 "jobs per replica (0 = auto: 6 jobs per 5 machines, so "
                 "every cluster size sees comparable queue pressure)",
                 "0");
  cli.add_option("iterations", "training iterations per job", "1500");
  cli.add_option("oracle-max",
                 "run the unsharded oracle up to this many machines "
                 "(0 = never; it degrades super-linearly — that is the "
                 "point of the bench)",
                 "2000");
  cli.add_option("seeds", "replica count N (seeds 1..N) or list 'a,b,c'",
                 "42,");
  cli.add_option("threads", "sweep worker threads (0 = all cores)", "0");
  cli.add_option("out", "write BENCH JSON here ('' = no file)", "");
  obs::add_cli_flags(cli);
  if (auto status = cli.parse(argc, argv); !status) {
    std::fprintf(stderr, "%s\n%s", status.error().message.c_str(),
                 cli.usage(argv[0]).c_str());
    return 1;
  }
  if (auto status = obs::configure_from_cli(cli); !status) {
    std::fprintf(stderr, "%s\n", status.error().message.c_str());
    return 1;
  }
  const auto seeds = runner::parse_seed_spec(cli.get("seeds"));
  if (!seeds) {
    std::fprintf(stderr, "%s\n", seeds.error().message.c_str());
    return 1;
  }
  const auto machines = parse_int_list(cli.get("machines"), "machines");
  if (!machines) {
    std::fprintf(stderr, "%s\n", machines.error().message.c_str());
    return 1;
  }
  const int cell_machines = static_cast<int>(cli.get_int("cell-machines"));
  if (cell_machines < 1) {
    std::fprintf(stderr, "--cell-machines must be >= 1\n");
    return 1;
  }
  std::vector<int> shard_axis;
  if (cli.get("shards") != "auto") {
    const auto parsed = parse_int_list(cli.get("shards"), "shards");
    if (!parsed) {
      std::fprintf(stderr, "%s\n", parsed.error().message.c_str());
      return 1;
    }
    shard_axis = *parsed;
  }
  const int shard_threads = static_cast<int>(cli.get_int("shard-threads"));
  const int job_count = static_cast<int>(cli.get_int("jobs"));
  if (job_count < 0) {
    std::fprintf(stderr, "--jobs must be >= 0\n");
    return 1;
  }
  const long long iterations = cli.get_int("iterations");
  const int oracle_max = static_cast<int>(cli.get_int("oracle-max"));

  // The grid: explicit shard counts sweep per machine size; auto derives
  // one shard count per size so cells stay ~cell-machines machines.
  std::vector<std::pair<int, int>> grid;  // (machines, shards)
  for (const int m : *machines) {
    if (shard_axis.empty()) {
      grid.emplace_back(m, std::max(1, m / cell_machines));
    } else {
      for (const int s : shard_axis) {
        if (s <= m) grid.emplace_back(m, s);
      }
    }
  }

  runner::SweepOptions options;
  options.name = "scale";
  options.scenarios.clear();
  for (const auto& [m, s] : grid) {
    options.scenarios.push_back("minsky-" + std::to_string(m) + "m-" +
                                std::to_string(s) + "s");
  }
  options.seeds = *seeds;
  options.threads = static_cast<int>(cli.get_int("threads"));
  // The machine grid is deliberately NOT metadata: scenario labels carry
  // it, and bench_compare.py gates the intersection of scenarios — a CI
  // smoke run at 500 machines must config-match the committed full-grid
  // baseline on every shared key.
  options.metadata["experiment"] = "scale";
  options.metadata["jobs"] = job_count;
  options.metadata["iterations"] = iterations;
  options.metadata["cell_machines"] = cell_machines;
  options.metadata["shard_threads"] = shard_threads;
  options.metadata["oracle_max"] = oracle_max;
  options.metadata["policy"] = std::string("TOPO-AWARE-P");

  const std::vector<std::pair<int, int>> grid_axis = grid;
  const runner::SweepResult result = runner::run_sweep(
      options, [=](const runner::ReplicaContext& context) {
        const auto [m, s] = grid_axis[static_cast<size_t>(
            context.scenario_index)];
        const topo::TopologyGraph topology = topo::builders::make_cluster(
            m, 4, topo::builders::MachineShape::kPower8Minsky);
        const perf::DlWorkloadModel model(
            perf::CalibrationParams::paper_minsky());
        trace::GeneratorOptions generator;
        generator.job_count = job_count > 0 ? job_count : (m * 6) / 5;
        generator.iterations = iterations;
        // Arrival pressure scales with the cluster like the Section 5.5
        // scenarios, so every size sees comparable queue dynamics.
        generator.arrival_rate_per_minute =
            10.0 * static_cast<double>(m) / 5.0;
        generator.seed = context.seed;
        const std::vector<jobgraph::JobRequest> jobs =
            trace::generate_workload(generator, model, topology);

        json::Value payload;
        payload.set("machines", m);
        payload.set("shards", s);

        // Sharded run.
        shard::ShardedOptions sharded_options;
        sharded_options.shards = s;
        sharded_options.shard_threads = shard_threads;
        // Nothing in the payload reads the bandwidth/utility series; at
        // 5000 machines the per-event series append is pure overhead.
        sharded_options.driver.record_series = false;
        shard::ShardedDriver sharded(topology, model, sharded_options);
        const sched::DriverReport sharded_report = sharded.run(jobs);
        json::Value sharded_payload = quality_payload(sharded_report);
        const sched::RouterTelemetry router = sharded.router();
        json::Value router_payload;
        router_payload.set("routed", router.routed);
        router_payload.set("filtered", router.filtered);
        router_payload.set("exhausted", router.exhausted);
        sharded_payload.set("router", std::move(router_payload));
        json::Array per_shard;
        for (const sched::ShardInfo& info : sharded.shard_infos()) {
          json::Value row;
          row.set("shard", info.shard);
          row.set("machines", info.machines);
          row.set("gpus", info.gpus);
          row.set("decisions", info.decisions);
          row.set("placements", info.placements);
          row.set("routed", info.routed);
          per_shard.push_back(std::move(row));
        }
        sharded_payload.set("per_shard", std::move(per_shard));
        json::Value sharded_timing = timing_payload(sharded_report);
        sharded_timing.set("route_latency_us",
                           router.route_latency_us.to_json());
        sharded_payload.set("timing", std::move(sharded_timing));
        payload.set("events",
                    static_cast<double>(sharded_report.events));
        payload.set("sharded", std::move(sharded_payload));

        // Unsharded oracle, where the size still permits it.
        if (oracle_max > 0 && m <= oracle_max) {
          const auto scheduler =
              sched::make_scheduler(sched::Policy::kTopoAwareP);
          sched::DriverOptions oracle_options;
          oracle_options.record_series = false;
          sched::Driver oracle(topology, model, *scheduler, oracle_options);
          const sched::DriverReport oracle_report = oracle.run(jobs);
          json::Value oracle_payload = quality_payload(oracle_report);
          oracle_payload.set("timing", timing_payload(oracle_report));
          // Placement-quality delta: what the federation gives up by
          // routing on cell aggregates instead of scoring every GPU.
          json::Value delta;
          delta.set("utility_mean",
                    payload.at("sharded").at("utility_mean").as_number() -
                        oracle_payload.at("utility_mean").as_number());
          delta.set("jct_mean_s",
                    payload.at("sharded").at("jct_mean_s").as_number() -
                        oracle_payload.at("jct_mean_s").as_number());
          delta.set("makespan_s",
                    payload.at("sharded").at("makespan_s").as_number() -
                        oracle_payload.at("makespan_s").as_number());
          payload.set("unsharded", std::move(oracle_payload));
          payload.set("delta", std::move(delta));
        }
        return payload;
      });

  std::printf(
      "Section 19 — sharded scale sweep: %zu scenarios x %zu seed(s), "
      "%.2fs wall (%.0f events/s)\n",
      options.scenarios.size(), seeds->size(), result.wall_seconds,
      result.events_per_second());
  std::printf(
      "  %-18s %14s %14s %13s %13s %12s %12s %10s\n", "scenario",
      "sharded us/dec", "oracle us/dec", "shard us/adv", "oracle us/adv",
      "route p95 us", "d utility", "d jct s");
  for (size_t i = 0; i < options.scenarios.size(); ++i) {
    const std::string& scenario = options.scenarios[i];
    const auto mean = [&](const std::string& metric) {
      return runner::find_aggregate(result, scenario, metric).mean;
    };
    const metrics::Summary oracle = runner::find_aggregate(
        result, scenario, "unsharded.timing.decision_latency_us.mean");
    const metrics::Summary oracle_adv = runner::find_aggregate(
        result, scenario, "unsharded.timing.advance_latency_us.mean");
    std::printf(
        "  %-18s %14.1f %14s %13.1f %13s %12.1f %12.4f %10.2f\n",
        scenario.c_str(), mean("sharded.timing.decision_latency_us.mean"),
        oracle.count > 0 ? util::format_double(oracle.mean, 1).c_str() : "-",
        mean("sharded.timing.advance_latency_us.mean"),
        oracle_adv.count > 0
            ? util::format_double(oracle_adv.mean, 1).c_str()
            : "-",
        mean("sharded.timing.route_latency_us.p95"),
        mean("delta.utility_mean"), mean("delta.jct_mean_s"));
  }

  if (const std::string out = cli.get("out"); !out.empty()) {
    if (auto status = runner::write_bench_json(result, out); !status) {
      std::fprintf(stderr, "%s\n", status.error().message.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out.c_str());
  }
  const auto written = obs::finalize();
  if (!written) {
    std::fprintf(stderr, "%s\n", written.error().message.c_str());
    return 1;
  }
  for (const std::string& path : *written) {
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
