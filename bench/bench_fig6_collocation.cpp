// Figure 6: collocation slowdown matrix — two 2-GPU AlexNet jobs sharing
// the Minsky machine (each packed on its own socket) vs running solo.
//
// Paper anchors: tiny|tiny ~30%, tiny|big ~24%, small|big ~21%,
// big|big ~0%.
#include <cstdio>

#include "exp/figures.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

int main() {
  using namespace gts;
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  metrics::Table table({"suffering \\ co-runner", "tiny", "small", "medium",
                        "big"});
  for (int mine = 0; mine < jobgraph::kBatchClassCount; ++mine) {
    std::vector<std::string> row;
    row.push_back(std::string(
        jobgraph::to_string(static_cast<jobgraph::BatchClass>(mine))));
    for (int other = 0; other < jobgraph::kBatchClassCount; ++other) {
      const double slowdown = exp::fig6_collocation_slowdown(
          model, minsky, static_cast<jobgraph::BatchClass>(mine),
          static_cast<jobgraph::BatchClass>(other));
      row.push_back(util::format_double(slowdown, 3));
    }
    table.add_row(std::move(row));
  }
  std::fputs(
      table
          .render("Fig. 6: fractional slowdown of job A when collocated "
                  "with job B (both AlexNet, 2 GPUs each)")
          .c_str(),
      stdout);
  std::printf(
      "\nPaper anchors: tiny|tiny ~0.30, tiny|big ~0.24, small|big ~0.21, "
      "big|big ~0.00\n");
  return 0;
}
