file(REMOVE_RECURSE
  "CMakeFiles/interference_profiler.dir/interference_profiler.cpp.o"
  "CMakeFiles/interference_profiler.dir/interference_profiler.cpp.o.d"
  "interference_profiler"
  "interference_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interference_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
