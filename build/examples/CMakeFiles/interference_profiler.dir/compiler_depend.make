# Empty compiler generated dependencies file for interference_profiler.
# This may be replaced when dependencies are built.
