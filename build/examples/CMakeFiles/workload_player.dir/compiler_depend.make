# Empty compiler generated dependencies file for workload_player.
# This may be replaced when dependencies are built.
