file(REMOVE_RECURSE
  "CMakeFiles/workload_player.dir/workload_player.cpp.o"
  "CMakeFiles/workload_player.dir/workload_player.cpp.o.d"
  "workload_player"
  "workload_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
