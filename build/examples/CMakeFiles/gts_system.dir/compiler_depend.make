# Empty compiler generated dependencies file for gts_system.
# This may be replaced when dependencies are built.
