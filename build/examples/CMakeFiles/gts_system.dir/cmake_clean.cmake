file(REMOVE_RECURSE
  "CMakeFiles/gts_system.dir/gts_system.cpp.o"
  "CMakeFiles/gts_system.dir/gts_system.cpp.o.d"
  "gts_system"
  "gts_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
