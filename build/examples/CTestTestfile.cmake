# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_explorer "/root/repo/build/examples/topology_explorer" "--shape" "dgx1" "--discover")
set_tests_properties(example_topology_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cluster_sim "/root/repo/build/examples/cluster_sim" "--machines" "2" "--jobs" "20")
set_tests_properties(example_cluster_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workload_player "/root/repo/build/examples/workload_player" "--jobs" "6" "--dir" "/root/repo/build/examples")
set_tests_properties(example_workload_player PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interference_profiler "/root/repo/build/examples/interference_profiler")
set_tests_properties(example_interference_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gts_system "/root/repo/build/examples/gts_system" "--write-samples" "/root/repo/build/examples")
set_tests_properties(example_gts_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
