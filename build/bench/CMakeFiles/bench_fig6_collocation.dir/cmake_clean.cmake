file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_collocation.dir/bench_fig6_collocation.cpp.o"
  "CMakeFiles/bench_fig6_collocation.dir/bench_fig6_collocation.cpp.o.d"
  "bench_fig6_collocation"
  "bench_fig6_collocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_collocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
