# Empty compiler generated dependencies file for bench_fig4_pack_spread.
# This may be replaced when dependencies are built.
