# Empty dependencies file for bench_fig8_prototype.
# This may be replaced when dependencies are built.
