
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_prototype.cpp" "bench/CMakeFiles/bench_fig8_prototype.dir/bench_fig8_prototype.cpp.o" "gcc" "bench/CMakeFiles/bench_fig8_prototype.dir/bench_fig8_prototype.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/gts_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/gts_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/gts_config.dir/DependInfo.cmake"
  "/root/repo/build/src/k8s/CMakeFiles/gts_k8s.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/gts_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gts_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gts_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gts_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/gts_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gts_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/jobgraph/CMakeFiles/gts_jobgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/gts_json.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gts_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
