file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_prototype.dir/bench_fig8_prototype.cpp.o"
  "CMakeFiles/bench_fig8_prototype.dir/bench_fig8_prototype.cpp.o.d"
  "bench_fig8_prototype"
  "bench_fig8_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
