# Empty dependencies file for bench_fig9_validation.
# This may be replaced when dependencies are built.
