file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_pcie.dir/bench_sec32_pcie.cpp.o"
  "CMakeFiles/bench_sec32_pcie.dir/bench_sec32_pcie.cpp.o.d"
  "bench_sec32_pcie"
  "bench_sec32_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
