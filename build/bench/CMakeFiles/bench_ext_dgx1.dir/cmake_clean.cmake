file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dgx1.dir/bench_ext_dgx1.cpp.o"
  "CMakeFiles/bench_ext_dgx1.dir/bench_ext_dgx1.cpp.o.d"
  "bench_ext_dgx1"
  "bench_ext_dgx1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dgx1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
