# Empty dependencies file for bench_ext_dgx1.
# This may be replaced when dependencies are built.
