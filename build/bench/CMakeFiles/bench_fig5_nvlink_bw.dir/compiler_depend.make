# Empty compiler generated dependencies file for bench_fig5_nvlink_bw.
# This may be replaced when dependencies are built.
