file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nvlink_bw.dir/bench_fig5_nvlink_bw.cpp.o"
  "CMakeFiles/bench_fig5_nvlink_bw.dir/bench_fig5_nvlink_bw.cpp.o.d"
  "bench_fig5_nvlink_bw"
  "bench_fig5_nvlink_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nvlink_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
