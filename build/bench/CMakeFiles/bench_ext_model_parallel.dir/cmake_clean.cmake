file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_model_parallel.dir/bench_ext_model_parallel.cpp.o"
  "CMakeFiles/bench_ext_model_parallel.dir/bench_ext_model_parallel.cpp.o.d"
  "bench_ext_model_parallel"
  "bench_ext_model_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_model_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
