# Empty dependencies file for bench_ext_model_parallel.
# This may be replaced when dependencies are built.
