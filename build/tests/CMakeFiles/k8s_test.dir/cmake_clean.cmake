file(REMOVE_RECURSE
  "CMakeFiles/k8s_test.dir/k8s_test.cpp.o"
  "CMakeFiles/k8s_test.dir/k8s_test.cpp.o.d"
  "k8s_test"
  "k8s_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k8s_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
