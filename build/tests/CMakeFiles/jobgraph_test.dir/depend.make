# Empty dependencies file for jobgraph_test.
# This may be replaced when dependencies are built.
