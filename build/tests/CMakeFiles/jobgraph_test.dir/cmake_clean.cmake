file(REMOVE_RECURSE
  "CMakeFiles/jobgraph_test.dir/jobgraph_test.cpp.o"
  "CMakeFiles/jobgraph_test.dir/jobgraph_test.cpp.o.d"
  "jobgraph_test"
  "jobgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
