file(REMOVE_RECURSE
  "libgts_proto.a"
)
