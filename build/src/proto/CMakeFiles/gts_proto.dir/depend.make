# Empty dependencies file for gts_proto.
# This may be replaced when dependencies are built.
