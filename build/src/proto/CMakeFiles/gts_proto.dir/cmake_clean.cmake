file(REMOVE_RECURSE
  "CMakeFiles/gts_proto.dir/enforcement.cpp.o"
  "CMakeFiles/gts_proto.dir/enforcement.cpp.o.d"
  "CMakeFiles/gts_proto.dir/runtime.cpp.o"
  "CMakeFiles/gts_proto.dir/runtime.cpp.o.d"
  "libgts_proto.a"
  "libgts_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
