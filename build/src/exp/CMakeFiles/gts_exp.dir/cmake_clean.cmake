file(REMOVE_RECURSE
  "CMakeFiles/gts_exp.dir/figures.cpp.o"
  "CMakeFiles/gts_exp.dir/figures.cpp.o.d"
  "CMakeFiles/gts_exp.dir/scenarios.cpp.o"
  "CMakeFiles/gts_exp.dir/scenarios.cpp.o.d"
  "libgts_exp.a"
  "libgts_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
