# Empty compiler generated dependencies file for gts_exp.
# This may be replaced when dependencies are built.
