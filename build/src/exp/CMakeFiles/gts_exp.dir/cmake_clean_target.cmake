file(REMOVE_RECURSE
  "libgts_exp.a"
)
