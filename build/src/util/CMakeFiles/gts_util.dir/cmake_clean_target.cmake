file(REMOVE_RECURSE
  "libgts_util.a"
)
