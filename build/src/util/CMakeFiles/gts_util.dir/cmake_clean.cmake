file(REMOVE_RECURSE
  "CMakeFiles/gts_util.dir/cli.cpp.o"
  "CMakeFiles/gts_util.dir/cli.cpp.o.d"
  "CMakeFiles/gts_util.dir/log.cpp.o"
  "CMakeFiles/gts_util.dir/log.cpp.o.d"
  "CMakeFiles/gts_util.dir/rng.cpp.o"
  "CMakeFiles/gts_util.dir/rng.cpp.o.d"
  "CMakeFiles/gts_util.dir/strings.cpp.o"
  "CMakeFiles/gts_util.dir/strings.cpp.o.d"
  "libgts_util.a"
  "libgts_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
