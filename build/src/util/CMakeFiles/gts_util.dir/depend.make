# Empty dependencies file for gts_util.
# This may be replaced when dependencies are built.
