# Empty compiler generated dependencies file for gts_metrics.
# This may be replaced when dependencies are built.
