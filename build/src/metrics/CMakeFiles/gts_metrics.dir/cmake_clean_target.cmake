file(REMOVE_RECURSE
  "libgts_metrics.a"
)
