file(REMOVE_RECURSE
  "CMakeFiles/gts_metrics.dir/chart.cpp.o"
  "CMakeFiles/gts_metrics.dir/chart.cpp.o.d"
  "CMakeFiles/gts_metrics.dir/stats.cpp.o"
  "CMakeFiles/gts_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/gts_metrics.dir/table.cpp.o"
  "CMakeFiles/gts_metrics.dir/table.cpp.o.d"
  "libgts_metrics.a"
  "libgts_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
