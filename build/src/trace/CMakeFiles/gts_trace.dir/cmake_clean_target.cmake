file(REMOVE_RECURSE
  "libgts_trace.a"
)
