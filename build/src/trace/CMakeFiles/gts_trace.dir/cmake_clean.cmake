file(REMOVE_RECURSE
  "CMakeFiles/gts_trace.dir/generator.cpp.o"
  "CMakeFiles/gts_trace.dir/generator.cpp.o.d"
  "CMakeFiles/gts_trace.dir/tracefile.cpp.o"
  "CMakeFiles/gts_trace.dir/tracefile.cpp.o.d"
  "libgts_trace.a"
  "libgts_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
