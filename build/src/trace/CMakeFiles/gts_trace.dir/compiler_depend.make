# Empty compiler generated dependencies file for gts_trace.
# This may be replaced when dependencies are built.
