file(REMOVE_RECURSE
  "libgts_json.a"
)
