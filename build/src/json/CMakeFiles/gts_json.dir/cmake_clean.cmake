file(REMOVE_RECURSE
  "CMakeFiles/gts_json.dir/json.cpp.o"
  "CMakeFiles/gts_json.dir/json.cpp.o.d"
  "libgts_json.a"
  "libgts_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
