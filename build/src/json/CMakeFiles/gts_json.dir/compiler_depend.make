# Empty compiler generated dependencies file for gts_json.
# This may be replaced when dependencies are built.
