file(REMOVE_RECURSE
  "libgts_sim.a"
)
