file(REMOVE_RECURSE
  "CMakeFiles/gts_sim.dir/arrivals.cpp.o"
  "CMakeFiles/gts_sim.dir/arrivals.cpp.o.d"
  "CMakeFiles/gts_sim.dir/engine.cpp.o"
  "CMakeFiles/gts_sim.dir/engine.cpp.o.d"
  "libgts_sim.a"
  "libgts_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
