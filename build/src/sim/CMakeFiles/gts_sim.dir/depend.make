# Empty dependencies file for gts_sim.
# This may be replaced when dependencies are built.
