file(REMOVE_RECURSE
  "libgts_jobgraph.a"
)
