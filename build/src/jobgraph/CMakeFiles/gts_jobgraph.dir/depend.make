# Empty dependencies file for gts_jobgraph.
# This may be replaced when dependencies are built.
