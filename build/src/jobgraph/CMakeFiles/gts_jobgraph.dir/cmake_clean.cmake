file(REMOVE_RECURSE
  "CMakeFiles/gts_jobgraph.dir/jobgraph.cpp.o"
  "CMakeFiles/gts_jobgraph.dir/jobgraph.cpp.o.d"
  "CMakeFiles/gts_jobgraph.dir/manifest.cpp.o"
  "CMakeFiles/gts_jobgraph.dir/manifest.cpp.o.d"
  "CMakeFiles/gts_jobgraph.dir/workload.cpp.o"
  "CMakeFiles/gts_jobgraph.dir/workload.cpp.o.d"
  "libgts_jobgraph.a"
  "libgts_jobgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_jobgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
