
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jobgraph/jobgraph.cpp" "src/jobgraph/CMakeFiles/gts_jobgraph.dir/jobgraph.cpp.o" "gcc" "src/jobgraph/CMakeFiles/gts_jobgraph.dir/jobgraph.cpp.o.d"
  "/root/repo/src/jobgraph/manifest.cpp" "src/jobgraph/CMakeFiles/gts_jobgraph.dir/manifest.cpp.o" "gcc" "src/jobgraph/CMakeFiles/gts_jobgraph.dir/manifest.cpp.o.d"
  "/root/repo/src/jobgraph/workload.cpp" "src/jobgraph/CMakeFiles/gts_jobgraph.dir/workload.cpp.o" "gcc" "src/jobgraph/CMakeFiles/gts_jobgraph.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gts_util.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/gts_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
