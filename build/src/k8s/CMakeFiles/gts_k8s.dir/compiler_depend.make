# Empty compiler generated dependencies file for gts_k8s.
# This may be replaced when dependencies are built.
