file(REMOVE_RECURSE
  "CMakeFiles/gts_k8s.dir/shim.cpp.o"
  "CMakeFiles/gts_k8s.dir/shim.cpp.o.d"
  "libgts_k8s.a"
  "libgts_k8s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_k8s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
