file(REMOVE_RECURSE
  "libgts_k8s.a"
)
