# Empty dependencies file for gts_config.
# This may be replaced when dependencies are built.
