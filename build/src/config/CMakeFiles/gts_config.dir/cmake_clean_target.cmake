file(REMOVE_RECURSE
  "libgts_config.a"
)
