file(REMOVE_RECURSE
  "CMakeFiles/gts_config.dir/ini.cpp.o"
  "CMakeFiles/gts_config.dir/ini.cpp.o.d"
  "CMakeFiles/gts_config.dir/system_config.cpp.o"
  "CMakeFiles/gts_config.dir/system_config.cpp.o.d"
  "libgts_config.a"
  "libgts_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
