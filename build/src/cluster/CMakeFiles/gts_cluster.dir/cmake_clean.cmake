file(REMOVE_RECURSE
  "CMakeFiles/gts_cluster.dir/recorder.cpp.o"
  "CMakeFiles/gts_cluster.dir/recorder.cpp.o.d"
  "CMakeFiles/gts_cluster.dir/state.cpp.o"
  "CMakeFiles/gts_cluster.dir/state.cpp.o.d"
  "libgts_cluster.a"
  "libgts_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
