file(REMOVE_RECURSE
  "libgts_cluster.a"
)
