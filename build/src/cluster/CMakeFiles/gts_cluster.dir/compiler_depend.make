# Empty compiler generated dependencies file for gts_cluster.
# This may be replaced when dependencies are built.
