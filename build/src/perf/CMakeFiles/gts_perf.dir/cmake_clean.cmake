file(REMOVE_RECURSE
  "CMakeFiles/gts_perf.dir/model.cpp.o"
  "CMakeFiles/gts_perf.dir/model.cpp.o.d"
  "CMakeFiles/gts_perf.dir/params.cpp.o"
  "CMakeFiles/gts_perf.dir/params.cpp.o.d"
  "CMakeFiles/gts_perf.dir/predictor.cpp.o"
  "CMakeFiles/gts_perf.dir/predictor.cpp.o.d"
  "CMakeFiles/gts_perf.dir/profile.cpp.o"
  "CMakeFiles/gts_perf.dir/profile.cpp.o.d"
  "libgts_perf.a"
  "libgts_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
