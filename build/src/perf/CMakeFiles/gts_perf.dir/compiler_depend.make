# Empty compiler generated dependencies file for gts_perf.
# This may be replaced when dependencies are built.
