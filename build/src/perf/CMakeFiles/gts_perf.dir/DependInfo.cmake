
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/model.cpp" "src/perf/CMakeFiles/gts_perf.dir/model.cpp.o" "gcc" "src/perf/CMakeFiles/gts_perf.dir/model.cpp.o.d"
  "/root/repo/src/perf/params.cpp" "src/perf/CMakeFiles/gts_perf.dir/params.cpp.o" "gcc" "src/perf/CMakeFiles/gts_perf.dir/params.cpp.o.d"
  "/root/repo/src/perf/predictor.cpp" "src/perf/CMakeFiles/gts_perf.dir/predictor.cpp.o" "gcc" "src/perf/CMakeFiles/gts_perf.dir/predictor.cpp.o.d"
  "/root/repo/src/perf/profile.cpp" "src/perf/CMakeFiles/gts_perf.dir/profile.cpp.o" "gcc" "src/perf/CMakeFiles/gts_perf.dir/profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/gts_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/jobgraph/CMakeFiles/gts_jobgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/gts_json.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
