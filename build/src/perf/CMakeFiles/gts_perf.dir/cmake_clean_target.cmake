file(REMOVE_RECURSE
  "libgts_perf.a"
)
