# Empty compiler generated dependencies file for gts_partition.
# This may be replaced when dependencies are built.
