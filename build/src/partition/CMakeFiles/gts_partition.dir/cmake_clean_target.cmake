file(REMOVE_RECURSE
  "libgts_partition.a"
)
