file(REMOVE_RECURSE
  "CMakeFiles/gts_partition.dir/drb.cpp.o"
  "CMakeFiles/gts_partition.dir/drb.cpp.o.d"
  "CMakeFiles/gts_partition.dir/fm.cpp.o"
  "CMakeFiles/gts_partition.dir/fm.cpp.o.d"
  "libgts_partition.a"
  "libgts_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
