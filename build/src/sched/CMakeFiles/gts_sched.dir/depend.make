# Empty dependencies file for gts_sched.
# This may be replaced when dependencies are built.
