
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/driver.cpp" "src/sched/CMakeFiles/gts_sched.dir/driver.cpp.o" "gcc" "src/sched/CMakeFiles/gts_sched.dir/driver.cpp.o.d"
  "/root/repo/src/sched/greedy.cpp" "src/sched/CMakeFiles/gts_sched.dir/greedy.cpp.o" "gcc" "src/sched/CMakeFiles/gts_sched.dir/greedy.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/sched/CMakeFiles/gts_sched.dir/scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/gts_sched.dir/scheduler.cpp.o.d"
  "/root/repo/src/sched/topo_aware.cpp" "src/sched/CMakeFiles/gts_sched.dir/topo_aware.cpp.o" "gcc" "src/sched/CMakeFiles/gts_sched.dir/topo_aware.cpp.o.d"
  "/root/repo/src/sched/utility.cpp" "src/sched/CMakeFiles/gts_sched.dir/utility.cpp.o" "gcc" "src/sched/CMakeFiles/gts_sched.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/gts_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gts_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gts_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gts_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/jobgraph/CMakeFiles/gts_jobgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/gts_json.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gts_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
