file(REMOVE_RECURSE
  "CMakeFiles/gts_sched.dir/driver.cpp.o"
  "CMakeFiles/gts_sched.dir/driver.cpp.o.d"
  "CMakeFiles/gts_sched.dir/greedy.cpp.o"
  "CMakeFiles/gts_sched.dir/greedy.cpp.o.d"
  "CMakeFiles/gts_sched.dir/scheduler.cpp.o"
  "CMakeFiles/gts_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/gts_sched.dir/topo_aware.cpp.o"
  "CMakeFiles/gts_sched.dir/topo_aware.cpp.o.d"
  "CMakeFiles/gts_sched.dir/utility.cpp.o"
  "CMakeFiles/gts_sched.dir/utility.cpp.o.d"
  "libgts_sched.a"
  "libgts_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
