file(REMOVE_RECURSE
  "libgts_sched.a"
)
