file(REMOVE_RECURSE
  "libgts_topo.a"
)
