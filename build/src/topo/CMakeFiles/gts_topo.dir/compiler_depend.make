# Empty compiler generated dependencies file for gts_topo.
# This may be replaced when dependencies are built.
