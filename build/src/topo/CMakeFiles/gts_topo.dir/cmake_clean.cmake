file(REMOVE_RECURSE
  "CMakeFiles/gts_topo.dir/builders.cpp.o"
  "CMakeFiles/gts_topo.dir/builders.cpp.o.d"
  "CMakeFiles/gts_topo.dir/discovery.cpp.o"
  "CMakeFiles/gts_topo.dir/discovery.cpp.o.d"
  "CMakeFiles/gts_topo.dir/topology.cpp.o"
  "CMakeFiles/gts_topo.dir/topology.cpp.o.d"
  "libgts_topo.a"
  "libgts_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gts_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
