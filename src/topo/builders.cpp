#include "topo/builders.hpp"

#include "check/check.hpp"
#include "util/strings.hpp"

namespace gts::topo::builders {

namespace {

/// Adds one machine of the Minsky shape under `parent` (network root node,
/// or kInvalidNode for a standalone machine graph). Returns the machine's
/// node id.
NodeId add_minsky_machine(TopologyGraph& graph, NodeId parent, int machine,
                          bool nvlink, const MachineShapeOptions& options) {
  const BandwidthParams& bw = options.bandwidth;
  const LevelWeights& w = options.weights;

  const NodeId m = graph.add_node(
      {NodeKind::kMachine, util::fmt("M{}", machine), machine, -1, -1, -1});
  if (parent != kInvalidNode) {
    graph.add_link({parent, m, LinkKind::kNetwork, w.machine_uplink,
                    bw.network_gbps, 1});
  }

  int local_gpu = 0;
  for (int socket = 0; socket < 2; ++socket) {
    const NodeId s = graph.add_node({NodeKind::kSocket,
                                     util::fmt("M{}S{}", machine, socket),
                                     machine, socket, -1, -1});
    // Socket-to-machine edge models the SMP bus hop (X-bus on Power8).
    graph.add_link(
        {m, s, LinkKind::kSmpBus, w.socket_uplink, bw.smp_bus_gbps, 1});

    NodeId gpus[2];
    for (int i = 0; i < 2; ++i) {
      const NodeId g = graph.add_node(
          {NodeKind::kGpu, util::fmt("M{}GPU{}", machine, local_gpu), machine,
           socket, -1, local_gpu});
      gpus[i] = g;
      ++local_gpu;
      if (nvlink) {
        // Dual-lane NVLink CPU<->GPU (2 x 20 GB/s).
        graph.add_link({s, g, LinkKind::kNvlink, w.gpu_adjacent,
                        2 * bw.nvlink_lane_gbps, 2});
      } else {
        graph.add_link(
            {s, g, LinkKind::kPcie, w.gpu_adjacent, bw.pcie_x16_gbps, 16});
      }
    }
    if (nvlink) {
      // Dual-lane NVLink GPU<->GPU within the socket: the P2P path.
      graph.add_link({gpus[0], gpus[1], LinkKind::kNvlink, w.gpu_adjacent,
                      2 * bw.nvlink_lane_gbps, 2});
    }
    // On the PCI-e machine there is no direct GPU<->GPU edge: peers on the
    // same socket route through the socket's PCI-e root complex.
  }
  return m;
}

NodeId add_dgx1_machine(TopologyGraph& graph, NodeId parent, int machine,
                        const MachineShapeOptions& options) {
  const BandwidthParams& bw = options.bandwidth;
  const LevelWeights& w = options.weights;

  const NodeId m = graph.add_node(
      {NodeKind::kMachine, util::fmt("M{}", machine), machine, -1, -1, -1});
  if (parent != kInvalidNode) {
    graph.add_link({parent, m, LinkKind::kNetwork, w.machine_uplink,
                    bw.network_gbps, 1});
  }

  NodeId gpu_nodes[8];
  int local_gpu = 0;
  for (int socket = 0; socket < 2; ++socket) {
    const NodeId s = graph.add_node({NodeKind::kSocket,
                                     util::fmt("M{}S{}", machine, socket),
                                     machine, socket, -1, -1});
    graph.add_link(
        {m, s, LinkKind::kSmpBus, w.socket_uplink, bw.smp_bus_gbps, 1});
    // Two PCI-e switches per socket, two GPUs per switch.
    for (int sw = 0; sw < 2; ++sw) {
      const NodeId p = graph.add_node(
          {NodeKind::kSwitch, util::fmt("M{}S{}PCIe{}", machine, socket, sw),
           machine, socket, -1, -1});
      graph.add_link(
          {s, p, LinkKind::kPcie, w.switch_uplink, bw.pcie_x16_gbps, 16});
      for (int i = 0; i < 2; ++i) {
        const NodeId g = graph.add_node(
            {NodeKind::kGpu, util::fmt("M{}GPU{}", machine, local_gpu),
             machine, socket, -1, local_gpu});
        gpu_nodes[local_gpu] = g;
        ++local_gpu;
        graph.add_link(
            {p, g, LinkKind::kPcie, w.gpu_adjacent, bw.pcie_x16_gbps, 16});
      }
    }
  }

  // Hybrid cube-mesh: each quad {0..3} / {4..7} is an NVLink clique (the
  // cube's 8 intra-quad edges plus 2 face diagonals per quad), and the 4
  // cube edges 0-4, 1-5, 2-6, 3-7 join the quads. Every GPU uses exactly 4
  // single-lane NVLinks, matching P100.
  const auto nvlink = [&](int a, int b) {
    graph.add_link({gpu_nodes[a], gpu_nodes[b], LinkKind::kNvlink,
                    w.gpu_adjacent, bw.nvlink_lane_gbps, 1});
  };
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) nvlink(base + i, base + j);
    }
  }
  for (int i = 0; i < 4; ++i) nvlink(i, 4 + i);
  return m;
}

NodeId add_machine(TopologyGraph& graph, NodeId parent, int machine,
                   MachineShape shape, const MachineShapeOptions& options) {
  switch (shape) {
    case MachineShape::kPower8Minsky:
      return add_minsky_machine(graph, parent, machine, /*nvlink=*/true,
                                options);
    case MachineShape::kPower8Pcie:
      return add_minsky_machine(graph, parent, machine, /*nvlink=*/false,
                                options);
    case MachineShape::kDgx1:
      return add_dgx1_machine(graph, parent, machine, options);
  }
  return kInvalidNode;
}

}  // namespace

TopologyGraph power8_minsky(const MachineShapeOptions& options) {
  TopologyGraph graph;
  add_minsky_machine(graph, kInvalidNode, 0, /*nvlink=*/true, options);
  return graph;
}

TopologyGraph power8_pcie(const MachineShapeOptions& options) {
  TopologyGraph graph;
  add_minsky_machine(graph, kInvalidNode, 0, /*nvlink=*/false, options);
  return graph;
}

TopologyGraph dgx1(const MachineShapeOptions& options) {
  TopologyGraph graph;
  add_dgx1_machine(graph, kInvalidNode, 0, options);
  return graph;
}

int gpus_per_machine(MachineShape shape) noexcept {
  switch (shape) {
    case MachineShape::kPower8Minsky:
    case MachineShape::kPower8Pcie:
      return 4;
    case MachineShape::kDgx1:
      return 8;
  }
  return 0;
}

TopologyGraph cluster(int machine_count, MachineShape shape,
                      const MachineShapeOptions& options) {
  TopologyGraph graph;
  if (machine_count == 1) {
    add_machine(graph, kInvalidNode, 0, shape, options);
    return graph;
  }
  const NodeId net =
      graph.add_node({NodeKind::kNetwork, "Net", -1, -1, -1, -1});
  for (int m = 0; m < machine_count; ++m) {
    add_machine(graph, net, m, shape, options);
  }
  return graph;
}

TopologyGraph make_cluster(int machines, int gpus_per_machine,
                           MachineShape fabric,
                           const MachineShapeOptions& options) {
  GTS_CHECK(machines >= 1, "make_cluster: machines must be >= 1, got ",
            machines);
  GTS_CHECK(gpus_per_machine == builders::gpus_per_machine(fabric),
            "make_cluster: fabric provides ",
            builders::gpus_per_machine(fabric),
            " GPUs per machine, caller expected ", gpus_per_machine);
  TopologyGraph graph = cluster(machines, fabric, options);
  graph.warm_caches();
  return graph;
}

TopologyGraph mixed_cluster(const std::vector<MachineShape>& shapes,
                            const MachineShapeOptions& options) {
  TopologyGraph graph;
  if (shapes.size() == 1) {
    add_machine(graph, kInvalidNode, 0, shapes[0], options);
    return graph;
  }
  const NodeId net =
      graph.add_node({NodeKind::kNetwork, "Net", -1, -1, -1, -1});
  for (size_t m = 0; m < shapes.size(); ++m) {
    add_machine(graph, net, static_cast<int>(m), shapes[m], options);
  }
  return graph;
}

}  // namespace gts::topo::builders
