#include "topo/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>

#include "util/strings.hpp"

namespace gts::topo {

std::string_view to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kNetwork:
      return "network";
    case NodeKind::kMachine:
      return "machine";
    case NodeKind::kSocket:
      return "socket";
    case NodeKind::kSwitch:
      return "switch";
    case NodeKind::kGpu:
      return "gpu";
  }
  return "?";
}

std::string_view to_string(LinkKind kind) noexcept {
  switch (kind) {
    case LinkKind::kNvlink:
      return "nvlink";
    case LinkKind::kPcie:
      return "pcie";
    case LinkKind::kSmpBus:
      return "smp-bus";
    case LinkKind::kNetwork:
      return "network";
  }
  return "?";
}

NodeId TopologyGraph::add_node(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (node.kind == NodeKind::kGpu) {
    node.gpu_index = static_cast<int>(gpu_nodes_.size());
    gpu_nodes_.push_back(id);
  }
  if (node.kind == NodeKind::kMachine) {
    machine_count_ = std::max(machine_count_, node.machine + 1);
  }
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  paths_valid_ = false;
  structure_valid_ = false;
  return id;
}

LinkId TopologyGraph::add_link(Link link) {
  const LinkId id = static_cast<LinkId>(links_.size());
  adjacency_.at(static_cast<size_t>(link.a)).push_back({link.b, id});
  adjacency_.at(static_cast<size_t>(link.b)).push_back({link.a, id});
  links_.push_back(link);
  paths_valid_ = false;
  return id;
}

util::Status TopologyGraph::validate() const {
  if (nodes_.empty()) return util::Error{"topology: empty graph"};
  for (const Link& link : links_) {
    if (link.a < 0 || link.a >= node_count() || link.b < 0 ||
        link.b >= node_count()) {
      return util::Error{"topology: link endpoint out of range"};
    }
    if (link.a == link.b) return util::Error{"topology: self-loop link"};
    if (link.weight <= 0.0) {
      return util::Error{"topology: non-positive link weight"};
    }
    if (link.bandwidth_gbps <= 0.0) {
      return util::Error{"topology: non-positive link bandwidth"};
    }
  }
  // Connectivity via BFS from node 0.
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  int visited = 0;
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop();
    ++visited;
    for (const Neighbor& n : adjacency_[static_cast<size_t>(current)]) {
      if (!seen[static_cast<size_t>(n.node)]) {
        seen[static_cast<size_t>(n.node)] = true;
        frontier.push(n.node);
      }
    }
  }
  if (visited != node_count()) {
    return util::Error{util::fmt("topology: graph not connected ({} of {})",
                                 visited, node_count())};
  }
  // GPU indices must be dense 0..gpu_count-1 (guaranteed by add_node, but
  // revalidated to catch manual Node tampering).
  for (int g = 0; g < gpu_count(); ++g) {
    const Node& node = nodes_[static_cast<size_t>(gpu_nodes_[static_cast<size_t>(g)])];
    if (node.gpu_index != g) {
      return util::Error{"topology: GPU index not dense"};
    }
    if (node.machine < 0 || node.socket < 0) {
      return util::Error{util::fmt("topology: GPU {} missing machine/socket", g)};
    }
  }
  return util::Status::ok();
}

void TopologyGraph::ensure_structure() const {
  if (structure_valid_) return;
  const size_t machines = static_cast<size_t>(std::max(machine_count_, 1));
  machine_gpus_.assign(machines, {});
  machine_sockets_.assign(machines, 0);
  machine_socket_gpus_.assign(machines, {});
  gpu_machine_.assign(static_cast<size_t>(gpu_count()), -1);
  gpu_socket_.assign(static_cast<size_t>(gpu_count()), -1);
  gpu_local_index_.assign(static_cast<size_t>(gpu_count()), -1);
  for (const Node& node : nodes_) {
    if (node.kind == NodeKind::kSocket && node.machine >= 0) {
      machine_sockets_[static_cast<size_t>(node.machine)] = std::max(
          machine_sockets_[static_cast<size_t>(node.machine)],
          node.socket + 1);
    }
  }
  for (size_t m = 0; m < machines; ++m) {
    machine_socket_gpus_[m].resize(
        static_cast<size_t>(machine_sockets_[m]));
  }
  for (int g = 0; g < gpu_count(); ++g) {
    const Node& node = nodes_[static_cast<size_t>(gpu_nodes_[static_cast<size_t>(g)])];
    if (node.machine < 0) continue;
    const size_t m = static_cast<size_t>(node.machine);
    gpu_machine_[static_cast<size_t>(g)] = node.machine;
    gpu_socket_[static_cast<size_t>(g)] = node.socket;
    gpu_local_index_[static_cast<size_t>(g)] =
        static_cast<int>(machine_gpus_[m].size());
    machine_gpus_[m].push_back(g);
    if (node.socket >= 0) {
      // Graphs without explicit socket nodes still carry per-GPU socket
      // indices; grow the list on demand for those.
      auto& sockets = machine_socket_gpus_[m];
      if (static_cast<size_t>(node.socket) >= sockets.size()) {
        sockets.resize(static_cast<size_t>(node.socket) + 1);
      }
      sockets[static_cast<size_t>(node.socket)].push_back(g);
    }
  }
  structure_valid_ = true;
}

const std::vector<int>& TopologyGraph::gpus_of_machine(int machine) const {
  ensure_structure();
  return machine_gpus_.at(static_cast<size_t>(machine));
}

const std::vector<int>& TopologyGraph::gpus_of_socket(int machine,
                                                      int socket) const {
  ensure_structure();
  static const std::vector<int> kEmpty;
  if (machine < 0 ||
      static_cast<size_t>(machine) >= machine_socket_gpus_.size()) {
    return kEmpty;
  }
  const auto& sockets = machine_socket_gpus_[static_cast<size_t>(machine)];
  if (socket < 0 || static_cast<size_t>(socket) >= sockets.size()) {
    return kEmpty;
  }
  return sockets[static_cast<size_t>(socket)];
}

const std::vector<std::vector<int>>& TopologyGraph::socket_gpu_lists(
    int machine) const {
  ensure_structure();
  return machine_socket_gpus_.at(static_cast<size_t>(machine));
}

int TopologyGraph::sockets_of_machine(int machine) const {
  ensure_structure();
  return machine_sockets_.at(static_cast<size_t>(machine));
}

GpuPath TopologyGraph::shortest_path(NodeId from, NodeId to) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<LinkId> via_link(nodes_.size(), kInvalidLink);
  std::vector<NodeId> via_node(nodes_.size(), kInvalidNode);

  // (distance, node); std::greater makes it a min-heap. Ties resolve to the
  // smaller node id because the pair comparison is lexicographic.
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[static_cast<size_t>(from)] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    const auto [d, current] = heap.top();
    heap.pop();
    if (d > dist[static_cast<size_t>(current)]) continue;
    if (current == to) break;
    // GPUs are endpoints, not routers: traffic cannot transit a GPU to
    // reach another one (P100 NVLink peers must be directly linked; e.g.
    // on DGX-1 "communication between GPU1 and GPU5 will go over the
    // PCI-e switches and the system bus", Section 1).
    if (current != from &&
        nodes_[static_cast<size_t>(current)].kind == NodeKind::kGpu) {
      continue;
    }
    for (const Neighbor& n : adjacency_[static_cast<size_t>(current)]) {
      const double candidate = d + links_[static_cast<size_t>(n.link)].weight;
      if (candidate < dist[static_cast<size_t>(n.node)]) {
        dist[static_cast<size_t>(n.node)] = candidate;
        via_link[static_cast<size_t>(n.node)] = n.link;
        via_node[static_cast<size_t>(n.node)] = current;
        heap.push({candidate, n.node});
      }
    }
  }

  GpuPath path;
  path.distance = dist[static_cast<size_t>(to)];
  if (path.distance == kInf) return path;  // disconnected; empty links

  // Reconstruct, then reverse into from->to order.
  for (NodeId n = to; n != from; n = via_node[static_cast<size_t>(n)]) {
    path.links.push_back(via_link[static_cast<size_t>(n)]);
  }
  std::reverse(path.links.begin(), path.links.end());

  path.bottleneck_gbps = kInf;
  for (const LinkId l : path.links) {
    path.bottleneck_gbps =
        std::min(path.bottleneck_gbps, links_[static_cast<size_t>(l)].bandwidth_gbps);
  }
  if (path.links.empty()) path.bottleneck_gbps = 0.0;

  // P2P iff no intermediate node is a socket, machine, or network node.
  path.peer_to_peer = true;
  NodeId hop = from;
  for (const LinkId l : path.links) {
    const Link& link = links_[static_cast<size_t>(l)];
    hop = (link.a == hop) ? link.b : link.a;
    if (hop == to) break;
    const NodeKind kind = nodes_[static_cast<size_t>(hop)].kind;
    if (kind == NodeKind::kSocket || kind == NodeKind::kMachine ||
        kind == NodeKind::kNetwork) {
      path.peer_to_peer = false;
    }
  }
  return path;
}

namespace {

constexpr int kDensePathLimit = 64;

std::uint64_t pair_key(int a, int b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

void TopologyGraph::ensure_paths() const {
  if (paths_valid_) return;
  ensure_structure();
  const int n = gpu_count();
  max_gpu_distance_ = 0.0;
  intra_paths_.clear();
  cross_cache_.clear();
  root_paths_.clear();
  gpu_dist_.clear();
  root_dist_.clear();
  intra_dist_.clear();
  machine_dist_offset_.clear();

  // Find the network root (required for hierarchical mode).
  NodeId root = kInvalidNode;
  for (NodeId id = 0; id < node_count(); ++id) {
    if (nodes_[static_cast<size_t>(id)].kind == NodeKind::kNetwork) {
      root = id;
      break;
    }
  }

  hierarchical_paths_ = n > kDensePathLimit && root != kInvalidNode;
  if (!hierarchical_paths_) {
    gpu_paths_.assign(static_cast<size_t>(n) * static_cast<size_t>(n),
                      GpuPath{});
    gpu_dist_.assign(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        GpuPath path = shortest_path(gpu_nodes_[static_cast<size_t>(i)],
                                     gpu_nodes_[static_cast<size_t>(j)]);
        max_gpu_distance_ = std::max(max_gpu_distance_, path.distance);
        const size_t cell = static_cast<size_t>(i) * static_cast<size_t>(n) +
                            static_cast<size_t>(j);
        gpu_dist_[cell] = path.distance;
        gpu_paths_[cell] = std::move(path);
      }
    }
    paths_valid_ = true;
    return;
  }

  gpu_paths_.clear();
  // Per-GPU route to the network root (cross-machine traffic always
  // crosses the root in a tree-shaped cluster).
  root_paths_.resize(static_cast<size_t>(n));
  root_dist_.assign(static_cast<size_t>(n), 0.0);
  std::vector<double> machine_max_root(static_cast<size_t>(machine_count_),
                                       0.0);
  for (int g = 0; g < n; ++g) {
    GpuPath path = shortest_path(gpu_nodes_[static_cast<size_t>(g)], root);
    const size_t machine = static_cast<size_t>(machine_of_gpu(g));
    machine_max_root[machine] = std::max(machine_max_root[machine],
                                         path.distance);
    root_dist_[static_cast<size_t>(g)] = path.distance;
    root_paths_[static_cast<size_t>(g)] = std::move(path);
  }
  if (machine_count_ > 1) {
    // Diameter = the two largest per-machine root distances combined.
    double top1 = 0.0;
    double top2 = 0.0;
    for (const double d : machine_max_root) {
      if (d > top1) {
        top2 = top1;
        top1 = d;
      } else if (d > top2) {
        top2 = d;
      }
    }
    max_gpu_distance_ = top1 + top2;
  }

  // Intra-machine dense tables: full GpuPath objects keyed by pair for
  // gpu_path(), plus one flat double block per machine (indexed by local
  // GPU index) for gpu_distance().
  machine_dist_offset_.assign(static_cast<size_t>(machine_count_) + 1, 0);
  for (int machine = 0; machine < machine_count_; ++machine) {
    const size_t count = machine_gpus_[static_cast<size_t>(machine)].size();
    machine_dist_offset_[static_cast<size_t>(machine) + 1] =
        machine_dist_offset_[static_cast<size_t>(machine)] +
        static_cast<int>(count * count);
  }
  intra_dist_.assign(
      static_cast<size_t>(machine_dist_offset_[static_cast<size_t>(
          machine_count_)]),
      0.0);
  for (int machine = 0; machine < machine_count_; ++machine) {
    const std::vector<int>& gpus = machine_gpus_[static_cast<size_t>(machine)];
    const size_t count = gpus.size();
    const size_t base =
        static_cast<size_t>(machine_dist_offset_[static_cast<size_t>(machine)]);
    for (const int a : gpus) {
      for (const int b : gpus) {
        if (a == b) continue;
        GpuPath path = shortest_path(gpu_nodes_[static_cast<size_t>(a)],
                                     gpu_nodes_[static_cast<size_t>(b)]);
        max_gpu_distance_ = std::max(max_gpu_distance_, path.distance);
        intra_dist_[base +
                    static_cast<size_t>(gpu_local_index_[static_cast<size_t>(a)]) *
                        count +
                    static_cast<size_t>(gpu_local_index_[static_cast<size_t>(b)])] =
            path.distance;
        intra_paths_.emplace(pair_key(a, b), std::move(path));
      }
    }
  }
  paths_valid_ = true;
}

const GpuPath& TopologyGraph::gpu_path(int gpu_a, int gpu_b) const {
  ensure_paths();
  if (!hierarchical_paths_) {
    return gpu_paths_.at(static_cast<size_t>(gpu_a) *
                             static_cast<size_t>(gpu_count()) +
                         static_cast<size_t>(gpu_b));
  }
  if (machine_of_gpu(gpu_a) == machine_of_gpu(gpu_b)) {
    return intra_paths_.at(pair_key(gpu_a, gpu_b));
  }
  const std::uint64_t key = pair_key(gpu_a, gpu_b);
  if (const auto it = cross_cache_.find(key); it != cross_cache_.end()) {
    return it->second;
  }
  // Synthesize: a's route up to the root, then b's route reversed.
  const GpuPath& up = root_paths_[static_cast<size_t>(gpu_a)];
  const GpuPath& down = root_paths_[static_cast<size_t>(gpu_b)];
  GpuPath path;
  path.distance = up.distance + down.distance;
  path.peer_to_peer = false;
  path.links = up.links;
  path.links.insert(path.links.end(), down.links.rbegin(), down.links.rend());
  path.bottleneck_gbps = std::numeric_limits<double>::infinity();
  for (const LinkId l : path.links) {
    path.bottleneck_gbps = std::min(
        path.bottleneck_gbps, links_[static_cast<size_t>(l)].bandwidth_gbps);
  }
  if (path.links.empty()) path.bottleneck_gbps = 0.0;
  return cross_cache_.emplace(key, std::move(path)).first->second;
}

double TopologyGraph::gpu_distance(int gpu_a, int gpu_b) const {
  if (gpu_a == gpu_b) return 0.0;
  ensure_paths();
  if (!hierarchical_paths_) {
    return gpu_dist_[static_cast<size_t>(gpu_a) *
                         static_cast<size_t>(gpu_count()) +
                     static_cast<size_t>(gpu_b)];
  }
  const int machine = gpu_machine_[static_cast<size_t>(gpu_a)];
  if (machine != gpu_machine_[static_cast<size_t>(gpu_b)]) {
    return root_dist_[static_cast<size_t>(gpu_a)] +
           root_dist_[static_cast<size_t>(gpu_b)];
  }
  const size_t count = machine_gpus_[static_cast<size_t>(machine)].size();
  return intra_dist_[static_cast<size_t>(
                         machine_dist_offset_[static_cast<size_t>(machine)]) +
                     static_cast<size_t>(
                         gpu_local_index_[static_cast<size_t>(gpu_a)]) *
                         count +
                     static_cast<size_t>(
                         gpu_local_index_[static_cast<size_t>(gpu_b)])];
}

double TopologyGraph::max_gpu_distance() const {
  ensure_paths();
  return max_gpu_distance_;
}

std::string TopologyGraph::describe() const {
  std::ostringstream os;
  os << "topology: " << node_count() << " nodes, " << link_count()
     << " links, " << gpu_count() << " GPUs, " << machine_count()
     << " machine(s)\n";
  for (NodeId id = 0; id < node_count(); ++id) {
    const Node& n = node(id);
    os << "  [" << id << "] " << to_string(n.kind);
    if (!n.name.empty()) os << " " << n.name;
    if (n.machine >= 0) os << " machine=" << n.machine;
    if (n.socket >= 0) os << " socket=" << n.socket;
    if (n.gpu_index >= 0) os << " gpu=" << n.gpu_index;
    os << "\n";
  }
  for (LinkId id = 0; id < link_count(); ++id) {
    const Link& l = link(id);
    os << "  " << l.a << " <-> " << l.b << "  " << to_string(l.kind)
       << " w=" << l.weight << " bw=" << l.bandwidth_gbps << "GB/s lanes="
       << l.lanes << "\n";
  }
  if (gpu_count() > 1) {
    os << "  GPU distance matrix:\n";
    for (int i = 0; i < gpu_count(); ++i) {
      os << "   ";
      for (int j = 0; j < gpu_count(); ++j) {
        os << " " << (i == j ? std::string("-")
                             : util::format_double(gpu_distance(i, j), 0));
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace gts::topo
