// Canonical topology builders for the systems in the paper (Fig. 1/7):
//   * IBM Power8 S822LC "Minsky": 2 sockets x 2 Tesla P100, dual-lane
//     NVLink GPU<->GPU and CPU<->GPU within a socket, X-bus across sockets.
//   * The same chassis with PCI-e Gen3 and K80s (Section 3.2's comparison
//     machine).
//   * NVIDIA DGX-1: 8 P100s in a hybrid cube-mesh of single-lane NVLinks,
//     plus 4 PCI-e switches (2 GPUs each) uplinked to 2 sockets.
//   * Homogeneous clusters of any of the above joined by a network root
//     (the simulation scenarios use clusters of Minsky machines).
#pragma once

#include "topo/topology.hpp"

namespace gts::topo::builders {

/// Peak unidirectional bandwidths (GB/s) used across builders. These follow
/// the paper: a single NVLink lane supports 20 GB/s, PCI-e v3 x16 16 GB/s.
struct BandwidthParams {
  double nvlink_lane_gbps = 20.0;
  double pcie_x16_gbps = 16.0;
  double smp_bus_gbps = 32.0;    // Power8 X-bus / x86 QPI class
  double network_gbps = 12.5;    // 100 GbE class cluster interconnect
};

struct MachineShapeOptions {
  BandwidthParams bandwidth{};
  LevelWeights weights{};
};

/// One IBM Power8 "Minsky" node: 2 sockets, 2 GPUs per socket, dual NVLink
/// everywhere within a socket. GPUs are globally indexed 0..3; GPUs {0,1}
/// sit on socket 0 and {2,3} on socket 1, matching Fig. 2.
TopologyGraph power8_minsky(const MachineShapeOptions& options = {});

/// The PCI-e Gen3 + K80 variant of the same chassis (no NVLink anywhere;
/// GPU<->GPU within a socket goes through the socket's PCI-e root).
TopologyGraph power8_pcie(const MachineShapeOptions& options = {});

/// NVIDIA DGX-1: GPUs 0..7; quads {0,1,2,3} (socket 0) and {4,5,6,7}
/// (socket 1) are NVLink cliques, with cross links 0-4, 1-5, 2-6, 3-7; each
/// pair of GPUs shares a PCI-e switch uplinked to its socket.
TopologyGraph dgx1(const MachineShapeOptions& options = {});

enum class MachineShape { kPower8Minsky, kPower8Pcie, kDgx1 };

/// A cluster of `machine_count` identical machines joined by one network
/// root node. GPU global indices are machine-major (machine m owns GPUs
/// [m*per_machine, (m+1)*per_machine)).
TopologyGraph cluster(int machine_count, MachineShape shape,
                      const MachineShapeOptions& options = {});

/// A heterogeneous cluster: one machine per entry of `shapes` (e.g. a mix
/// of Minsky and DGX-1 nodes), joined by one network root. GPU global
/// indices remain machine-major in `shapes` order.
TopologyGraph mixed_cluster(const std::vector<MachineShape>& shapes,
                            const MachineShapeOptions& options = {});

/// Number of GPUs contributed by one machine of `shape`.
int gpus_per_machine(MachineShape shape) noexcept;

/// One-stop builder for the large synthetic benchmark clusters
/// (bench_overhead / bench_service_load / bench_scale): builds
/// `cluster(machines, fabric)`, cross-checks the caller's per-machine GPU
/// expectation against the fabric, and pre-warms the lazily built
/// structure / distance caches so concurrent read-only consumers
/// (parallel candidate scoring, sharded cells) never race the first
/// build. `gpus_per_machine` must match `gpus_per_machine(fabric)` — the
/// parameter exists so workload generators that size jobs off it are
/// checked against the fabric they actually got.
TopologyGraph make_cluster(int machines, int gpus_per_machine,
                           MachineShape fabric,
                           const MachineShapeOptions& options = {});

}  // namespace gts::topo::builders
