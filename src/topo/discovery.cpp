#include "topo/discovery.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/strings.hpp"

namespace gts::topo::discovery {

namespace {

/// Parses "0-7" or "8-15,24-31" (first range only) into [begin, end].
bool parse_affinity(std::string_view text, int& begin, int& end) {
  const auto first_range = util::split(std::string(text), ',').front();
  const auto parts = util::split(first_range, '-');
  if (parts.size() == 1) {
    const auto v = util::parse_int(parts[0]);
    if (!v) return false;
    begin = end = static_cast<int>(*v);
    return true;
  }
  if (parts.size() != 2) return false;
  const auto lo = util::parse_int(parts[0]);
  const auto hi = util::parse_int(parts[1]);
  if (!lo || !hi) return false;
  begin = static_cast<int>(*lo);
  end = static_cast<int>(*hi);
  return true;
}

bool is_connectivity_token(std::string_view token) {
  if (token == "X" || token == "PIX" || token == "PXB" || token == "PHB" ||
      token == "NODE" || token == "SYS") {
    return true;
  }
  return token.size() >= 3 && token.substr(0, 2) == "NV" &&
         util::parse_int(token.substr(2)).has_value();
}

}  // namespace

util::Expected<DiscoveredMatrix> parse_matrix(std::string_view text) {
  DiscoveredMatrix matrix;
  size_t expected_gpus = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw_line);
    if (line.empty()) continue;
    const auto tokens = util::split_whitespace(line);
    if (tokens.empty()) continue;
    // A data row is "GPUn <cells...> <affinity>"; the header row also
    // starts with "GPU0" (after its leading tab) but its remaining tokens
    // are GPU names, not connectivity cells — distinguish by the second
    // token.
    const bool is_data_row = util::starts_with(tokens[0], "GPU") &&
                             tokens.size() > 1 &&
                             is_connectivity_token(tokens[1]);
    if (!is_data_row) {
      // Header row ("GPU0 GPU1 ... CPU Affinity") or legend text.
      if (expected_gpus == 0) {
        for (const std::string& t : tokens) {
          if (util::starts_with(t, "GPU")) ++expected_gpus;
        }
      }
      continue;
    }
    MatrixRow row;
    row.gpu_name = tokens[0];
    size_t i = 1;
    while (i < tokens.size() && is_connectivity_token(tokens[i])) {
      row.cells.push_back(tokens[i]);
      ++i;
    }
    if (i < tokens.size()) {
      if (!parse_affinity(tokens[i], row.cpu_affinity_begin,
                          row.cpu_affinity_end)) {
        return util::Error{util::fmt("bad CPU affinity '{}' for {}",
                                     tokens[i], tokens[0])};
      }
    }
    matrix.rows.push_back(std::move(row));
  }
  if (matrix.rows.empty()) {
    return util::Error{"no GPU rows found in topo matrix"};
  }
  for (const MatrixRow& row : matrix.rows) {
    if (row.cells.size() != matrix.rows.size()) {
      return util::Error{util::fmt(
          "matrix is not square: row {} has {} cells for {} GPUs",
          row.gpu_name, row.cells.size(), matrix.rows.size())};
    }
  }
  return matrix;
}

util::Expected<NumaLayout> parse_numactl(std::string_view text) {
  NumaLayout layout;
  for (const std::string& raw_line : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw_line);
    // Looking for "node <n> cpus: <c0> <c1> ...".
    if (!util::starts_with(line, "node ")) continue;
    const auto tokens = util::split_whitespace(line);
    if (tokens.size() < 3 || tokens[2] != "cpus:") continue;
    const auto node = util::parse_int(tokens[1]);
    if (!node) continue;
    std::vector<int> cpus;
    for (size_t i = 3; i < tokens.size(); ++i) {
      if (const auto cpu = util::parse_int(tokens[i])) {
        cpus.push_back(static_cast<int>(*cpu));
      }
    }
    const size_t index = static_cast<size_t>(*node);
    if (layout.cpus_of_node.size() <= index) {
      layout.cpus_of_node.resize(index + 1);
    }
    layout.cpus_of_node[index] = std::move(cpus);
  }
  if (layout.cpus_of_node.empty()) {
    return util::Error{"no 'node N cpus:' lines found in numactl output"};
  }
  return layout;
}

util::Expected<TopologyGraph> build_machine(
    std::string_view nvidia_smi_matrix, std::string_view numactl_hardware,
    const builders::BandwidthParams& bandwidth, const LevelWeights& weights) {
  auto matrix = parse_matrix(nvidia_smi_matrix);
  if (!matrix) return matrix.error().with_context("nvidia-smi matrix");
  auto numa = parse_numactl(numactl_hardware);
  if (!numa) return numa.error().with_context("numactl");

  // Socket of each GPU = NUMA node whose CPU set contains the GPU's
  // affinity range start.
  const int gpu_count = static_cast<int>(matrix->rows.size());
  std::vector<int> socket_of(static_cast<size_t>(gpu_count), 0);
  for (int g = 0; g < gpu_count; ++g) {
    const MatrixRow& row = matrix->rows[static_cast<size_t>(g)];
    if (row.cpu_affinity_begin < 0) {
      return util::Error{
          util::fmt("GPU {} has no CPU affinity column", row.gpu_name)};
    }
    int socket = -1;
    for (size_t node = 0; node < numa->cpus_of_node.size(); ++node) {
      const auto& cpus = numa->cpus_of_node[node];
      if (std::find(cpus.begin(), cpus.end(), row.cpu_affinity_begin) !=
          cpus.end()) {
        socket = static_cast<int>(node);
        break;
      }
    }
    if (socket < 0) {
      return util::Error{util::fmt(
          "GPU {} affinity cpu {} not found in any NUMA node", row.gpu_name,
          row.cpu_affinity_begin)};
    }
    socket_of[static_cast<size_t>(g)] = socket;
  }

  TopologyGraph graph;
  const NodeId machine =
      graph.add_node({NodeKind::kMachine, "M0", 0, -1, -1, -1});

  const int socket_count =
      1 + *std::max_element(socket_of.begin(), socket_of.end());
  std::vector<NodeId> socket_nodes;
  for (int s = 0; s < socket_count; ++s) {
    const NodeId node = graph.add_node(
        {NodeKind::kSocket, util::fmt("S{}", s), 0, s, -1, -1});
    graph.add_link({machine, node, LinkKind::kSmpBus, weights.socket_uplink,
                    bandwidth.smp_bus_gbps, 1});
    socket_nodes.push_back(node);
  }

  // PIX pairs share a PCI-e switch: build the switch nodes first by finding
  // connected components of the PIX relation within each socket.
  std::vector<int> switch_of(static_cast<size_t>(gpu_count), -1);
  int switch_count = 0;
  for (int a = 0; a < gpu_count; ++a) {
    for (int b = a + 1; b < gpu_count; ++b) {
      const std::string& cell =
          matrix->rows[static_cast<size_t>(a)].cells[static_cast<size_t>(b)];
      if (cell == "PIX" || cell == "PXB") {
        if (switch_of[static_cast<size_t>(a)] < 0 &&
            switch_of[static_cast<size_t>(b)] < 0) {
          switch_of[static_cast<size_t>(a)] = switch_count;
          switch_of[static_cast<size_t>(b)] = switch_count;
          ++switch_count;
        } else if (switch_of[static_cast<size_t>(a)] < 0) {
          switch_of[static_cast<size_t>(a)] = switch_of[static_cast<size_t>(b)];
        } else if (switch_of[static_cast<size_t>(b)] < 0) {
          switch_of[static_cast<size_t>(b)] = switch_of[static_cast<size_t>(a)];
        }
      }
    }
  }
  std::vector<NodeId> switch_nodes(static_cast<size_t>(switch_count),
                                   kInvalidNode);

  std::vector<NodeId> gpu_nodes;
  for (int g = 0; g < gpu_count; ++g) {
    const int socket = socket_of[static_cast<size_t>(g)];
    const NodeId gpu = graph.add_node({NodeKind::kGpu, util::fmt("GPU{}", g),
                                       0, socket, -1, g});
    gpu_nodes.push_back(gpu);
    const int sw = switch_of[static_cast<size_t>(g)];
    if (sw >= 0) {
      if (switch_nodes[static_cast<size_t>(sw)] == kInvalidNode) {
        switch_nodes[static_cast<size_t>(sw)] = graph.add_node(
            {NodeKind::kSwitch, util::fmt("PCIe{}", sw), 0, socket, -1, -1});
        graph.add_link({socket_nodes[static_cast<size_t>(socket)],
                        switch_nodes[static_cast<size_t>(sw)], LinkKind::kPcie,
                        weights.switch_uplink, bandwidth.pcie_x16_gbps, 16});
      }
      graph.add_link({switch_nodes[static_cast<size_t>(sw)], gpu,
                      LinkKind::kPcie, weights.gpu_adjacent,
                      bandwidth.pcie_x16_gbps, 16});
    } else {
      // Attached to the socket root. If the GPU has any NVLink peer we
      // assume an NVLink host connection as on Power8; else PCI-e.
      bool has_nvlink = false;
      int max_lanes = 1;
      for (int other = 0; other < gpu_count; ++other) {
        const std::string& cell =
            matrix->rows[static_cast<size_t>(g)].cells[static_cast<size_t>(other)];
        if (util::starts_with(cell, "NV")) {
          has_nvlink = true;
          max_lanes = std::max(
              max_lanes,
              static_cast<int>(util::parse_int(cell.substr(2)).value_or(1)));
        }
      }
      if (has_nvlink) {
        graph.add_link({socket_nodes[static_cast<size_t>(socket)], gpu,
                        LinkKind::kNvlink, weights.gpu_adjacent,
                        max_lanes * bandwidth.nvlink_lane_gbps, max_lanes});
      } else {
        graph.add_link({socket_nodes[static_cast<size_t>(socket)], gpu,
                        LinkKind::kPcie, weights.gpu_adjacent,
                        bandwidth.pcie_x16_gbps, 16});
      }
    }
  }

  // Direct NVLink GPU<->GPU edges.
  for (int a = 0; a < gpu_count; ++a) {
    for (int b = a + 1; b < gpu_count; ++b) {
      const std::string& cell =
          matrix->rows[static_cast<size_t>(a)].cells[static_cast<size_t>(b)];
      if (util::starts_with(cell, "NV")) {
        const int lanes =
            static_cast<int>(util::parse_int(cell.substr(2)).value_or(1));
        graph.add_link({gpu_nodes[static_cast<size_t>(a)],
                        gpu_nodes[static_cast<size_t>(b)], LinkKind::kNvlink,
                        weights.gpu_adjacent,
                        lanes * bandwidth.nvlink_lane_gbps, lanes});
      }
    }
  }

  if (auto status = graph.validate(); !status) {
    return status.error().with_context("discovered topology");
  }
  return graph;
}

std::string render_matrix(const TopologyGraph& graph) {
  std::ostringstream os;
  const int n = graph.gpu_count();
  os << "     ";
  for (int j = 0; j < n; ++j) os << "\tGPU" << j;
  os << "\tCPU Affinity\n";
  for (int i = 0; i < n; ++i) {
    os << "GPU" << i;
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        os << "\t X ";
        continue;
      }
      const GpuPath& path = graph.gpu_path(i, j);
      // Direct NVLink edge?
      if (path.links.size() == 1) {
        const Link& link = graph.link(path.links[0]);
        if (link.kind == LinkKind::kNvlink) {
          os << "\tNV" << link.lanes;
          continue;
        }
      }
      if (!graph.same_machine(i, j)) {
        os << "\tSYS";
      } else if (!graph.same_socket(i, j)) {
        os << "\tSYS";
      } else if (path.peer_to_peer) {
        os << "\tPIX";
      } else {
        os << "\tPHB";
      }
    }
    // Synthetic 8-CPU-per-socket affinity, mirroring the S822LC layout.
    const int socket = graph.socket_of_gpu(i);
    os << "\t" << socket * 8 << "-" << socket * 8 + 7 << "\n";
  }
  return os.str();
}

}  // namespace gts::topo::discovery
