// Physical system topology graph (Section 4.1.2 of the paper).
//
// The graph is hierarchical: a network root, machines, sockets, optional
// PCI-e switch levels, and GPUs as leaves. GPUs may additionally be linked
// directly to each other (NVLink peer-to-peer edges). Edge weights are
// qualitative distances — the only constraint the paper imposes is that
// higher levels carry larger weights (Fig. 7 uses 1 for GPU-adjacent edges,
// 10 for switch uplinks, 20 for socket uplinks, and larger values towards
// the network root).
//
// Besides the qualitative weight used by the mapping algorithm, every link
// carries a peak unidirectional bandwidth in GB/s; the performance model
// (src/perf) uses the bottleneck bandwidth along the routing path of a GPU
// pair, and the cluster simulator (src/cluster) accounts per-link flows on
// those paths to model contention.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/expected.hpp"

namespace gts::topo {

using NodeId = int;
using LinkId = int;
inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t {
  kNetwork,  // cluster interconnect root
  kMachine,
  kSocket,
  kSwitch,  // PCI-e switch
  kGpu,
};

enum class LinkKind : std::uint8_t {
  kNvlink,
  kPcie,
  kSmpBus,   // inter-socket bus (X-bus on Power8, QPI on x86)
  kNetwork,  // machine-to-cluster interconnect
};

std::string_view to_string(NodeKind kind) noexcept;
std::string_view to_string(LinkKind kind) noexcept;

/// Qualitative level weights matching Fig. 7.
struct LevelWeights {
  double gpu_adjacent = 1.0;   // GPU<->GPU, GPU<->socket, GPU<->switch
  double switch_uplink = 10.0; // switch<->socket
  double socket_uplink = 20.0; // socket<->machine
  double machine_uplink = 100.0;  // machine<->network
};

struct Node {
  NodeKind kind = NodeKind::kGpu;
  std::string name;
  int machine = -1;      // machine index, -1 for the network root
  int socket = -1;       // socket index within machine, -1 above socket level
  int gpu_index = -1;    // global GPU index if kind == kGpu, else -1
  int local_gpu = -1;    // GPU index within its machine, else -1
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  LinkKind kind = LinkKind::kPcie;
  double weight = 1.0;          // qualitative distance contribution
  double bandwidth_gbps = 0.0;  // peak unidirectional bandwidth
  int lanes = 1;                // e.g. NVLink lane count ("NV2" = 2)
};

/// A routed GPU-to-GPU path with the properties the schedulers and the
/// performance model consume.
struct GpuPath {
  double distance = 0.0;        // sum of link weights along min-weight path
  double bottleneck_gbps = 0.0; // min link bandwidth along the path
  bool peer_to_peer = false;    // true iff no socket/machine/network node is
                                // traversed (direct or switch-only route)
  std::vector<LinkId> links;    // links along the path, in order
};

class TopologyGraph {
 public:
  // --- construction -------------------------------------------------------
  NodeId add_node(Node node);
  LinkId add_link(Link link);

  /// Checks structural invariants: connectivity, positive weights and
  /// bandwidths, GPU indices dense, exactly one network root if any
  /// machine-level node exists.
  util::Status validate() const;

  // --- basic accessors -----------------------------------------------------
  int node_count() const noexcept { return static_cast<int>(nodes_.size()); }
  int link_count() const noexcept { return static_cast<int>(links_.size()); }
  const Node& node(NodeId id) const { return nodes_.at(static_cast<size_t>(id)); }
  const Link& link(LinkId id) const { return links_.at(static_cast<size_t>(id)); }
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  struct Neighbor {
    NodeId node;
    LinkId link;
  };
  const std::vector<Neighbor>& neighbors(NodeId id) const {
    return adjacency_.at(static_cast<size_t>(id));
  }

  // --- GPU-level structure -------------------------------------------------
  int gpu_count() const noexcept { return static_cast<int>(gpu_nodes_.size()); }
  int machine_count() const noexcept { return machine_count_; }
  /// Node id of the GPU with global index `gpu` (0-based, dense).
  NodeId gpu_node(int gpu) const { return gpu_nodes_.at(static_cast<size_t>(gpu)); }
  /// Machine index of a GPU (flat-array lookup; hot on the decision path).
  int machine_of_gpu(int gpu) const {
    ensure_structure();
    return gpu_machine_[static_cast<size_t>(gpu)];
  }
  /// Socket index (within its machine) of a GPU.
  int socket_of_gpu(int gpu) const {
    ensure_structure();
    return gpu_socket_[static_cast<size_t>(gpu)];
  }
  bool same_socket(int gpu_a, int gpu_b) const {
    return machine_of_gpu(gpu_a) == machine_of_gpu(gpu_b) &&
           socket_of_gpu(gpu_a) == socket_of_gpu(gpu_b);
  }
  bool same_machine(int gpu_a, int gpu_b) const {
    return machine_of_gpu(gpu_a) == machine_of_gpu(gpu_b);
  }
  /// Global GPU indices on machine `machine` (cached; O(1) amortized).
  const std::vector<int>& gpus_of_machine(int machine) const;
  /// Global GPU indices on socket `socket` of machine `machine` (cached).
  const std::vector<int>& gpus_of_socket(int machine, int socket) const;
  /// All socket GPU lists of `machine` at once (index = socket). Lets the
  /// utility loops hoist one lookup per machine instead of one per socket.
  const std::vector<std::vector<int>>& socket_gpu_lists(int machine) const;
  /// Number of sockets on `machine` (cached).
  int sockets_of_machine(int machine) const;

  // --- shortest paths ------------------------------------------------------
  /// Min-weight path between two arbitrary nodes (Dijkstra). Ties are broken
  /// deterministically by node id.
  GpuPath shortest_path(NodeId from, NodeId to) const;

  /// Cached min-weight path between two GPUs by global index.
  ///
  /// Storage is hierarchical above 64 GPUs: intra-machine pairs are dense
  /// per machine, and cross-machine paths are synthesized from each GPU's
  /// cached route to the network root (exact, because inter-machine
  /// traffic always crosses the root in tree-shaped clusters) and cached
  /// on demand. This keeps a 1000-machine cluster at O(G) memory instead
  /// of an O(G^2) all-pairs table.
  const GpuPath& gpu_path(int gpu_a, int gpu_b) const;

  /// Distance only. Served from flat double tables (dense n^2 for small
  /// graphs; per-machine dense blocks + per-GPU root distances above the
  /// dense limit) — no path object or hash lookup on this, the single
  /// hottest call of the decision path.
  double gpu_distance(int gpu_a, int gpu_b) const;
  /// Largest pairwise GPU distance in the graph; used to normalize
  /// communication cost against the worst case (Eq. 1).
  double max_gpu_distance() const;

  /// Pre-builds the lazily materialized structure and distance tables on
  /// the calling thread. The tables are `mutable` and built on first
  /// const access, which is fine single-threaded but a data race when
  /// concurrent readers trigger the first build; callers that fan
  /// read-only scoring work out across threads (the parallel candidate
  /// scorer) call this once from the owning thread before the fan-out,
  /// after which gpu_distance / max_gpu_distance / the structure lookups
  /// are pure reads. gpu_path stays excluded: its hierarchical-mode
  /// cross-machine memo fills on demand, so it must not be called from
  /// concurrent workers (the decision path only uses gpu_distance).
  void warm_caches() const {
    ensure_structure();
    ensure_paths();
  }

  /// Dumps a human-readable multi-line description (levels, links, paths).
  std::string describe() const;

 private:
  void ensure_paths() const;
  void ensure_structure() const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<NodeId> gpu_nodes_;
  int machine_count_ = 0;

  // Path caches, built lazily, invalidated by mutation. Dense all-pairs
  // for small graphs; hierarchical (per-machine dense + per-GPU root
  // routes) for large clusters.
  mutable bool paths_valid_ = false;
  mutable bool hierarchical_paths_ = false;
  mutable std::vector<GpuPath> gpu_paths_;  // dense mode: gpu_count^2
  mutable std::unordered_map<std::uint64_t, GpuPath> intra_paths_;
  mutable std::unordered_map<std::uint64_t, GpuPath> cross_cache_;
  mutable std::vector<GpuPath> root_paths_;  // per GPU: route to the root
  mutable double max_gpu_distance_ = 0.0;

  // Flat distance tables mirroring the path caches so gpu_distance never
  // touches a GpuPath object or hash map. Dense mode: gpu_count^2 doubles.
  // Hierarchical mode: per-GPU root distance plus one dense block per
  // machine (indexed by within-machine local GPU index).
  mutable std::vector<double> gpu_dist_;
  mutable std::vector<double> root_dist_;
  mutable std::vector<double> intra_dist_;
  mutable std::vector<int> machine_dist_offset_;

  // Machine/socket structure caches (derived from nodes, invalidated by
  // mutation): per-GPU flat machine/socket/local-index arrays and
  // per-machine GPU and socket lists.
  mutable bool structure_valid_ = false;
  mutable std::vector<std::vector<int>> machine_gpus_;
  mutable std::vector<int> machine_sockets_;
  mutable std::vector<std::vector<std::vector<int>>> machine_socket_gpus_;
  mutable std::vector<int> gpu_machine_;
  mutable std::vector<int> gpu_socket_;
  mutable std::vector<int> gpu_local_index_;
};

}  // namespace gts::topo
