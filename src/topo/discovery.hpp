// Topology discovery from textual tool output (Section 5.1).
//
// The paper's prototype discovers the topology at startup by running
// `nvidia-smi topo --matrix` (GPU-to-GPU connectivity classes) and
// `numactl --hardware` (socket layout / CPU affinity). We exercise the same
// code path against synthetic fixtures: parse those two text formats into a
// TopologyGraph for one machine.
//
// Supported connectivity classes in the matrix, from closest to farthest:
//   NV#  - direct NVLink with # lanes
//   PIX  - same PCI-e switch
//   PXB  - multiple PCI-e bridges (modelled like PIX with one extra hop)
//   PHB  - through the socket's PCI-e host bridge (same socket, no P2P link)
//   NODE/SYS - across sockets (routed through the SMP bus)
#pragma once

#include <string>
#include <string_view>

#include "topo/builders.hpp"
#include "topo/topology.hpp"
#include "util/expected.hpp"

namespace gts::topo::discovery {

/// One GPU row parsed from the matrix: connectivity class to every other
/// GPU plus the CPU affinity range used to infer the socket.
struct MatrixRow {
  std::string gpu_name;            // "GPU0"
  std::vector<std::string> cells;  // "X", "NV2", "SYS", ...
  int cpu_affinity_begin = -1;     // first CPU of the affinity range
  int cpu_affinity_end = -1;       // last CPU (inclusive)
};

struct DiscoveredMatrix {
  std::vector<MatrixRow> rows;
};

/// Parses the `nvidia-smi topo --matrix` table. Tolerates the legend block
/// that nvidia-smi appends after the table.
util::Expected<DiscoveredMatrix> parse_matrix(std::string_view text);

/// Parses `numactl --hardware` output and returns, per NUMA node, the
/// inclusive CPU ranges ("node 0 cpus: 0 1 2 ...").
struct NumaLayout {
  // cpus_of_node[n] lists the CPU ids of NUMA node n.
  std::vector<std::vector<int>> cpus_of_node;
};
util::Expected<NumaLayout> parse_numactl(std::string_view text);

/// Builds a single-machine TopologyGraph from the two tool outputs, using
/// `bandwidth` for link capacities (the tools do not report bandwidth).
util::Expected<TopologyGraph> build_machine(
    std::string_view nvidia_smi_matrix, std::string_view numactl_hardware,
    const builders::BandwidthParams& bandwidth = {},
    const LevelWeights& weights = {});

/// Renders `graph` (one machine) back into the nvidia-smi matrix format —
/// used by tests to round-trip and by examples to show what discovery sees.
std::string render_matrix(const TopologyGraph& graph);

}  // namespace gts::topo::discovery
