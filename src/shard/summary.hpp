// Per-cell routing summaries and the two-stage inter-shard router
// (DESIGN.md section 19).
//
// A CellSummary is the router's cheap aggregate view of one cell: free
// GPUs in total, per machine and per socket (as max-tier histograms),
// machines with any free GPU, and the Eq. 5 fragmentation estimate. It is
// maintained incrementally — O(GPUs of the job) per placement/completion
// event via ClusterState's allocation listener — so routing never rescans
// a cell.
//
// Routing runs two stages before any full scheduler pass happens:
//
//   Filter — rejects shards that *provably* cannot place the job right
//            now. Only necessary conditions are checked (free total,
//            largest free machine for single-node jobs, machines with a
//            free GPU for anti-collocated jobs), so the Filter never
//            rejects a shard the full scheduler could have placed into —
//            the soundness invariant tests/shard_test.cpp holds over
//            random topologies.
//   Score  — ranks surviving shards 0..100 (packing tier, free capacity,
//            queue pressure, fragmentation; the k8s shim's score idiom).
//            Ties break toward the lowest shard id.
//
// When every shard is filtered, the job falls back to the ever-fitting
// shard with the most free GPUs (it will queue there); the router counts
// these as `exhausted`.
#pragma once

#include <span>
#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"

namespace gts::shard {

class CellSummary {
 public:
  /// Builds the all-free summary of `cell` (the cell's own sub-topology;
  /// GPU ids below are cell-local).
  explicit CellSummary(const topo::TopologyGraph& cell);

  /// Allocation-listener target: `gpus` (cell-local) were just allocated
  /// or freed as one job-sized event.
  void on_allocation(std::span<const int> gpus, bool allocated);

  int total_gpus() const noexcept { return total_gpus_; }
  int free_total() const noexcept { return free_total_; }
  int machines_with_free() const noexcept { return machines_with_free_; }
  /// Largest number of free GPUs on any single machine / socket
  /// (top-down histogram scan; machines hold at most a few GPUs).
  int max_free_machine() const;
  int max_free_socket() const;
  int socket_count() const noexcept {
    return static_cast<int>(socket_free_.size());
  }
  /// Eq. 5 mean free-socket fraction, maintained incrementally.
  double fragmentation() const;

 private:
  void bump(std::vector<int>& hist, int from, int to);

  int total_gpus_ = 0;
  int free_total_ = 0;
  int machines_with_free_ = 0;
  double frag_sum_ = 0.0;  // sum over sockets of free/size
  std::vector<int> gpu_machine_;      // per local GPU
  std::vector<int> gpu_socket_slot_;  // per local GPU, flat socket index
  std::vector<double> socket_inv_size_;  // per socket slot, 1/size
  std::vector<int> machine_free_;     // free GPUs per machine
  std::vector<int> socket_free_;      // free GPUs per socket slot
  std::vector<int> machine_hist_;     // machines with exactly k free GPUs
  std::vector<int> socket_hist_;      // sockets with exactly k free GPUs
};

/// One routing candidate: the cell's summary + static topology, plus its
/// current queue depth (jobs already waiting there).
struct ShardCandidate {
  const CellSummary* summary = nullptr;
  const topo::TopologyGraph* topology = nullptr;
  int queue_depth = 0;
};

struct RouteDecision {
  /// Chosen shard, or -1 when no shard can ever fit the job.
  int shard = -1;
  /// Score of the winner (0 when the route fell back).
  int score = 0;
  /// Shards rejected by the Filter stage for this job.
  int filtered = 0;
  /// True when every shard was filtered and the fallback picked the
  /// ever-fitting shard with the most free GPUs (the job will queue).
  bool exhausted = false;
};

/// Filter stage alone: can `candidate` possibly place `request` right now?
/// Necessary conditions only — a true return is NOT a placement guarantee,
/// but a false return is a proof of infeasibility.
bool filter_admits(const jobgraph::JobRequest& request,
                   const ShardCandidate& candidate,
                   const perf::DlWorkloadModel& model);

/// Score stage alone: 0..100 rank of a Filter-surviving candidate.
int score_shard(const jobgraph::JobRequest& request,
                const ShardCandidate& candidate);

/// Full two-stage route over `candidates` (indexed by shard id).
RouteDecision route_job(const jobgraph::JobRequest& request,
                        std::span<const ShardCandidate> candidates,
                        const perf::DlWorkloadModel& model);

}  // namespace gts::shard
