#include "shard/cells.hpp"

#include <algorithm>

#include "check/check.hpp"

namespace gts::shard {

std::vector<std::pair<int, int>> partition_machines(int machines,
                                                    int shards) {
  GTS_CHECK(machines >= 1, "partition_machines: machines must be >= 1, got ",
            machines);
  shards = std::clamp(shards, 1, machines);
  const int base = machines / shards;
  const int extra = machines % shards;
  std::vector<std::pair<int, int>> ranges;
  ranges.reserve(static_cast<size_t>(shards));
  int begin = 0;
  for (int s = 0; s < shards; ++s) {
    const int size = base + (s < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }
  return ranges;
}

CellTopology extract_cell(const topo::TopologyGraph& cluster,
                          int machine_begin, int machine_end) {
  GTS_CHECK(machine_begin >= 0 && machine_begin < machine_end &&
                machine_end <= cluster.machine_count(),
            "extract_cell: bad machine range [", machine_begin, ", ",
            machine_end, ") for a ", cluster.machine_count(),
            "-machine cluster");
  CellTopology cell;
  cell.machine_begin = machine_begin;
  const bool multi_machine = machine_end - machine_begin > 1;

  // The cell's own network root, added first so the node layout matches
  // what topo::builders::cluster would have produced for this many
  // machines (single-machine graphs carry no root there either).
  topo::NodeId cell_root = topo::kInvalidNode;
  if (multi_machine) {
    cell_root = cell.graph.add_node(
        {topo::NodeKind::kNetwork, "Net", -1, -1, -1, -1});
  }

  // Copy in-range nodes in original insertion order; GPU indices are
  // re-assigned densely by add_node, and because the original order is
  // preserved, local GPU k maps to the k-th in-range global GPU.
  std::vector<topo::NodeId> node_map(
      static_cast<size_t>(cluster.node_count()), topo::kInvalidNode);
  topo::NodeId cluster_root = topo::kInvalidNode;
  for (topo::NodeId id = 0; id < cluster.node_count(); ++id) {
    const topo::Node& node = cluster.node(id);
    if (node.machine < 0) {
      if (node.kind == topo::NodeKind::kNetwork) cluster_root = id;
      continue;
    }
    if (node.machine < machine_begin || node.machine >= machine_end) continue;
    topo::Node copy = node;
    copy.machine -= machine_begin;
    node_map[static_cast<size_t>(id)] = cell.graph.add_node(std::move(copy));
    if (node.kind == topo::NodeKind::kGpu) {
      cell.gpu_to_global.push_back(node.gpu_index);
    }
  }

  for (const topo::Link& link : cluster.links()) {
    const topo::NodeId a = node_map[static_cast<size_t>(link.a)];
    const topo::NodeId b = node_map[static_cast<size_t>(link.b)];
    if (a != topo::kInvalidNode && b != topo::kInvalidNode) {
      topo::Link copy = link;
      copy.a = a;
      copy.b = b;
      cell.graph.add_link(copy);
      continue;
    }
    // Machine uplink to the cluster root: re-anchor it on the cell root
    // (multi-machine cells), or drop it (a standalone machine has none).
    if (cell_root == topo::kInvalidNode) continue;
    const bool a_is_root = link.a == cluster_root;
    const bool b_is_root = link.b == cluster_root;
    if (a_is_root && b != topo::kInvalidNode) {
      topo::Link copy = link;
      copy.a = cell_root;
      copy.b = b;
      cell.graph.add_link(copy);
    } else if (b_is_root && a != topo::kInvalidNode) {
      topo::Link copy = link;
      copy.a = a;
      copy.b = cell_root;
      cell.graph.add_link(copy);
    }
  }

  cell.graph.warm_caches();
  return cell;
}

}  // namespace gts::shard
