// ShardedDriver: datacenter-scale scheduling as a federation of cells
// (DESIGN.md section 19).
//
// The facade partitions the cluster into contiguous machine cells
// (shard/cells.hpp), gives each cell its own sched::Driver + scheduler
// over the cell's sub-topology, and routes every arriving job through the
// two-stage Filter/Score router (shard/summary.hpp) before exactly one
// cell runs a full scheduling pass on it. Placement work is therefore
// O(cell), not O(cluster), per decision — the property bench/bench_scale
// measures from 500 to 5000 machines.
//
// The facade implements sched::DriverApi, so svc::ServiceCore, the
// snapshot/restore protocol, and every tool verb work unchanged on a
// sharded daemon. Published state is always in the global id space: GPU
// ids in views, records and snapshots are translated from cell-local ids
// at the boundary.
//
// Determinism: routing happens at arrival timestamps in submission order,
// and cells between routing points advance independently (optionally on a
// util::ThreadPool — cells share no mutable state, and per-cell event
// order is unaffected by interleaving). Results are byte-identical for
// any --shard-threads; tests/shard_test.cpp holds {1,2,8} to that. With
// the explain JSONL pillar enabled, cells advance serially so decision
// records keep a deterministic file order.
//
// A 1-shard facade does not route at all: every call delegates to a
// single Driver over the *original* topology object, making the 1-shard
// configuration literally byte-identical to an unsharded Driver.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "sched/driver.hpp"
#include "shard/cells.hpp"
#include "shard/summary.hpp"
#include "util/thread_pool.hpp"

namespace gts::shard {

struct ShardedOptions {
  /// Number of cells; clamped to [1, machines].
  int shards = 1;
  /// Worker threads advancing cells concurrently; <= 1 advances serially.
  /// Any value produces byte-identical results.
  int shard_threads = 1;
  /// Placement policy instantiated per cell.
  sched::Policy policy = sched::Policy::kTopoAwareP;
  /// Per-cell driver options (noise, audit, utility weights, parallel
  /// candidate scoring). `allocation_listener` is reserved for the
  /// facade's own cell summaries and must be empty.
  sched::DriverOptions driver;
};

class ShardedDriver : public sched::DriverApi {
 public:
  ShardedDriver(const topo::TopologyGraph& topology,
                const perf::DlWorkloadModel& model,
                ShardedOptions options = {});

  /// Batch convenience mirroring Driver::run: submits the whole workload,
  /// runs every cell to completion, and returns the merged report
  /// (records in (arrival, id) order with global GPU ids; counters and
  /// latency histograms summed over cells; series not merged).
  sched::DriverReport run(std::vector<jobgraph::JobRequest> jobs);

  /// The cell drivers, for tests and benchmarks.
  const sched::Driver& cell(int shard) const {
    return *cells_.at(static_cast<size_t>(shard)).driver;
  }
  /// Global machine range [begin, end) of a cell.
  std::pair<int, int> cell_machines(int shard) const;

  // --- DriverApi -----------------------------------------------------------
  sched::SubmitResult submit(const jobgraph::JobRequest& request) override;
  bool cancel(int job_id) override;
  void drain() override;
  bool draining() const override;
  void advance_to(double t) override;
  double advance_all() override;
  void checkpoint_progress() override;
  bool idle() const override;
  double now() const override;
  int queue_depth() const override;
  int pending_count() const override;
  std::uint64_t capacity_version() const override;
  std::uint64_t allocation_version() const override;
  int running_job_count() const override;
  int free_gpu_count() const override;
  double fragmentation() const override;
  sched::DriverCounters counters() const override;
  sched::LifecycleSummary lifecycle() const override;
  int shard_count() const override {
    return static_cast<int>(cells_.size());
  }
  std::vector<sched::ShardInfo> shard_infos() const override;
  sched::RouterTelemetry router() const override;
  void visit_running(const std::function<bool(const sched::RunningJobView&)>&
                         fn) const override;
  void visit_waiting(const std::function<bool(const sched::WaitingView&)>& fn)
      const override;
  void visit_records(const std::function<bool(const cluster::JobRecord&)>& fn)
      const override;
  std::optional<cluster::JobRecord> job_record(int job_id) const override;
  std::vector<jobgraph::JobRequest> pending_arrivals() const override;
  util::Status begin_restore(double now,
                             std::uint64_t capacity_version) override;
  util::Status restore_running(const jobgraph::JobRequest& request,
                               const std::vector<int>& gpus,
                               double start_time, double progress_iterations,
                               double placement_utility, double noise_factor,
                               int postponements = 0) override;
  void restore_waiting(const jobgraph::JobRequest& request,
                       std::uint64_t attempted_version,
                       int postponements = 0, int shard_hint = -1) override;
  util::Status finish_restore() override;
  util::Status validate() const override;

 private:
  struct Cell {
    /// Heap-held so `graph` and the Driver's topology reference stay
    /// stable as cells_ grows; null in delegate mode (the original graph
    /// is used directly).
    std::unique_ptr<CellTopology> topo;
    const topo::TopologyGraph* graph = nullptr;
    std::unique_ptr<sched::Scheduler> scheduler;
    std::unique_ptr<CellSummary> summary;  // null in delegate mode
    std::unique_ptr<sched::Driver> driver;
    long long routed = 0;
  };
  struct PendingJob {
    jobgraph::JobRequest request;
    long long seq = 0;  // facade submission order, routing tie-break
  };

  bool known_id(int job_id) const;
  bool any_cell_fits(const jobgraph::JobRequest& request) const;
  /// Advances every cell whose clock is behind to `t` (pool-parallel when
  /// configured and the explain pillar is off).
  void advance_cells_to(double t);
  /// Routes one arrival batch: all pending jobs with arrival time `ta`,
  /// in submission order. Cells are first advanced to `ta` (so summaries
  /// reflect completions up to the arrival), each job is routed and
  /// submitted to its cell, then cells advance to `ta` again to fire the
  /// just-scheduled arrival events.
  void route_batch(double ta, std::vector<PendingJob> batch);
  /// Extracts, groups by arrival, and routes every pending arrival <= t.
  void route_pending_until(double t);
  int route_one(const jobgraph::JobRequest& request);
  /// Translates cell-local GPU ids to global ids (identity in delegate
  /// mode).
  std::vector<int> to_global(const Cell& cell,
                             std::span<const int> gpus) const;
  cluster::JobRecord translated_record(const Cell& cell,
                                       const cluster::JobRecord& record) const;
  sched::DriverReport merged_report() const;

  const topo::TopologyGraph& topology_;
  const perf::DlWorkloadModel& model_;
  ShardedOptions options_;
  std::vector<Cell> cells_;
  bool delegate_ = false;  // 1-shard: forward everything to cells_[0]
  double now_ = 0.0;
  bool draining_ = false;
  long long seq_counter_ = 0;
  /// Future arrivals held by the facade until their routing timestamp.
  std::map<int, PendingJob> pending_;
  /// Every id ever handed to a cell -> its shard.
  std::map<int, int> routed_shard_;
  /// Records the facade owns: never-fit rejects and cancels of not-yet
  /// routed jobs (cells never saw those ids).
  cluster::Recorder local_recorder_;
  int rejected_jobs_ = 0;
  int duplicate_jobs_ = 0;
  long long routed_ = 0;
  long long filtered_ = 0;
  long long exhausted_ = 0;
  obs::HistogramData route_latency_us_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Global GPU id -> owning shard / cell-local id.
  std::vector<int> gpu_shard_;
  std::vector<int> gpu_local_;
};

}  // namespace gts::shard
