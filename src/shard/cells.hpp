// Cell partitioning: slicing one datacenter topology into contiguous
// machine ranges ("cells"), each owned by its own scheduler instance
// (DESIGN.md section 19).
//
// A cell's sub-topology is extracted from the cluster graph: nodes are
// copied in original insertion order (so GPU indices stay dense and in the
// same relative order), machine indices are rebased to start at 0, and a
// synthetic network root replaces the cluster root for multi-machine
// cells. Structure and distance caches are pre-warmed so cells can be
// advanced from pool workers without racing a lazy first build.
#pragma once

#include <utility>
#include <vector>

#include "topo/topology.hpp"

namespace gts::shard {

/// Machine range [begin, end) of every cell: contiguous, near-equal
/// (the first `machines % shards` cells get one extra machine). `shards`
/// is clamped to [1, machines].
std::vector<std::pair<int, int>> partition_machines(int machines,
                                                    int shards);

/// One cell's extracted sub-topology plus the id translations the facade
/// needs to speak the global GPU id space.
struct CellTopology {
  topo::TopologyGraph graph;
  /// First global machine index of the cell; local machine m is global
  /// machine_begin + m.
  int machine_begin = 0;
  /// Local GPU id -> global GPU id (dense, ascending).
  std::vector<int> gpu_to_global;
};

/// Extracts machines [machine_begin, machine_end) of `cluster` into a
/// standalone graph. Mirrors topo::builders::cluster shape rules: cells
/// spanning more than one machine get a fresh network root carrying the
/// original machine-uplink links; single-machine cells have no root (and
/// drop the uplink), exactly like a standalone machine graph. Caches are
/// warmed before returning.
CellTopology extract_cell(const topo::TopologyGraph& cluster,
                          int machine_begin, int machine_end);

}  // namespace gts::shard
