#include "shard/sharded_driver.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gts::shard {

ShardedDriver::ShardedDriver(const topo::TopologyGraph& topology,
                             const perf::DlWorkloadModel& model,
                             ShardedOptions options)
    : topology_(topology), model_(model), options_(std::move(options)) {
  GTS_CHECK(!options_.driver.allocation_listener,
            "ShardedOptions::driver.allocation_listener is reserved for the "
            "facade's cell summaries");
  const int machines = std::max(1, topology_.machine_count());
  const int shards = std::clamp(options_.shards, 1, machines);
  delegate_ = shards == 1;
  cells_.reserve(static_cast<size_t>(shards));

  if (delegate_) {
    // One cell spanning everything: run a Driver over the *original*
    // topology object, no routing, no summaries — literal byte-identity
    // with an unsharded Driver.
    Cell cell;
    cell.graph = &topology_;
    cell.scheduler =
        sched::make_scheduler(options_.policy, options_.driver.utility_weights);
    cell.driver = std::make_unique<sched::Driver>(
        topology_, model_, *cell.scheduler, options_.driver);
    cells_.push_back(std::move(cell));
    return;
  }

  gpu_shard_.assign(static_cast<size_t>(topology_.gpu_count()), -1);
  gpu_local_.assign(static_cast<size_t>(topology_.gpu_count()), -1);
  const auto ranges = partition_machines(machines, shards);
  for (int s = 0; s < shards; ++s) {
    Cell cell;
    cell.topo = std::make_unique<CellTopology>(
        extract_cell(topology_, ranges[static_cast<size_t>(s)].first,
                     ranges[static_cast<size_t>(s)].second));
    cell.graph = &cell.topo->graph;
    for (size_t local = 0; local < cell.topo->gpu_to_global.size(); ++local) {
      const int global = cell.topo->gpu_to_global[local];
      gpu_shard_[static_cast<size_t>(global)] = s;
      gpu_local_[static_cast<size_t>(global)] = static_cast<int>(local);
    }
    cell.summary = std::make_unique<CellSummary>(*cell.graph);
    cell.scheduler =
        sched::make_scheduler(options_.policy, options_.driver.utility_weights);
    sched::DriverOptions driver_options = options_.driver;
    CellSummary* summary = cell.summary.get();
    driver_options.allocation_listener =
        [summary](std::span<const int> gpus, bool allocated) {
          summary->on_allocation(gpus, allocated);
        };
    cell.driver = std::make_unique<sched::Driver>(
        *cell.graph, model_, *cell.scheduler, std::move(driver_options));
    cells_.push_back(std::move(cell));
  }
  if (options_.shard_threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        std::min(options_.shard_threads, shards));
  }
}

std::pair<int, int> ShardedDriver::cell_machines(int shard) const {
  const Cell& cell = cells_.at(static_cast<size_t>(shard));
  if (!cell.topo) return {0, topology_.machine_count()};
  return {cell.topo->machine_begin,
          cell.topo->machine_begin + cell.graph->machine_count()};
}

bool ShardedDriver::known_id(int job_id) const {
  return pending_.count(job_id) > 0 || routed_shard_.count(job_id) > 0 ||
         local_recorder_.find(job_id) != nullptr;
}

bool ShardedDriver::any_cell_fits(const jobgraph::JobRequest& request) const {
  for (const Cell& cell : cells_) {
    if (sched::job_can_ever_fit(request, *cell.graph, model_)) return true;
  }
  return false;
}

sched::SubmitResult ShardedDriver::submit(const jobgraph::JobRequest& request) {
  if (delegate_) return cells_[0].driver->submit(request);
  if (draining_) return sched::SubmitResult::kDraining;
  if (known_id(request.id)) {
    GTS_LOG_WARN("shard", "duplicate job id ", request.id, "; refused");
    return sched::SubmitResult::kDuplicate;
  }
  PendingJob pending{request, seq_counter_++};
  if (pending.request.arrival_time < now_) {
    pending.request.arrival_time = now_;
  }
  // A job no cell can ever host is rejected up front — sharded placement
  // is cell-local, so "fits the datacenter but not one cell" is a reject
  // (documented in DESIGN.md section 19).
  if (!any_cell_fits(pending.request)) {
    local_recorder_.on_submit(pending.request);
    ++rejected_jobs_;
    GTS_LOG_WARN("shard", "job ", request.id,
                 " can never fit any cell; rejected");
    return sched::SubmitResult::kNeverFits;
  }
  pending_.emplace(request.id, std::move(pending));
  return sched::SubmitResult::kAccepted;
}

bool ShardedDriver::cancel(int job_id) {
  if (delegate_) return cells_[0].driver->cancel(job_id);
  if (const auto it = pending_.find(job_id); it != pending_.end()) {
    local_recorder_.on_submit(it->second.request);
    local_recorder_.on_cancel(job_id, now_);
    pending_.erase(it);
    return true;
  }
  if (const auto it = routed_shard_.find(job_id); it != routed_shard_.end()) {
    return cells_[static_cast<size_t>(it->second)].driver->cancel(job_id);
  }
  return false;
}

void ShardedDriver::drain() {
  if (delegate_) {
    cells_[0].driver->drain();
    return;
  }
  // Only the facade refuses submits: cells must keep accepting the routed
  // arrivals the facade already admitted.
  draining_ = true;
}

bool ShardedDriver::draining() const {
  if (delegate_) return cells_[0].driver->draining();
  return draining_;
}

void ShardedDriver::advance_cells_to(double t) {
  const auto advance = [this, t](int i) {
    sched::Driver& driver = *cells_[static_cast<size_t>(i)].driver;
    if (driver.now() < t) driver.advance_to(t);
  };
  // Cells share no mutable state, so advancing them on pool workers keeps
  // per-cell event order (and therefore every decision) byte-identical.
  // The explain JSONL sink is the one order-sensitive consumer: keep cell
  // advancement serial while it is enabled so its records interleave
  // deterministically.
  if (pool_ && !obs::explain_enabled()) {
    util::parallel_for(*pool_, static_cast<int>(cells_.size()), advance);
  } else {
    for (int i = 0; i < static_cast<int>(cells_.size()); ++i) advance(i);
  }
}

int ShardedDriver::route_one(const jobgraph::JobRequest& request) {
  const std::int64_t t0_us = obs::wall_now_us();
  std::vector<ShardCandidate> candidates;
  candidates.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    candidates.push_back(
        {cell.summary.get(), cell.graph, cell.driver->queue_depth()});
  }
  const RouteDecision decision = route_job(request, candidates, model_);
  const double latency_us = static_cast<double>(obs::wall_now_us() - t0_us);
  route_latency_us_.record(latency_us);
  ++routed_;
  filtered_ += decision.filtered;
  if (decision.exhausted) ++exhausted_;
  GTS_METRIC_COUNT("shard.routed", 1);
  GTS_METRIC_COUNT("shard.filtered", decision.filtered);
  if (decision.exhausted) GTS_METRIC_COUNT("shard.exhausted", 1);
  GTS_METRIC_HISTOGRAM("shard.route_latency_us", latency_us,
                       obs::latency_bounds_us());
  GTS_CHECK(decision.shard >= 0, "router found no cell for job ", request.id,
            " after the admission ever-fit pre-check");
  return decision.shard;
}

void ShardedDriver::route_batch(double ta, std::vector<PendingJob> batch) {
  // Bring every cell to the arrival timestamp first, so completions up to
  // `ta` have freed capacity and updated the summaries the router reads.
  advance_cells_to(ta);
  std::sort(batch.begin(), batch.end(),
            [](const PendingJob& a, const PendingJob& b) {
              return a.seq < b.seq;
            });
  for (PendingJob& pending : batch) {
    const int shard = route_one(pending.request);
    Cell& cell = cells_[static_cast<size_t>(shard)];
    ++cell.routed;
    routed_shard_.emplace(pending.request.id, shard);
    const sched::SubmitResult result = cell.driver->submit(pending.request);
    GTS_CHECK(result == sched::SubmitResult::kAccepted, "cell ", shard,
              " refused routed job ", pending.request.id, ": ",
              sched::to_string(result));
  }
  // Fire the arrival events just scheduled at `ta`.
  advance_cells_to(ta);
}

void ShardedDriver::route_pending_until(double t) {
  if (pending_.empty()) return;
  std::vector<PendingJob> due;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.request.arrival_time <= t) {
      due.push_back(std::move(it->second));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (due.empty()) return;
  std::sort(due.begin(), due.end(),
            [](const PendingJob& a, const PendingJob& b) {
              if (a.request.arrival_time != b.request.arrival_time) {
                return a.request.arrival_time < b.request.arrival_time;
              }
              return a.seq < b.seq;
            });
  size_t i = 0;
  while (i < due.size()) {
    const double ta = due[i].request.arrival_time;
    size_t j = i;
    while (j < due.size() && due[j].request.arrival_time == ta) ++j;
    route_batch(ta, std::vector<PendingJob>(
                        std::make_move_iterator(due.begin() + i),
                        std::make_move_iterator(due.begin() + j)));
    i = j;
  }
}

void ShardedDriver::advance_to(double t) {
  if (delegate_) {
    cells_[0].driver->advance_to(t);
    return;
  }
  GTS_DCHECK(t >= now_ - 1e-9, "advance into the past: t=", t,
             " now=", now_);
  route_pending_until(t);
  advance_cells_to(t);
  if (t > now_) now_ = t;
}

double ShardedDriver::advance_all() {
  if (delegate_) return cells_[0].driver->advance_all();
  route_pending_until(std::numeric_limits<double>::infinity());
  const auto run_cell = [this](int i) {
    cells_[static_cast<size_t>(i)].driver->advance_all();
  };
  if (pool_ && !obs::explain_enabled()) {
    util::parallel_for(*pool_, static_cast<int>(cells_.size()), run_cell);
  } else {
    for (int i = 0; i < static_cast<int>(cells_.size()); ++i) run_cell(i);
  }
  for (const Cell& cell : cells_) {
    now_ = std::max(now_, cell.driver->now());
  }
  // Sync straggler cell clocks so every cell reads the facade time.
  advance_cells_to(now_);
  return now_;
}

void ShardedDriver::checkpoint_progress() {
  for (const Cell& cell : cells_) cell.driver->checkpoint_progress();
}

bool ShardedDriver::idle() const {
  if (delegate_) return cells_[0].driver->idle();
  if (!pending_.empty()) return false;
  for (const Cell& cell : cells_) {
    if (!cell.driver->idle()) return false;
  }
  return true;
}

double ShardedDriver::now() const {
  if (delegate_) return cells_[0].driver->now();
  return now_;
}

int ShardedDriver::queue_depth() const {
  int depth = 0;
  for (const Cell& cell : cells_) depth += cell.driver->queue_depth();
  return depth;
}

int ShardedDriver::pending_count() const {
  if (delegate_) return cells_[0].driver->pending_count();
  // A routed arrival whose timestamp equals the cell clock has not fired
  // yet — it is pending inside the cell driver, not the facade.
  int count = static_cast<int>(pending_.size());
  for (const Cell& cell : cells_) count += cell.driver->pending_count();
  return count;
}

std::uint64_t ShardedDriver::capacity_version() const {
  std::uint64_t version = 0;
  for (const Cell& cell : cells_) version += cell.driver->capacity_version();
  return version;
}

std::uint64_t ShardedDriver::allocation_version() const {
  std::uint64_t version = 0;
  for (const Cell& cell : cells_) {
    version += cell.driver->allocation_version();
  }
  return version;
}

int ShardedDriver::running_job_count() const {
  int count = 0;
  for (const Cell& cell : cells_) count += cell.driver->running_job_count();
  return count;
}

int ShardedDriver::free_gpu_count() const {
  int count = 0;
  for (const Cell& cell : cells_) count += cell.driver->free_gpu_count();
  return count;
}

double ShardedDriver::fragmentation() const {
  if (delegate_) return cells_[0].driver->fragmentation();
  // Socket-weighted mean over cells == the whole-cluster Eq. 5 mean.
  double weighted = 0.0;
  int sockets = 0;
  for (const Cell& cell : cells_) {
    const int cell_sockets = cell.summary->socket_count();
    weighted += cell.driver->fragmentation() * cell_sockets;
    sockets += cell_sockets;
  }
  return sockets == 0 ? 0.0 : weighted / static_cast<double>(sockets);
}

sched::DriverCounters ShardedDriver::counters() const {
  sched::DriverCounters total;
  for (const Cell& cell : cells_) {
    const sched::DriverCounters c = cell.driver->counters();
    total.decision_count += c.decision_count;
    total.decision_seconds += c.decision_seconds;
    total.events += c.events;
    total.rejected_jobs += c.rejected_jobs;
  }
  total.rejected_jobs += rejected_jobs_ + duplicate_jobs_;
  return total;
}

sched::LifecycleSummary ShardedDriver::lifecycle() const {
  sched::LifecycleSummary summary;
  double jct_total = 0.0;
  int jct_count = 0;
  double wait_total = 0.0;
  int wait_count = 0;
  const auto fold = [&](const cluster::Recorder& recorder) {
    for (const cluster::JobRecord& record : recorder.records()) {
      summary.postponements += record.postponements;
      summary.degradations += record.degradation_events;
      if (record.slo_violated()) ++summary.slo_violations;
      const double slowdown = record.jct_slowdown();
      if (slowdown >= 0.0) {
        jct_total += slowdown;
        ++jct_count;
      }
      if (record.placed()) {
        wait_total += record.waiting_time();
        ++wait_count;
      }
    }
  };
  fold(local_recorder_);
  for (const Cell& cell : cells_) fold(cell.driver->recorder());
  if (jct_count > 0) summary.mean_jct_slowdown = jct_total / jct_count;
  if (wait_count > 0) summary.mean_waiting_time = wait_total / wait_count;
  return summary;
}

std::vector<sched::ShardInfo> ShardedDriver::shard_infos() const {
  if (delegate_) return cells_[0].driver->shard_infos();
  std::vector<sched::ShardInfo> infos;
  infos.reserve(cells_.size());
  for (int s = 0; s < static_cast<int>(cells_.size()); ++s) {
    const Cell& cell = cells_[static_cast<size_t>(s)];
    sched::ShardInfo info;
    info.shard = s;
    info.machines = cell.graph->machine_count();
    info.gpus = cell.graph->gpu_count();
    info.free_gpus = cell.driver->free_gpu_count();
    info.running = cell.driver->running_job_count();
    info.queued = cell.driver->queue_depth();
    info.fragmentation = cell.driver->fragmentation();
    info.decisions = cell.driver->report().decision_count;
    for (const cluster::JobRecord& record :
         cell.driver->recorder().records()) {
      if (record.placed()) ++info.placements;
    }
    info.routed = cell.routed;
    infos.push_back(info);
  }
  return infos;
}

sched::RouterTelemetry ShardedDriver::router() const {
  sched::RouterTelemetry telemetry;
  telemetry.routed = routed_;
  telemetry.filtered = filtered_;
  telemetry.exhausted = exhausted_;
  telemetry.route_latency_us = route_latency_us_;
  return telemetry;
}

std::vector<int> ShardedDriver::to_global(const Cell& cell,
                                          std::span<const int> gpus) const {
  std::vector<int> global;
  global.reserve(gpus.size());
  if (!cell.topo) {
    global.assign(gpus.begin(), gpus.end());
    return global;
  }
  for (const int gpu : gpus) {
    global.push_back(cell.topo->gpu_to_global.at(static_cast<size_t>(gpu)));
  }
  return global;
}

cluster::JobRecord ShardedDriver::translated_record(
    const Cell& cell, const cluster::JobRecord& record) const {
  cluster::JobRecord copy = record;
  if (cell.topo && !copy.gpus.empty()) copy.gpus = to_global(cell, copy.gpus);
  return copy;
}

void ShardedDriver::visit_running(
    const std::function<bool(const sched::RunningJobView&)>& fn) const {
  if (delegate_) {
    cells_[0].driver->visit_running(fn);
    return;
  }
  // K-way merge by job id over the cells' id-ordered running maps.
  using Iter = std::map<int, cluster::RunningJob>::const_iterator;
  std::vector<Iter> its;
  std::vector<Iter> ends;
  for (const Cell& cell : cells_) {
    its.push_back(cell.driver->state().running_jobs().begin());
    ends.push_back(cell.driver->state().running_jobs().end());
  }
  std::vector<int> scratch;
  while (true) {
    int best = -1;
    for (int i = 0; i < static_cast<int>(its.size()); ++i) {
      if (its[static_cast<size_t>(i)] == ends[static_cast<size_t>(i)]) {
        continue;
      }
      if (best < 0 || its[static_cast<size_t>(i)]->first <
                          its[static_cast<size_t>(best)]->first) {
        best = i;
      }
    }
    if (best < 0) return;
    const Cell& cell = cells_[static_cast<size_t>(best)];
    const cluster::RunningJob& job = its[static_cast<size_t>(best)]->second;
    sched::RunningJobView view;
    view.request = &job.request;
    scratch = to_global(cell, job.gpus);
    view.gpus = scratch;
    view.start_time = job.start_time;
    view.progress_iterations = job.progress_iterations;
    view.last_update = job.last_update;
    view.rate = job.rate;
    view.placement_utility = job.placement_utility;
    view.noise_factor = job.noise_factor;
    view.p2p = job.p2p;
    if (!fn(view)) return;
    ++its[static_cast<size_t>(best)];
  }
}

void ShardedDriver::visit_waiting(
    const std::function<bool(const sched::WaitingView&)>& fn) const {
  if (delegate_) {
    cells_[0].driver->visit_waiting(fn);
    return;
  }
  struct Item {
    double arrival;
    int id;
    const sched::Driver::QueueEntry* entry;
    const sched::Driver* driver;
    int shard;
  };
  std::vector<Item> items;
  for (size_t shard = 0; shard < cells_.size(); ++shard) {
    const Cell& cell = cells_[shard];
    for (const sched::Driver::QueueEntry& entry : cell.driver->waiting()) {
      items.push_back({entry.request.arrival_time, entry.request.id, &entry,
                       cell.driver.get(), static_cast<int>(shard)});
    }
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  });
  // Per-cell attempted versions are meaningless outside their cell;
  // publish them normalized into the facade's summed version space:
  // "declined at the current capacity" keeps that meaning, anything
  // stale becomes the never-attempted sentinel (a re-offer, which is
  // semantically what a stale version causes anyway).
  const std::uint64_t global_version = capacity_version();
  for (const Item& item : items) {
    sched::WaitingView view;
    view.request = &item.entry->request;
    view.attempted_version =
        item.entry->attempted_version == item.driver->capacity_version()
            ? global_version
            : ~0ULL;
    view.shard = item.shard;
    if (!fn(view)) return;
  }
}

void ShardedDriver::visit_records(
    const std::function<bool(const cluster::JobRecord&)>& fn) const {
  if (delegate_) {
    cells_[0].driver->visit_records(fn);
    return;
  }
  std::vector<cluster::JobRecord> records;
  for (const cluster::JobRecord& record : local_recorder_.records()) {
    records.push_back(record);
  }
  for (const Cell& cell : cells_) {
    for (const cluster::JobRecord& record : cell.driver->recorder().records()) {
      records.push_back(translated_record(cell, record));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const cluster::JobRecord& a, const cluster::JobRecord& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });
  for (const cluster::JobRecord& record : records) {
    if (!fn(record)) return;
  }
}

std::optional<cluster::JobRecord> ShardedDriver::job_record(
    int job_id) const {
  if (delegate_) return cells_[0].driver->job_record(job_id);
  if (const cluster::JobRecord* record = local_recorder_.find(job_id)) {
    return *record;
  }
  const auto it = routed_shard_.find(job_id);
  if (it == routed_shard_.end()) return std::nullopt;
  const Cell& cell = cells_[static_cast<size_t>(it->second)];
  if (const cluster::JobRecord* record =
          cell.driver->recorder().find(job_id)) {
    return translated_record(cell, *record);
  }
  return std::nullopt;
}

std::vector<jobgraph::JobRequest> ShardedDriver::pending_arrivals() const {
  if (delegate_) return cells_[0].driver->pending_arrivals();
  std::vector<jobgraph::JobRequest> pending;
  pending.reserve(pending_.size());
  for (const auto& [id, entry] : pending_) pending.push_back(entry.request);
  // Arrivals already routed into a cell but not yet fired there (their
  // timestamp equals the cell clock) are pending too — a snapshot must
  // carry them or they would vanish across a restore. Requests hold no
  // GPU ids, so no translation is needed; id order matches the facade
  // map's order for re-snapshot byte-identity.
  for (const Cell& cell : cells_) {
    for (jobgraph::JobRequest& request : cell.driver->pending_arrivals()) {
      pending.push_back(std::move(request));
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const jobgraph::JobRequest& a, const jobgraph::JobRequest& b) {
              return a.id < b.id;
            });
  return pending;
}

util::Status ShardedDriver::begin_restore(double now,
                                          std::uint64_t capacity_version) {
  if (delegate_) return cells_[0].driver->begin_restore(now, capacity_version);
  if (now_ != 0.0 || !pending_.empty() || !routed_shard_.empty() ||
      routed_ != 0) {
    return util::Error{
        "restore requires a freshly constructed sharded driver"};
  }
  // The summed version space is preserved by giving cell 0 the whole
  // version and every other cell zero: the facade's capacity_version()
  // then equals the snapshot's, and waiting entries restore against it.
  for (int s = 0; s < static_cast<int>(cells_.size()); ++s) {
    if (auto status = cells_[static_cast<size_t>(s)].driver->begin_restore(
            now, s == 0 ? capacity_version : 0);
        !status) {
      return status;
    }
  }
  now_ = now;
  return util::Status::ok();
}

util::Status ShardedDriver::restore_running(
    const jobgraph::JobRequest& request, const std::vector<int>& gpus,
    double start_time, double progress_iterations, double placement_utility,
    double noise_factor, int postponements) {
  if (delegate_) {
    return cells_[0].driver->restore_running(request, gpus, start_time,
                                             progress_iterations,
                                             placement_utility, noise_factor,
                                             postponements);
  }
  if (gpus.empty()) {
    return util::Error{
        util::fmt("restore job {}: no GPUs in snapshot", request.id)};
  }
  int shard = -1;
  std::vector<int> local;
  local.reserve(gpus.size());
  for (const int gpu : gpus) {
    if (gpu < 0 || gpu >= static_cast<int>(gpu_shard_.size())) {
      return util::Error{util::fmt("restore job {}: GPU {} out of range",
                                   request.id, gpu)};
    }
    const int owner = gpu_shard_[static_cast<size_t>(gpu)];
    if (shard < 0) shard = owner;
    if (owner != shard) {
      return util::Error{util::fmt(
          "restore job {}: placement spans cells {} and {} — snapshot is "
          "incompatible with this shard layout",
          request.id, shard, owner)};
    }
    local.push_back(gpu_local_[static_cast<size_t>(gpu)]);
  }
  Cell& cell = cells_[static_cast<size_t>(shard)];
  if (auto status = cell.driver->restore_running(
          request, local, start_time, progress_iterations, placement_utility,
          noise_factor, postponements);
      !status) {
    return status;
  }
  routed_shard_.emplace(request.id, shard);
  ++cell.routed;
  return util::Status::ok();
}

void ShardedDriver::restore_waiting(const jobgraph::JobRequest& request,
                                    std::uint64_t attempted_version,
                                    int postponements, int shard_hint) {
  if (delegate_) {
    cells_[0].driver->restore_waiting(request, attempted_version,
                                      postponements);
    return;
  }
  int shard = -1;
  if (shard_hint >= 0 && shard_hint < static_cast<int>(cells_.size())) {
    // The snapshot recorded which cell held the job; re-queue it there so
    // the continuation replays the original run exactly. Routing is a
    // function of arrival-time state, which a restore cannot reproduce.
    shard = shard_hint;
  } else {
    // Older snapshot (or a different shard layout): re-route against the
    // restored occupancy — running jobs restore first, so the summaries
    // are current. No router telemetry: this is reconstruction.
    std::vector<ShardCandidate> candidates;
    candidates.reserve(cells_.size());
    for (const Cell& cell : cells_) {
      candidates.push_back(
          {cell.summary.get(), cell.graph, cell.driver->queue_depth()});
    }
    const RouteDecision decision = route_job(request, candidates, model_);
    shard = decision.shard >= 0 ? decision.shard : 0;
  }
  Cell& cell = cells_[static_cast<size_t>(shard)];
  const std::uint64_t local_version =
      attempted_version == capacity_version()
          ? cell.driver->capacity_version()
          : ~0ULL;
  cell.driver->restore_waiting(request, local_version, postponements);
  routed_shard_.emplace(request.id, shard);
  ++cell.routed;
}

util::Status ShardedDriver::finish_restore() {
  for (const Cell& cell : cells_) {
    if (auto status = cell.driver->finish_restore(); !status) return status;
  }
  return util::Status::ok();
}

util::Status ShardedDriver::validate() const {
  for (const Cell& cell : cells_) {
    if (auto status = cell.driver->validate(); !status) return status;
  }
  return util::Status::ok();
}

sched::DriverReport ShardedDriver::merged_report() const {
  sched::DriverReport report;
  for (const Cell& cell : cells_) {
    const sched::DriverReport& r = cell.driver->report();
    report.decision_seconds += r.decision_seconds;
    report.decision_count += r.decision_count;
    report.decision_latency_us.merge(r.decision_latency_us);
    report.advance_seconds += r.advance_seconds;
    report.advance_count += r.advance_count;
    report.advance_latency_us.merge(r.advance_latency_us);
    report.events += r.events;
    report.rejected_jobs += r.rejected_jobs;
  }
  report.rejected_jobs += rejected_jobs_ + duplicate_jobs_;
  std::vector<cluster::JobRecord> records;
  visit_records([&records](const cluster::JobRecord& record) {
    records.push_back(record);
    return true;
  });
  for (cluster::JobRecord& record : records) {
    report.recorder.import_record(std::move(record));
  }
  report.end_time = report.recorder.makespan();
  return report;
}

sched::DriverReport ShardedDriver::run(
    std::vector<jobgraph::JobRequest> jobs) {
  if (delegate_) return cells_[0].driver->run(std::move(jobs));
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const jobgraph::JobRequest& a,
                      const jobgraph::JobRequest& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  for (const jobgraph::JobRequest& job : jobs) {
    if (submit(job) == sched::SubmitResult::kDuplicate) ++duplicate_jobs_;
  }
  advance_all();
  return merged_report();
}

}  // namespace gts::shard
