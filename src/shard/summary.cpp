#include "shard/summary.hpp"

#include <algorithm>
#include <cmath>

#include "check/check.hpp"
#include "sched/driver_api.hpp"

namespace gts::shard {

CellSummary::CellSummary(const topo::TopologyGraph& cell) {
  total_gpus_ = cell.gpu_count();
  free_total_ = total_gpus_;
  const int machines = cell.machine_count();
  machine_free_.assign(static_cast<size_t>(machines), 0);
  gpu_machine_.resize(static_cast<size_t>(total_gpus_));
  gpu_socket_slot_.resize(static_cast<size_t>(total_gpus_));

  // Flat socket slots: machine-major, socket-minor.
  int max_machine_gpus = 0;
  int max_socket_gpus = 0;
  for (int m = 0; m < machines; ++m) {
    const int sockets = cell.sockets_of_machine(m);
    for (int s = 0; s < sockets; ++s) {
      const std::vector<int>& gpus = cell.gpus_of_socket(m, s);
      const int slot = static_cast<int>(socket_free_.size());
      socket_free_.push_back(static_cast<int>(gpus.size()));
      socket_inv_size_.push_back(
          gpus.empty() ? 0.0 : 1.0 / static_cast<double>(gpus.size()));
      max_socket_gpus = std::max(max_socket_gpus,
                                 static_cast<int>(gpus.size()));
      for (const int gpu : gpus) {
        gpu_socket_slot_[static_cast<size_t>(gpu)] = slot;
        gpu_machine_[static_cast<size_t>(gpu)] = m;
        ++machine_free_[static_cast<size_t>(m)];
      }
    }
    max_machine_gpus =
        std::max(max_machine_gpus, machine_free_[static_cast<size_t>(m)]);
  }
  machines_with_free_ = machines;
  frag_sum_ = 0.0;
  for (size_t slot = 0; slot < socket_free_.size(); ++slot) {
    if (socket_free_[slot] > 0) frag_sum_ += 1.0;
  }

  machine_hist_.assign(static_cast<size_t>(max_machine_gpus) + 1, 0);
  for (const int free : machine_free_) {
    ++machine_hist_[static_cast<size_t>(free)];
  }
  socket_hist_.assign(static_cast<size_t>(max_socket_gpus) + 1, 0);
  for (const int free : socket_free_) {
    ++socket_hist_[static_cast<size_t>(free)];
  }
}

void CellSummary::bump(std::vector<int>& hist, int from, int to) {
  --hist[static_cast<size_t>(from)];
  ++hist[static_cast<size_t>(to)];
}

void CellSummary::on_allocation(std::span<const int> gpus, bool allocated) {
  const int delta = allocated ? -1 : 1;
  for (const int gpu : gpus) {
    GTS_DCHECK(gpu >= 0 && gpu < total_gpus_,
               "cell summary: GPU id ", gpu, " out of range");
    const int machine = gpu_machine_[static_cast<size_t>(gpu)];
    const int slot = gpu_socket_slot_[static_cast<size_t>(gpu)];
    int& m_free = machine_free_[static_cast<size_t>(machine)];
    bump(machine_hist_, m_free, m_free + delta);
    if (allocated && m_free == 1) --machines_with_free_;
    if (!allocated && m_free == 0) ++machines_with_free_;
    m_free += delta;
    int& s_free = socket_free_[static_cast<size_t>(slot)];
    bump(socket_hist_, s_free, s_free + delta);
    s_free += delta;
    frag_sum_ += delta * socket_inv_size_[static_cast<size_t>(slot)];
    free_total_ += delta;
  }
}

namespace {

int top_nonzero(const std::vector<int>& hist) {
  for (int k = static_cast<int>(hist.size()) - 1; k > 0; --k) {
    if (hist[static_cast<size_t>(k)] > 0) return k;
  }
  return 0;
}

}  // namespace

int CellSummary::max_free_machine() const { return top_nonzero(machine_hist_); }

int CellSummary::max_free_socket() const { return top_nonzero(socket_hist_); }

double CellSummary::fragmentation() const {
  return socket_free_.empty()
             ? 0.0
             : frag_sum_ / static_cast<double>(socket_free_.size());
}

bool filter_admits(const jobgraph::JobRequest& request,
                   const ShardCandidate& candidate,
                   const perf::DlWorkloadModel& model) {
  if (!sched::job_can_ever_fit(request, *candidate.topology, model)) {
    return false;
  }
  const CellSummary& summary = *candidate.summary;
  if (summary.free_total() < request.num_gpus) return false;
  if (request.profile.single_node &&
      summary.max_free_machine() < request.num_gpus) {
    return false;
  }
  if (request.profile.anti_collocate &&
      summary.machines_with_free() < request.num_gpus) {
    return false;
  }
  return true;
}

int score_shard(const jobgraph::JobRequest& request,
                const ShardCandidate& candidate) {
  const CellSummary& summary = *candidate.summary;
  // Packing tier: prefer shards that can keep the job's communication
  // local (socket > machine > spanning) — the same ordering TOPO-AWARE's
  // utility rewards, estimated from aggregates alone.
  int score = 10;
  if (summary.max_free_socket() >= request.num_gpus) {
    score = 40;
  } else if (summary.max_free_machine() >= request.num_gpus) {
    score = 25;
  }
  if (summary.total_gpus() > 0) {
    score += static_cast<int>(std::lround(
        30.0 * static_cast<double>(summary.free_total()) /
        static_cast<double>(summary.total_gpus())));
  }
  score += std::max(0, 20 - 2 * candidate.queue_depth);
  score += static_cast<int>(std::lround(10.0 * summary.fragmentation()));
  return std::clamp(score, 0, 100);
}

RouteDecision route_job(const jobgraph::JobRequest& request,
                        std::span<const ShardCandidate> candidates,
                        const perf::DlWorkloadModel& model) {
  RouteDecision decision;
  int best_free = -1;  // fallback: ever-fitting shard with most free GPUs
  int fallback = -1;
  for (int shard = 0; shard < static_cast<int>(candidates.size()); ++shard) {
    const ShardCandidate& candidate = candidates[static_cast<size_t>(shard)];
    if (!filter_admits(request, candidate, model)) {
      ++decision.filtered;
      if (sched::job_can_ever_fit(request, *candidate.topology, model) &&
          candidate.summary->free_total() > best_free) {
        best_free = candidate.summary->free_total();
        fallback = shard;
      }
      continue;
    }
    const int score = score_shard(request, candidate);
    if (score > decision.score || decision.shard < 0) {
      decision.shard = shard;
      decision.score = score;
    }
  }
  if (decision.shard < 0 && fallback >= 0) {
    decision.shard = fallback;
    decision.score = 0;
    decision.exhausted = true;
  }
  return decision;
}

}  // namespace gts::shard
