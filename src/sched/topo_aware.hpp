// The paper's topology-aware placement algorithm (Section 4.4).
//
// TOPO-AWARE and TOPO-AWARE-P share the same placement machinery — host
// filtering, then the DRB mapper (Algorithms 2/3) driven by the utility
// model — and differ only in the postponement rule: TOPO-AWARE-P declines
// placements whose utility falls below the job's min_utility threshold
// (out-of-order execution; the job waits for a better allocation), while
// TOPO-AWARE always places when resources suffice.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "partition/drb.hpp"
#include "sched/placement_cache_key.hpp"
#include "sched/scheduler.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace gts::sched {

/// Counters of the memoized placement-evaluation cache (Section 5.5.3
/// overhead: repeated DRB/FM evaluations of identical cluster states are
/// the hot path at scale).
struct PlacementCacheStats {
  long long lookups = 0;
  long long hits = 0;
  long long invalidations = 0;  // cache flushes on allocation/release

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Maps `request` onto the `available` GPUs with the utility-driven DRB
/// (Algorithms 2/3) and evaluates the resulting placement. The building
/// block behind TopoAwareScheduler and external integrations (the
/// Kubernetes shim); `stats`, when given, accumulates DRB counters.
std::optional<Placement> drb_place(const jobgraph::JobRequest& request,
                                   const std::vector<int>& available,
                                   const cluster::ClusterState& state,
                                   const UtilityModel& utility,
                                   partition::DrbStats* stats = nullptr);

class TopoAwareScheduler final : public Scheduler {
 public:
  TopoAwareScheduler(UtilityWeights weights, bool postpone)
      : utility_(weights), postpone_(postpone) {}

  /// Above this machine count, single-node jobs use the scalable placement
  /// path: candidate machines are pre-scored cheaply (pack availability,
  /// co-runner count, free capacity) and only the best `candidate_limit`
  /// run the full DRB + utility evaluation. Below it, one DRB runs over
  /// the whole filtered GPU set exactly as in Algorithm 1.
  int direct_drb_machine_limit = 4;
  int candidate_limit = 16;

  std::string name() const override {
    return postpone_ ? "TOPO-AWARE-P" : "TOPO-AWARE";
  }

  std::optional<Placement> place(const jobgraph::JobRequest& request,
                                 const cluster::ClusterState& state) override;

  const UtilityModel& utility_model() const noexcept { return utility_; }

  /// Cumulative DRB statistics (for the Section 5.5.3 overhead analysis).
  /// Cache hits skip the DRB entirely and do not accumulate here.
  const partition::DrbStats& drb_stats() const noexcept { return stats_; }

  /// Memoized placement evaluation. Within one allocation epoch of the
  /// cluster (no place/remove since), the DRB + utility evaluation of a
  /// given (available-GPU set, job shape) is a pure function, and one
  /// scheduling pass at scale evaluates many identical-shaped queued jobs
  /// against the same free sets. The cache memoizes map_onto() on exactly
  /// that key and flushes whenever ClusterState::allocation_version()
  /// moves (any allocation or release). On by default; decisions are
  /// bit-identical with the cache off (tests/cache_test.cpp).
  void set_placement_cache_enabled(bool enabled) noexcept {
    const util::SerialGuard guard(cache_serial_);
    cache_enabled_ = enabled;
    if (!enabled) {
      cache_.clear();
      string_cache_.clear();
    }
  }
  bool placement_cache_enabled() const noexcept {
    const util::SerialGuard guard(cache_serial_);
    return cache_enabled_;
  }
  PlacementCacheStats cache_stats() const noexcept {
    const util::SerialGuard guard(cache_serial_);
    return cache_stats_;
  }

  /// Test seam: key the cache by the legacy byte-string serialization
  /// instead of the 128-bit FNV-1a key. The equivalence suite runs the
  /// same trace in both modes and asserts byte-identical decisions.
  void set_string_cache_keys_for_test(bool enabled) noexcept {
    const util::SerialGuard guard(cache_serial_);
    string_keys_for_test_ = enabled;
    cache_.clear();
    string_cache_.clear();
  }

  /// Parallel candidate scoring (DESIGN.md §17): fan the per-candidate
  /// DRB + utility evaluations of place_on_best_machine() out across a
  /// private worker pool. `threads` > 0 sizes the pool, < 0 uses all
  /// cores, 0 restores the serial oracle path. Decisions, explain output
  /// and cache counters stay byte-identical to serial: cache probes and
  /// all reduction/bookkeeping run on the decision thread in candidate
  /// order, workers only compute independent (candidate -> placement)
  /// evaluations with their own DrbStats and thread-local FmScratch.
  void set_parallel_scoring(int threads) override;
  /// Worker count of the scoring pool; 0 when scoring serially.
  int scoring_threads() const noexcept {
    const util::SerialGuard guard(cache_serial_);
    return scoring_pool_ == nullptr ? 0 : scoring_pool_->thread_count();
  }

  /// Test seam for the CI negative self-test: make the parallel path's
  /// reduction keep the LAST maximum instead of the first. On clusters
  /// with utility ties between candidate machines this diverges from the
  /// serial oracle, and the differential harness must go red — proving it
  /// can actually detect a broken reduction order.
  void set_nondeterministic_reduction_for_test(bool enabled) noexcept {
    const util::SerialGuard guard(cache_serial_);
    nondeterministic_reduction_for_test_ = enabled;
  }

 private:
  std::optional<Placement> map_onto(const jobgraph::JobRequest& request,
                                    const std::vector<int>& available,
                                    const cluster::ClusterState& state)
      GTS_REQUIRES(cache_serial_);
  std::optional<Placement> place_on_best_machine(
      const jobgraph::JobRequest& request,
      const cluster::ClusterState& state) GTS_REQUIRES(cache_serial_);
  /// Flushes the cache when the (state instance, allocation version)
  /// epoch moved; shared by the serial and parallel scoring paths.
  void refresh_cache_epoch(const cluster::ClusterState& state)
      GTS_REQUIRES(cache_serial_);

  UtilityModel utility_;
  bool postpone_;
  partition::DrbStats stats_;

  /// A mapped placement (or a proven failure) for one cache key; the SLO
  /// `satisfied` bit is recomputed per request from its min_utility.
  struct CacheEntry {
    bool mapped = false;
    std::vector<int> gpus;
    double utility = 0.0;
  };

  /// Replays a cache entry as a fresh placement decision, updating hit
  /// counters and the explain candidate list.
  std::optional<Placement> replay_cache_entry(
      const CacheEntry& entry, const jobgraph::JobRequest& request)
      GTS_REQUIRES(cache_serial_);

  // Replica-confinement role (DESIGN.md §16.2): the placement cache is
  // private to one scheduler replica and is accessed without locking.
  // The sweep runner gives each worker thread its own scheduler, so the
  // role is never contended today; annotating it documents the contract
  // and turns any future cross-thread sharing of one replica (e.g. the
  // ROADMAP's sharded scheduling) into a compile-time error instead of a
  // data race.
  mutable util::SerialCapability cache_serial_;
  bool cache_enabled_ GTS_GUARDED_BY(cache_serial_) = true;
  bool string_keys_for_test_ GTS_GUARDED_BY(cache_serial_) = false;
  std::unordered_map<PlacementCacheKey, CacheEntry, PlacementCacheKeyHash>
      cache_ GTS_GUARDED_BY(cache_serial_);
  std::unordered_map<std::string, CacheEntry> string_cache_
      GTS_GUARDED_BY(cache_serial_);  // test oracle
  std::uint64_t cache_state_id_ GTS_GUARDED_BY(cache_serial_) =
      0;  // ClusterState::instance_id (0: none)
  std::uint64_t cache_version_ GTS_GUARDED_BY(cache_serial_) = ~0ULL;
  PlacementCacheStats cache_stats_ GTS_GUARDED_BY(cache_serial_);
  /// Scoring pool (null = serial). Owned and driven exclusively by the
  /// decision thread; workers never touch scheduler state — they write
  /// into per-candidate slots local to one place_on_best_machine() call.
  std::unique_ptr<util::ThreadPool> scoring_pool_
      GTS_GUARDED_BY(cache_serial_);
  bool nondeterministic_reduction_for_test_ GTS_GUARDED_BY(cache_serial_) =
      false;
};

}  // namespace gts::sched
