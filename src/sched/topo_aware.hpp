// The paper's topology-aware placement algorithm (Section 4.4).
//
// TOPO-AWARE and TOPO-AWARE-P share the same placement machinery — host
// filtering, then the DRB mapper (Algorithms 2/3) driven by the utility
// model — and differ only in the postponement rule: TOPO-AWARE-P declines
// placements whose utility falls below the job's min_utility threshold
// (out-of-order execution; the job waits for a better allocation), while
// TOPO-AWARE always places when resources suffice.
#pragma once

#include "partition/drb.hpp"
#include "sched/scheduler.hpp"

namespace gts::sched {

/// Maps `request` onto the `available` GPUs with the utility-driven DRB
/// (Algorithms 2/3) and evaluates the resulting placement. The building
/// block behind TopoAwareScheduler and external integrations (the
/// Kubernetes shim); `stats`, when given, accumulates DRB counters.
std::optional<Placement> drb_place(const jobgraph::JobRequest& request,
                                   const std::vector<int>& available,
                                   const cluster::ClusterState& state,
                                   const UtilityModel& utility,
                                   partition::DrbStats* stats = nullptr);

class TopoAwareScheduler final : public Scheduler {
 public:
  TopoAwareScheduler(UtilityWeights weights, bool postpone)
      : utility_(weights), postpone_(postpone) {}

  /// Above this machine count, single-node jobs use the scalable placement
  /// path: candidate machines are pre-scored cheaply (pack availability,
  /// co-runner count, free capacity) and only the best `candidate_limit`
  /// run the full DRB + utility evaluation. Below it, one DRB runs over
  /// the whole filtered GPU set exactly as in Algorithm 1.
  int direct_drb_machine_limit = 4;
  int candidate_limit = 16;

  std::string name() const override {
    return postpone_ ? "TOPO-AWARE-P" : "TOPO-AWARE";
  }

  std::optional<Placement> place(const jobgraph::JobRequest& request,
                                 const cluster::ClusterState& state) override;

  const UtilityModel& utility_model() const noexcept { return utility_; }

  /// Cumulative DRB statistics (for the Section 5.5.3 overhead analysis).
  const partition::DrbStats& drb_stats() const noexcept { return stats_; }

 private:
  std::optional<Placement> map_onto(const jobgraph::JobRequest& request,
                                    const std::vector<int>& available,
                                    const cluster::ClusterState& state);
  std::optional<Placement> place_on_best_machine(
      const jobgraph::JobRequest& request,
      const cluster::ClusterState& state);

  UtilityModel utility_;
  bool postpone_;
  partition::DrbStats stats_;
};

}  // namespace gts::sched
