#include "sched/greedy.hpp"

#include <algorithm>
#include <limits>

#include "obs/explain.hpp"
#include "obs/trace.hpp"

namespace gts::sched {

namespace {

/// Machines able to host the whole job, honoring the single-node
/// constraint; for multi-node-capable jobs a single machine is still
/// preferred, falling back to the global free list.
std::optional<Placement> place_on_machine_gpus(std::vector<int> gpus,
                                               int num_gpus) {
  if (static_cast<int>(gpus.size()) < num_gpus) return std::nullopt;
  gpus.resize(static_cast<size_t>(num_gpus));
  Placement placement;
  placement.gpus = std::move(gpus);
  if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
    obs::ExplainCandidate candidate;
    candidate.gpus = placement.gpus;
    candidate.source = "greedy";
    scope->add_candidate(std::move(candidate));
  }
  return placement;
}

}  // namespace

std::optional<Placement> FcfsScheduler::place(
    const jobgraph::JobRequest& request, const cluster::ClusterState& state) {
  GTS_TRACE_SPAN(obs::kSched, "fcfs.place");
  const topo::TopologyGraph& topology = state.topology();
  // First machine that fits, lowest GPU ids first.
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    std::vector<int> free = state.free_gpus_of_machine(machine);
    std::sort(free.begin(), free.end());
    if (auto placement = place_on_machine_gpus(std::move(free),
                                               request.num_gpus)) {
      return placement;
    }
  }
  if (!request.profile.single_node) {
    std::vector<int> free = state.free_gpus();
    std::sort(free.begin(), free.end());
    return place_on_machine_gpus(std::move(free), request.num_gpus);
  }
  return std::nullopt;
}

std::optional<Placement> BestFitScheduler::place(
    const jobgraph::JobRequest& request, const cluster::ClusterState& state) {
  GTS_TRACE_SPAN(obs::kSched, "bestfit.place");
  const topo::TopologyGraph& topology = state.topology();

  // Tightest machine that fits.
  int best_machine = -1;
  int best_free = std::numeric_limits<int>::max();
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    const int free =
        static_cast<int>(state.free_gpus_of_machine(machine).size());
    if (free >= request.num_gpus && free < best_free) {
      best_free = free;
      best_machine = machine;
    }
  }
  if (best_machine < 0) {
    if (!request.profile.single_node) {
      std::vector<int> free = state.free_gpus();
      std::sort(free.begin(), free.end());
      return place_on_machine_gpus(std::move(free), request.num_gpus);
    }
    return std::nullopt;
  }

  // Inside the machine: GPUs from the most-used sockets first (bin
  // packing over domains), ties by socket id then GPU id.
  struct SocketLoad {
    int socket;
    int free;
    std::vector<int> free_gpus;
  };
  std::vector<SocketLoad> sockets;
  const int socket_count = topology.sockets_of_machine(best_machine);
  for (int socket = 0; socket < socket_count; ++socket) {
    SocketLoad load{socket, 0, {}};
    for (const int gpu : topology.gpus_of_socket(best_machine, socket)) {
      if (state.gpu_free(gpu)) {
        load.free_gpus.push_back(gpu);
      }
    }
    load.free = static_cast<int>(load.free_gpus.size());
    if (load.free > 0) sockets.push_back(std::move(load));
  }
  std::stable_sort(sockets.begin(), sockets.end(),
                   [](const SocketLoad& a, const SocketLoad& b) {
                     return a.free < b.free;  // most used (fewest free) first
                   });
  std::vector<int> gpus;
  for (const SocketLoad& load : sockets) {
    for (const int gpu : load.free_gpus) {
      if (static_cast<int>(gpus.size()) >= request.num_gpus) break;
      gpus.push_back(gpu);
    }
  }
  return place_on_machine_gpus(std::move(gpus), request.num_gpus);
}

}  // namespace gts::sched
