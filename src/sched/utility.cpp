#include "sched/utility.hpp"

#include <algorithm>
#include <cmath>
#include "perf/profile.hpp"

namespace gts::sched {

namespace {

constexpr double kFloor = 1e-3;  // keeps log terms finite

double clamp01(double v) { return std::clamp(v, kFloor, 1.0); }

/// Adds the candidate job's communication flows onto a flow vector.
void add_candidate_flows(perf::LinkFlows& flows,
                         const jobgraph::JobRequest& request,
                         std::span<const int> gpus,
                         const topo::TopologyGraph& topology) {
  for (const jobgraph::CommEdge& edge : request.comm_graph.edges()) {
    const int gpu_a = gpus[static_cast<size_t>(edge.a)];
    const int gpu_b = gpus[static_cast<size_t>(edge.b)];
    for (const topo::LinkId link : topology.gpu_path(gpu_a, gpu_b).links) {
      ++flows[static_cast<size_t>(link)];
    }
  }
}

}  // namespace

double normalized_comm_weight(const jobgraph::JobRequest& request) {
  if (request.comm_graph.edge_count() == 0) return 0.0;
  double max_weight = 0.0;
  for (const jobgraph::CommEdge& edge : request.comm_graph.edges()) {
    max_weight = std::max(max_weight, edge.weight);
  }
  // Section 5.1 uses weights in [1, 4]; anything above 4 saturates.
  return std::clamp(max_weight / 4.0, 0.0, 1.0);
}

double UtilityModel::comm_cost(const topo::TopologyGraph& topology,
                               std::span<const int> gpus) {
  double total = 0.0;
  for (size_t i = 0; i < gpus.size(); ++i) {
    for (size_t j = i + 1; j < gpus.size(); ++j) {
      total += topology.gpu_distance(gpus[i], gpus[j]);
    }
  }
  return total;
}

double UtilityModel::best_comm_cost(const topo::TopologyGraph& topology,
                                    int num_gpus) {
  const std::vector<int> pack = perf::pack_placement(topology, num_gpus);
  if (static_cast<int>(pack.size()) < num_gpus) return 0.0;
  return comm_cost(topology, pack);
}

double UtilityModel::interference(const jobgraph::JobRequest& request,
                                  std::span<const int> gpus,
                                  const cluster::ClusterState& state) const {
  // Eq. 4: I = sum_{j in running+candidate} solo(j)/colloc(j) / (n+1).
  const topo::TopologyGraph& topology = state.topology();
  double ratio_sum = 0.0;
  int count = 0;

  // Candidate's own ratio under the hypothetical placement.
  {
    const double best = state.solo_iteration_time(request);
    const double predicted = state.predict_iteration(request, gpus).total_s;
    ratio_sum += (best > 0.0 && predicted > 0.0)
                     ? std::min(1.0, best / predicted)
                     : 1.0;
    ++count;
  }

  // Each running job that shares a machine with the candidate placement
  // (taken from the per-machine index so cost scales with touched
  // machines, not cluster size).
  const std::vector<int> machines = state.machines_of(gpus);
  perf::LinkFlows adjusted = state.link_flows();
  add_candidate_flows(adjusted, request, gpus, topology);

  // (machine, socket) pairs the candidate touches, as a sorted vector —
  // the sets involved are tiny, so binary search beats a node-based set.
  std::vector<std::pair<int, int>> candidate_sockets;
  candidate_sockets.reserve(gpus.size());
  for (const int gpu : gpus) {
    candidate_sockets.emplace_back(topology.machine_of_gpu(gpu),
                                   topology.socket_of_gpu(gpu));
  }
  std::sort(candidate_sockets.begin(), candidate_sockets.end());
  candidate_sockets.erase(
      std::unique(candidate_sockets.begin(), candidate_sockets.end()),
      candidate_sockets.end());

  std::vector<int> affected_ids;
  for (const int machine : machines) {
    const std::vector<int>& ids = state.jobs_of_machine(machine);
    affected_ids.insert(affected_ids.end(), ids.begin(), ids.end());
  }
  std::sort(affected_ids.begin(), affected_ids.end());
  affected_ids.erase(std::unique(affected_ids.begin(), affected_ids.end()),
                     affected_ids.end());
  for (const int id : affected_ids) {
    const cluster::RunningJob& job = state.running_jobs().at(id);
    // Foreign flows for this job = all flows + candidate - its own. Its
    // own contribution (condensed at placement into flow_link_counts) is
    // subtracted on read inside the model (perf::FlowDelta) — the same
    // integer counts the previous in-place twiddling produced, without
    // mutating the shared vector per co-runner.
    // Its co-runners now include the candidate.
    std::vector<perf::CoRunner> co = state.co_runners(job.gpus, id);
    const bool candidate_shares_socket = std::any_of(
        job.gpus.begin(), job.gpus.end(), [&](int gpu) {
          return std::binary_search(
              candidate_sockets.begin(), candidate_sockets.end(),
              std::pair<int, int>{topology.machine_of_gpu(gpu),
                                  topology.socket_of_gpu(gpu)});
        });
    co.push_back({request.profile.batch, candidate_shares_socket});

    const double solo = job.solo_iteration_s;
    const double colloc =
        state.model()
            .iteration(job.request, job.gpus, topology, &adjusted, co,
                       job.flow_link_counts)
            .total_s;
    ratio_sum += (solo > 0.0 && colloc > 0.0)
                     ? std::min(1.0, solo / colloc)
                     : 1.0;
    ++count;
  }
  return count == 0 ? 1.0 : ratio_sum / count;
}

double UtilityModel::combine(double u_comm, double u_interference,
                             double u_frag, double comm_weight) const {
  const double wc = weights_.alpha_cc * comm_weight;
  const double wb = weights_.alpha_b;
  const double wd = weights_.alpha_d;
  const double denom = wc + wb + wd;
  if (denom <= 0.0) return 1.0;
  const double log_utility =
      (wc * std::log(clamp01(u_comm)) + wb * std::log(clamp01(u_interference)) +
       wd * std::log(clamp01(u_frag))) /
      denom;
  return std::exp(log_utility);
}

UtilityBreakdown UtilityModel::evaluate(
    const jobgraph::JobRequest& request, std::span<const int> gpus,
    const cluster::ClusterState& state) const {
  const topo::TopologyGraph& topology = state.topology();
  UtilityBreakdown out;
  out.comm_weight = normalized_comm_weight(request);

  out.comm_cost = comm_cost(topology, gpus);
  const double best = best_comm_cost(topology, request.num_gpus);
  out.comm_utility =
      (out.comm_cost > 0.0 && best > 0.0) ? best / out.comm_cost : 1.0;

  out.interference = interference(request, gpus, state);

  // Eq. 5 over the sockets of the machines the placement touches, after
  // the hypothetical allocation.
  {
    double free_fraction = 0.0;
    int sockets = 0;
    for (const int machine : state.machines_of(gpus)) {
      // One lookup per machine instead of one per socket.
      const std::vector<std::vector<int>>& socket_lists =
          topology.socket_gpu_lists(machine);
      const size_t socket_count =
          std::min(socket_lists.size(),
                   static_cast<size_t>(topology.sockets_of_machine(machine)));
      for (size_t socket = 0; socket < socket_count; ++socket) {
        const std::vector<int>& socket_gpus = socket_lists[socket];
        if (socket_gpus.empty()) continue;
        int free = 0;
        for (const int g : socket_gpus) {
          const bool taken =
              std::find(gpus.begin(), gpus.end(), g) != gpus.end();
          if (state.gpu_free(g) && !taken) ++free;
        }
        free_fraction += static_cast<double>(free) /
                         static_cast<double>(socket_gpus.size());
        ++sockets;
      }
    }
    out.frag_omega = sockets == 0 ? 0.0 : free_fraction / sockets;
    out.frag_utility = 1.0 - out.frag_omega;
  }

  out.utility = combine(out.comm_utility, out.interference, out.frag_utility,
                        out.comm_weight);

  // Eq. 1 (minimization form) for diagnostics: all terms normalized to
  // their worst case.
  {
    const size_t n = gpus.size();
    const double pairs = static_cast<double>(n * (n - 1) / 2);
    const double worst_cost = pairs * topology.max_gpu_distance();
    const double t_norm =
        worst_cost > 0.0 ? out.comm_cost / worst_cost : 0.0;
    out.objective = weights_.alpha_cc * t_norm +
                    weights_.alpha_b * (1.0 - out.interference) +
                    weights_.alpha_d * out.frag_omega;
  }
  return out;
}

double UtilityModel::placement_utility(const jobgraph::JobRequest& request,
                                       std::span<const int> gpus,
                                       const cluster::ClusterState& state) const {
  return evaluate(request, gpus, state).utility;
}

}  // namespace gts::sched
