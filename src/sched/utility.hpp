// Objective function and utility (Section 4.3, Eqs. 1-5).
//
// The paper gives the objective as a convex combination of normalized
// communication cost, interference and fragmentation (Eq. 1), and the
// utility as U = alpha_cc/t + alpha_b/I + alpha_d/omega (Eq. 2). Eq. 2 as
// printed is unbounded, while the jobs' minimum-utility thresholds
// (Table 1: 0.3/0.5) and the "Mean Job Utility" plots (Fig. 9) clearly
// live in [0, 1] — the authors' implementation necessarily normalized it.
//
// We implement that normalization explicitly (documented in DESIGN.md):
// each factor becomes a goodness score in (0, 1]:
//     u_comm  = t_best / t          (Eq. 3 cost, reciprocal-normalized)
//     u_int   = I                   (Eq. 4 is already a ratio in (0, 1])
//     u_frag  = 1 - omega           (Eq. 5 over the touched machines,
//                                    post-placement)
// and the utility is the weighted geometric mean (the log-space convex
// combination of the reciprocal terms in Eq. 2):
//     U = exp[(a_cc*w*ln u_comm + a_b*ln u_int + a_d*ln u_frag)
//             / (a_cc*w + a_b + a_d)]
// where w in [0,1] is the job's normalized communication weight — the
// paper normalizes job edge weights during mapping (Section 4.1.1), which
// here makes the comm factor irrelevant for jobs that do not communicate.
#pragma once

#include <span>

#include "cluster/state.hpp"
#include "jobgraph/jobgraph.hpp"
#include "topo/topology.hpp"

namespace gts::sched {

/// Eq. 1 weights; the paper's experiments use equal thirds.
struct UtilityWeights {
  double alpha_cc = 1.0 / 3.0;
  double alpha_b = 1.0 / 3.0;
  double alpha_d = 1.0 / 3.0;
};

struct UtilityBreakdown {
  double comm_cost = 0.0;      // t, Eq. 3
  double comm_utility = 1.0;   // t_best / t
  double interference = 1.0;   // I, Eq. 4
  double frag_omega = 0.0;     // omega, Eq. 5 (touched machines, after)
  double frag_utility = 1.0;   // 1 - omega
  double comm_weight = 0.0;    // w, normalized job comm weight
  double utility = 1.0;        // U in (0, 1]
  double objective = 0.0;      // Eq. 1 (lower is better), for diagnostics
};

class UtilityModel {
 public:
  explicit UtilityModel(UtilityWeights weights = {}) : weights_(weights) {}

  const UtilityWeights& weights() const noexcept { return weights_; }

  /// Eq. 3: sum of pairwise shortest-path distances among `gpus`.
  static double comm_cost(const topo::TopologyGraph& topology,
                          std::span<const int> gpus);

  /// The minimum Eq. 3 cost achievable for `num_gpus` on an empty machine
  /// of this topology (the pack placement).
  static double best_comm_cost(const topo::TopologyGraph& topology,
                               int num_gpus);

  /// Eq. 4: average of solo/collocated completion-time ratios over the
  /// candidate job and every running job its placement would disturb.
  double interference(const jobgraph::JobRequest& request,
                      std::span<const int> gpus,
                      const cluster::ClusterState& state) const;

  /// Full evaluation of a candidate placement.
  UtilityBreakdown evaluate(const jobgraph::JobRequest& request,
                            std::span<const int> gpus,
                            const cluster::ClusterState& state) const;

  /// Shorthand for evaluate(...).utility.
  double placement_utility(const jobgraph::JobRequest& request,
                           std::span<const int> gpus,
                           const cluster::ClusterState& state) const;

  /// Weighted geometric mean combination used by both the placement
  /// utility and the DRB per-task utility.
  double combine(double u_comm, double u_interference, double u_frag,
                 double comm_weight) const;

 private:
  UtilityWeights weights_;
};

/// Normalized communication weight of a job: profile weight (1..4) scaled
/// to [0,1]; zero when the job graph has no edges.
double normalized_comm_weight(const jobgraph::JobRequest& request);

}  // namespace gts::sched
