#include "sched/topo_aware.hpp"

#include <algorithm>
#include <cmath>

#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/task_utility.hpp"

namespace gts::sched {

namespace {

partition::SpanMode span_mode(const jobgraph::JobProfile& profile) {
  if (profile.anti_collocate) return partition::SpanMode::kAntiCollocate;
  if (profile.single_node) return partition::SpanMode::kSingleNode;
  return partition::SpanMode::kPreferPack;
}

}  // namespace

std::optional<Placement> TopoAwareScheduler::place(
    const jobgraph::JobRequest& request, const cluster::ClusterState& state) {
  obs::SpanGuard span(obs::kSched, "topo.place");
  span.arg("job", request.id).arg("gpus", request.num_gpus);
  // Zero-cost role acquisition (DESIGN.md §16.2): asserts single-threaded
  // ownership of the placement cache for the whole decision.
  const util::SerialGuard guard(cache_serial_);
  std::optional<Placement> placement;
  if (request.profile.single_node && !request.profile.anti_collocate &&
      state.topology().machine_count() > direct_drb_machine_limit) {
    placement = place_on_best_machine(request, state);
  } else {
    const std::vector<int> available = filter_hosts(request, state);
    if (static_cast<int>(available.size()) < request.num_gpus) {
      return std::nullopt;
    }
    placement = map_onto(request, available, state);
  }
  if (!placement) return std::nullopt;

  placement->satisfied = placement->utility + 1e-9 >= request.min_utility;
  if (postpone_ && !placement->satisfied) {
    // TOPO-AWARE-P: hold the job for a better allocation (Algorithm 1's
    // postponed list; the Driver re-offers it on the next wakeup).
    return std::nullopt;
  }
  return placement;
}

std::optional<Placement> drb_place(const jobgraph::JobRequest& request,
                                   const std::vector<int>& available,
                                   const cluster::ClusterState& state,
                                   const UtilityModel& utility,
                                   partition::DrbStats* stats) {
  obs::SpanGuard span(obs::kDrb, "drb.map");
  span.arg("tasks", request.num_gpus)
      .arg("available", static_cast<double>(available.size()));
  const TaskUtility callbacks(request, state, utility);
  partition::DrbOptions options;
  options.span = span_mode(request.profile);
  partition::DrbResult result = partition::drb_map(
      request.comm_graph, available, state.topology(), callbacks, options);
  if (stats != nullptr) {
    stats->bipartitions += result.stats.bipartitions;
    stats->fm_passes += result.stats.fm_passes;
    stats->max_depth = std::max(stats->max_depth, result.stats.max_depth);
  }
  span.arg("bipartitions", static_cast<double>(result.stats.bipartitions))
      .arg("depth", static_cast<double>(result.stats.max_depth));
  GTS_METRIC_HISTOGRAM("drb.depth",
                       static_cast<double>(result.stats.max_depth),
                       obs::depth_bounds());
  if (!result.complete) return std::nullopt;

  Placement placement;
  placement.gpus = result.assignment;
  placement.utility = utility.placement_utility(request, placement.gpus, state);
  placement.satisfied = placement.utility + 1e-9 >= request.min_utility;
  if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
    obs::ExplainCandidate candidate;
    candidate.gpus = placement.gpus;
    candidate.terms.utility = placement.utility;
    candidate.source = "drb";
    scope->add_candidate(std::move(candidate));
  }
  return placement;
}

void TopoAwareScheduler::set_parallel_scoring(int threads) {
  const util::SerialGuard guard(cache_serial_);
  if (threads == 0) {
    scoring_pool_.reset();
    return;
  }
  // ThreadPool treats <= 0 as "all cores"; normalize our contract's -1.
  scoring_pool_ =
      std::make_unique<util::ThreadPool>(threads < 0 ? 0 : threads);
}

void TopoAwareScheduler::refresh_cache_epoch(
    const cluster::ClusterState& state) {
  // One cache generation per (state object, allocation epoch): any
  // place/remove changes co-runners, link flows and free sets, all of
  // which feed the utility, so the whole cache is flushed.
  if (cache_state_id_ != state.instance_id() ||
      cache_version_ != state.allocation_version()) {
    if (!cache_.empty() || !string_cache_.empty()) {
      ++cache_stats_.invalidations;
      GTS_METRIC_COUNT("cache.invalidations", 1);
      GTS_TRACE_INSTANT(obs::kCache, "cache.flush");
      cache_.clear();
      string_cache_.clear();
    }
    cache_state_id_ = state.instance_id();
    cache_version_ = state.allocation_version();
  }
}

std::optional<Placement> TopoAwareScheduler::map_onto(
    const jobgraph::JobRequest& request, const std::vector<int>& available,
    const cluster::ClusterState& state) {
  if (!cache_enabled_) {
    return drb_place(request, available, state, utility_, &stats_);
  }

  refresh_cache_epoch(state);

  ++cache_stats_.lookups;
  GTS_METRIC_COUNT("cache.lookups", 1);
  const auto record = [](const std::optional<Placement>& placement) {
    CacheEntry entry;
    entry.mapped = placement.has_value();
    if (placement) {
      entry.gpus = placement->gpus;
      entry.utility = placement->utility;
    }
    return entry;
  };

  if (string_keys_for_test_) {
    const std::string key = string_placement_cache_key(request, available);
    if (const auto it = string_cache_.find(key); it != string_cache_.end()) {
      return replay_cache_entry(it->second, request);
    }
    std::optional<Placement> placement =
        drb_place(request, available, state, utility_, &stats_);
    string_cache_.emplace(key, record(placement));
    return placement;
  }

  const PlacementCacheKey key = hashed_placement_cache_key(request, available);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return replay_cache_entry(it->second, request);
  }
  std::optional<Placement> placement =
      drb_place(request, available, state, utility_, &stats_);
  cache_.emplace(key, record(placement));
  return placement;
}

std::optional<Placement> TopoAwareScheduler::replay_cache_entry(
    const CacheEntry& entry, const jobgraph::JobRequest& request) {
  ++cache_stats_.hits;
  GTS_METRIC_COUNT("cache.hits", 1);
  GTS_TRACE_INSTANT(obs::kCache, "cache.hit", "job", request.id);
  if (!entry.mapped) return std::nullopt;
  Placement placement;
  placement.gpus = entry.gpus;
  placement.utility = entry.utility;
  placement.satisfied = placement.utility + 1e-9 >= request.min_utility;
  if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
    obs::ExplainCandidate candidate;
    candidate.gpus = placement.gpus;
    candidate.terms.utility = placement.utility;
    candidate.source = "cache";
    scope->add_candidate(std::move(candidate));
  }
  return placement;
}

std::optional<Placement> TopoAwareScheduler::place_on_best_machine(
    const jobgraph::JobRequest& request, const cluster::ClusterState& state) {
  const topo::TopologyGraph& topology = state.topology();

  // Cheap pre-score per feasible machine: can the job land on one socket
  // (pack), how many co-runners would interfere, how much capacity is
  // left. Lower is better; ties break on machine id for determinism.
  struct Candidate {
    long long score;
    int machine;
    std::vector<int> free;  // free GPUs, reused by the evaluation pass
  };
  std::vector<Candidate> candidates;
  std::vector<int> socket_free_scratch;
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    // Section 4.3 capacity constraints: GPUs and host memory bandwidth.
    if (!state.host_bw_available(machine,
                                 request.profile.host_bw_demand_gbps)) {
      continue;
    }
    std::vector<int> free = state.free_gpus_of_machine(machine);
    if (static_cast<int>(free.size()) < request.num_gpus) continue;
    socket_free_scratch.assign(
        static_cast<size_t>(topology.sockets_of_machine(machine)) + 1, 0);
    int best_socket_free = 0;
    for (const int gpu : free) {
      const size_t socket = static_cast<size_t>(topology.socket_of_gpu(gpu));
      if (socket >= socket_free_scratch.size()) {
        socket_free_scratch.resize(socket + 1, 0);
      }
      best_socket_free = std::max(best_socket_free, ++socket_free_scratch[socket]);
    }
    const bool can_pack = best_socket_free >= request.num_gpus ||
                          request.num_gpus > 2;  // >2 GPUs spans sockets anyway
    const long long co_runners =
        static_cast<long long>(state.jobs_of_machine(machine).size());
    const long long score = (can_pack ? 0 : 1000000) + co_runners * 100 +
                            static_cast<long long>(free.size());
    candidates.push_back({score, machine, std::move(free)});
  }
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score != b.score ? a.score < b.score
                                        : a.machine < b.machine;
            });
  if (static_cast<int>(candidates.size()) > candidate_limit) {
    candidates.resize(static_cast<size_t>(candidate_limit));
  }

  // Serial oracle path: evaluate candidates one at a time in pre-score
  // order, keeping the FIRST maximum on utility ties (strict `>`). The
  // parallel path below must reproduce this byte for byte.
  if (scoring_pool_ == nullptr || candidates.size() < 2) {
    std::optional<Placement> best;
    for (const Candidate& candidate : candidates) {
      std::optional<Placement> placement =
          map_onto(request, candidate.free, state);
      if (placement) {
        if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
          obs::ExplainCandidate explain;
          explain.gpus = placement->gpus;
          explain.terms.utility = placement->utility;
          explain.source = "best-machine:" + std::to_string(candidate.machine);
          scope->add_candidate(std::move(explain));
        }
        if (!best || placement->utility > best->utility) {
          best = std::move(placement);
        }
      }
    }
    return best;
  }

  // Parallel scoring (DESIGN.md §17). Three phases keep the decision
  // byte-identical to the serial path:
  //
  //   1. probe  (decision thread): cache lookups in candidate order —
  //      hits are resolved from the cache, misses collected;
  //   2. score  (workers): the independent DRB + utility evaluations of
  //      the misses, chunked deterministically. Workers see no scheduler
  //      state: each writes one slot's placement + DrbStats, FmScratch
  //      comes from the worker's thread-local arena, and the thread-local
  //      DecisionScope is null off the decision thread, so explain
  //      entries cannot be emitted out of order;
  //   3. reduce (decision thread): cache inserts, stats folds, explain
  //      replay and the first-maximum reduction, all in candidate order.
  struct Slot {
    const Candidate* candidate = nullptr;
    bool hit = false;
    CacheEntry entry;             // valid when hit
    PlacementCacheKey key;        // hashed-key mode, misses
    std::string string_key;       // string-key oracle mode, misses
    std::optional<Placement> result;  // worker output (miss)
    partition::DrbStats stats;        // worker-local DRB counters (miss)
  };
  std::vector<Slot> slots(candidates.size());
  std::vector<int> misses;
  misses.reserve(candidates.size());
  if (cache_enabled_) refresh_cache_epoch(state);
  for (size_t i = 0; i < candidates.size(); ++i) {
    Slot& slot = slots[i];
    slot.candidate = &candidates[i];
    if (cache_enabled_) {
      ++cache_stats_.lookups;
      GTS_METRIC_COUNT("cache.lookups", 1);
      if (string_keys_for_test_) {
        slot.string_key =
            string_placement_cache_key(request, slot.candidate->free);
        if (const auto it = string_cache_.find(slot.string_key);
            it != string_cache_.end()) {
          slot.hit = true;
          slot.entry = it->second;
        }
      } else {
        slot.key = hashed_placement_cache_key(request, slot.candidate->free);
        if (const auto it = cache_.find(slot.key); it != cache_.end()) {
          slot.hit = true;
          slot.entry = it->second;
        }
      }
    }
    if (!slot.hit) misses.push_back(static_cast<int>(i));
  }

  if (!misses.empty()) {
    // The topology's distance tables are lazily built mutable caches;
    // materialize them on this thread before concurrent readers arrive.
    topology.warm_caches();
    const int miss_count = static_cast<int>(misses.size());
    const int chunk_count = std::min(
        miss_count, std::max(1, 2 * scoring_pool_->thread_count()));
    obs::SpanGuard fan_span(obs::kSched, "sched.parallel_score");
    fan_span.arg("candidates", static_cast<double>(miss_count))
        .arg("chunks", static_cast<double>(chunk_count));
    GTS_METRIC_COUNT("sched.parallel_chunks", chunk_count);
    util::parallel_for(
        *scoring_pool_, chunk_count,
        [&slots, &misses, &request, &state, this, miss_count,
         chunk_count](int chunk) {
          const int begin = chunk * miss_count / chunk_count;
          const int end = (chunk + 1) * miss_count / chunk_count;
          obs::SpanGuard span(obs::kSched, "sched.score_chunk");
          span.arg("chunk", static_cast<double>(chunk))
              .arg("candidates", static_cast<double>(end - begin));
          for (int i = begin; i < end; ++i) {
            Slot& slot = slots[static_cast<size_t>(misses[static_cast<size_t>(i)])];
            slot.result = drb_place(request, slot.candidate->free, state,
                                    utility_, &slot.stats);
          }
        });
  }

  const auto record = [](const std::optional<Placement>& placement) {
    CacheEntry entry;
    entry.mapped = placement.has_value();
    if (placement) {
      entry.gpus = placement->gpus;
      entry.utility = placement->utility;
    }
    return entry;
  };
  std::optional<Placement> best;
  for (Slot& slot : slots) {
    std::optional<Placement> placement;
    if (slot.hit) {
      placement = replay_cache_entry(slot.entry, request);
    } else {
      if (cache_enabled_) {
        if (string_keys_for_test_) {
          string_cache_.emplace(std::move(slot.string_key),
                                record(slot.result));
        } else {
          cache_.emplace(slot.key, record(slot.result));
        }
      }
      stats_.bipartitions += slot.stats.bipartitions;
      stats_.fm_passes += slot.stats.fm_passes;
      stats_.max_depth = std::max(stats_.max_depth, slot.stats.max_depth);
      placement = std::move(slot.result);
      if (placement) {
        // The "drb" explain entry drb_place() would have written had it
        // run on the decision thread, replayed in candidate order.
        if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
          obs::ExplainCandidate candidate;
          candidate.gpus = placement->gpus;
          candidate.terms.utility = placement->utility;
          candidate.source = "drb";
          scope->add_candidate(std::move(candidate));
        }
      }
    }
    if (placement) {
      if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
        obs::ExplainCandidate explain;
        explain.gpus = placement->gpus;
        explain.terms.utility = placement->utility;
        explain.source =
            "best-machine:" + std::to_string(slot.candidate->machine);
        scope->add_candidate(std::move(explain));
      }
      // Strict `>` keeps the FIRST maximum — the serial tie-break. The
      // test seam flips it to `>=` (last maximum) so CI can prove the
      // differential harness catches a broken reduction order.
      const bool better =
          !best || (nondeterministic_reduction_for_test_
                        ? placement->utility >= best->utility
                        : placement->utility > best->utility);
      if (better) best = std::move(placement);
    }
  }
  return best;
}

}  // namespace gts::sched
