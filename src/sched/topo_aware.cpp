#include "sched/topo_aware.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gts::sched {

namespace {

/// Algorithm 3's U(task, Py): evaluates the three utility factors for
/// routing one task to one side of the current physical bipartition, using
/// only information available mid-recursion (side GPU sets and the tasks
/// already routed).
class TaskUtility final : public partition::DrbCallbacks {
 public:
  TaskUtility(const jobgraph::JobRequest& request,
              const cluster::ClusterState& state, const UtilityModel& model)
      : request_(request),
        state_(state),
        model_(model),
        comm_weight_(normalized_comm_weight(request)) {}

  double task_utility(int task, int side,
                      const partition::BipartitionView& view) const override {
    const std::vector<int>& side_gpus = side == 0 ? view.gpus0 : view.gpus1;
    const std::vector<int>& side_tasks = side == 0 ? view.tasks0 : view.tasks1;
    const std::vector<int>& other_gpus = side == 0 ? view.gpus1 : view.gpus0;
    const std::vector<int>& other_tasks = side == 0 ? view.tasks1 : view.tasks0;
    if (side_gpus.empty()) return 0.0;

    const double u_comm =
        comm_utility(task, side_gpus, side_tasks, other_gpus, other_tasks);
    const double u_interference = interference_utility(side_gpus);
    const double u_frag =
        fragmentation_utility(side_gpus, static_cast<int>(side_tasks.size()));
    return model_.combine(u_comm, u_interference, u_frag, comm_weight_);
  }

 private:
  /// getCommCost(): expected distance from `task` to its communication
  /// partners. Same-side partners cost the side's mean internal distance;
  /// cross-side partners the mean distance across the cut; unrouted
  /// partners are optimistically assumed co-located.
  double comm_utility(int task, const std::vector<int>& side_gpus,
                      const std::vector<int>& side_tasks,
                      const std::vector<int>& other_gpus,
                      const std::vector<int>& other_tasks) const {
    double weighted_distance = 0.0;
    double total_weight = 0.0;
    const double d_intra = mean_internal_distance(side_gpus);
    const double d_cross = mean_cross_distance(side_gpus, other_gpus);
    for (const jobgraph::CommEdge& edge : request_.comm_graph.edges()) {
      const int partner =
          edge.a == task ? edge.b : (edge.b == task ? edge.a : -1);
      if (partner < 0) continue;
      const bool on_other =
          std::find(other_tasks.begin(), other_tasks.end(), partner) !=
          other_tasks.end();
      (void)side_tasks;  // same-side and unrouted partners both cost d_intra
      weighted_distance += edge.weight * (on_other ? d_cross : d_intra);
      total_weight += edge.weight;
    }
    if (total_weight <= 0.0) return 1.0;
    const double mean_distance = weighted_distance / total_weight;
    return mean_distance > 0.0 ? std::min(1.0, 1.0 / mean_distance) : 1.0;
  }

  /// getInter(): 1 / predicted co-runner slowdown factor on this side.
  double interference_utility(const std::vector<int>& side_gpus) const {
    const std::vector<perf::CoRunner> co =
        state_.co_runners(side_gpus, request_.id);
    const double factor =
        state_.model().interference_factor(request_.profile.batch, co);
    return factor > 0.0 ? 1.0 / factor : 1.0;
  }

  /// getFragmentation(): Eq. 5 over the machines this side touches, after
  /// hypothetically consuming (routed tasks + this task) GPUs from it.
  double fragmentation_utility(const std::vector<int>& side_gpus,
                               int tasks_already_routed) const {
    const topo::TopologyGraph& topology = state_.topology();
    std::set<int> machines;
    for (const int gpu : side_gpus) {
      machines.insert(topology.machine_of_gpu(gpu));
    }
    int total = 0;
    int free_now = 0;
    for (const int machine : machines) {
      const int socket_count = topology.sockets_of_machine(machine);
      for (int socket = 0; socket < socket_count; ++socket) {
        for (const int gpu : topology.gpus_of_socket(machine, socket)) {
          ++total;
          if (state_.gpu_free(gpu)) ++free_now;
        }
      }
    }
    if (total == 0) return 1.0;
    const int free_after =
        std::max(0, free_now - tasks_already_routed - 1);
    const double omega =
        static_cast<double>(free_after) / static_cast<double>(total);
    return 1.0 - omega;
  }

  double mean_internal_distance(const std::vector<int>& gpus) const {
    if (gpus.size() < 2) return 1.0;  // a lone GPU: best case for peers here
    double total = 0.0;
    int pairs = 0;
    for (size_t i = 0; i < gpus.size(); ++i) {
      for (size_t j = i + 1; j < gpus.size(); ++j) {
        total += state_.topology().gpu_distance(gpus[i], gpus[j]);
        ++pairs;
      }
    }
    return total / pairs;
  }

  double mean_cross_distance(const std::vector<int>& a,
                             const std::vector<int>& b) const {
    if (a.empty() || b.empty()) return 1.0;
    double total = 0.0;
    for (const int gpu_a : a) {
      for (const int gpu_b : b) {
        total += state_.topology().gpu_distance(gpu_a, gpu_b);
      }
    }
    return total / (static_cast<double>(a.size()) *
                    static_cast<double>(b.size()));
  }

  const jobgraph::JobRequest& request_;
  const cluster::ClusterState& state_;
  const UtilityModel& model_;
  double comm_weight_;
};

partition::SpanMode span_mode(const jobgraph::JobProfile& profile) {
  if (profile.anti_collocate) return partition::SpanMode::kAntiCollocate;
  if (profile.single_node) return partition::SpanMode::kSingleNode;
  return partition::SpanMode::kPreferPack;
}

void key_append(std::string* key, const void* bytes, size_t size) {
  key->append(static_cast<const char*>(bytes), size);
}

void key_append_int(std::string* key, int value) {
  key_append(key, &value, sizeof(value));
}

void key_append_double(std::string* key, double value) {
  key_append(key, &value, sizeof(value));
}

/// Serializes everything the DRB + utility evaluation of map_onto()
/// depends on besides cluster state: the candidate GPU set and the job's
/// shape. Job id and min_utility are deliberately excluded — the id only
/// feeds co_runners() as a self-exclusion (a queued job is never running),
/// and min_utility only gates the `satisfied` bit, recomputed per request.
std::string placement_cache_key(const jobgraph::JobRequest& request,
                                const std::vector<int>& available) {
  std::string key;
  key.reserve(64 + available.size() * sizeof(int) +
              request.comm_graph.edges().size() * (2 * sizeof(int) + 8));
  key_append_int(&key, static_cast<int>(available.size()));
  for (const int gpu : available) key_append_int(&key, gpu);
  const jobgraph::JobProfile& profile = request.profile;
  key_append_int(&key, request.num_gpus);
  key_append_int(&key, static_cast<int>(profile.nn));
  key_append_int(&key, static_cast<int>(profile.batch));
  key_append_int(&key, profile.batch_size);
  key_append_int(&key, (profile.single_node ? 1 : 0) |
                           (profile.anti_collocate ? 2 : 0));
  key_append_double(&key, profile.comm_weight);
  key_append_double(&key, profile.host_bw_demand_gbps);
  key_append_double(&key, profile.solo_time_pack);
  key_append_double(&key, profile.solo_time_spread);
  for (const double slowdown : profile.collocation_slowdown) {
    key_append_double(&key, slowdown);
  }
  key_append_int(&key, request.comm_graph.task_count());
  for (const jobgraph::CommEdge& edge : request.comm_graph.edges()) {
    key_append_int(&key, edge.a);
    key_append_int(&key, edge.b);
    key_append_double(&key, edge.weight);
  }
  return key;
}

}  // namespace

std::optional<Placement> TopoAwareScheduler::place(
    const jobgraph::JobRequest& request, const cluster::ClusterState& state) {
  obs::SpanGuard span(obs::kSched, "topo.place");
  span.arg("job", request.id).arg("gpus", request.num_gpus);
  std::optional<Placement> placement;
  if (request.profile.single_node && !request.profile.anti_collocate &&
      state.topology().machine_count() > direct_drb_machine_limit) {
    placement = place_on_best_machine(request, state);
  } else {
    const std::vector<int> available = filter_hosts(request, state);
    if (static_cast<int>(available.size()) < request.num_gpus) {
      return std::nullopt;
    }
    placement = map_onto(request, available, state);
  }
  if (!placement) return std::nullopt;

  placement->satisfied = placement->utility + 1e-9 >= request.min_utility;
  if (postpone_ && !placement->satisfied) {
    // TOPO-AWARE-P: hold the job for a better allocation (Algorithm 1's
    // postponed list; the Driver re-offers it on the next wakeup).
    return std::nullopt;
  }
  return placement;
}

std::optional<Placement> drb_place(const jobgraph::JobRequest& request,
                                   const std::vector<int>& available,
                                   const cluster::ClusterState& state,
                                   const UtilityModel& utility,
                                   partition::DrbStats* stats) {
  obs::SpanGuard span(obs::kDrb, "drb.map");
  span.arg("tasks", request.num_gpus)
      .arg("available", static_cast<double>(available.size()));
  const TaskUtility callbacks(request, state, utility);
  partition::DrbOptions options;
  options.span = span_mode(request.profile);
  partition::DrbResult result = partition::drb_map(
      request.comm_graph, available, state.topology(), callbacks, options);
  if (stats != nullptr) {
    stats->bipartitions += result.stats.bipartitions;
    stats->fm_passes += result.stats.fm_passes;
    stats->max_depth = std::max(stats->max_depth, result.stats.max_depth);
  }
  span.arg("bipartitions", static_cast<double>(result.stats.bipartitions))
      .arg("depth", static_cast<double>(result.stats.max_depth));
  GTS_METRIC_HISTOGRAM("drb.depth",
                       static_cast<double>(result.stats.max_depth),
                       obs::depth_bounds());
  if (!result.complete) return std::nullopt;

  Placement placement;
  placement.gpus = result.assignment;
  placement.utility = utility.placement_utility(request, placement.gpus, state);
  placement.satisfied = placement.utility + 1e-9 >= request.min_utility;
  if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
    obs::ExplainCandidate candidate;
    candidate.gpus = placement.gpus;
    candidate.terms.utility = placement.utility;
    candidate.source = "drb";
    scope->add_candidate(std::move(candidate));
  }
  return placement;
}

std::optional<Placement> TopoAwareScheduler::map_onto(
    const jobgraph::JobRequest& request, const std::vector<int>& available,
    const cluster::ClusterState& state) {
  if (!cache_enabled_) {
    return drb_place(request, available, state, utility_, &stats_);
  }

  // One cache generation per (state object, allocation epoch): any
  // place/remove changes co-runners, link flows and free sets, all of
  // which feed the utility, so the whole cache is flushed.
  if (cache_state_id_ != state.instance_id() ||
      cache_version_ != state.allocation_version()) {
    if (!cache_.empty()) {
      ++cache_stats_.invalidations;
      GTS_METRIC_COUNT("cache.invalidations", 1);
      GTS_TRACE_INSTANT(obs::kCache, "cache.flush");
      cache_.clear();
    }
    cache_state_id_ = state.instance_id();
    cache_version_ = state.allocation_version();
  }

  const std::string key = placement_cache_key(request, available);
  ++cache_stats_.lookups;
  GTS_METRIC_COUNT("cache.lookups", 1);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++cache_stats_.hits;
    GTS_METRIC_COUNT("cache.hits", 1);
    GTS_TRACE_INSTANT(obs::kCache, "cache.hit", "job", request.id);
    if (!it->second.mapped) return std::nullopt;
    Placement placement;
    placement.gpus = it->second.gpus;
    placement.utility = it->second.utility;
    placement.satisfied = placement.utility + 1e-9 >= request.min_utility;
    if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
      obs::ExplainCandidate candidate;
      candidate.gpus = placement.gpus;
      candidate.terms.utility = placement.utility;
      candidate.source = "cache";
      scope->add_candidate(std::move(candidate));
    }
    return placement;
  }

  std::optional<Placement> placement =
      drb_place(request, available, state, utility_, &stats_);
  CacheEntry entry;
  entry.mapped = placement.has_value();
  if (placement) {
    entry.gpus = placement->gpus;
    entry.utility = placement->utility;
  }
  cache_.emplace(key, std::move(entry));
  return placement;
}

std::optional<Placement> TopoAwareScheduler::place_on_best_machine(
    const jobgraph::JobRequest& request, const cluster::ClusterState& state) {
  const topo::TopologyGraph& topology = state.topology();

  // Cheap pre-score per feasible machine: can the job land on one socket
  // (pack), how many co-runners would interfere, how much capacity is
  // left. Lower is better; ties break on machine id for determinism.
  struct Candidate {
    long long score;
    int machine;
  };
  std::vector<Candidate> candidates;
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    // Section 4.3 capacity constraints: GPUs and host memory bandwidth.
    if (!state.host_bw_available(machine,
                                 request.profile.host_bw_demand_gbps)) {
      continue;
    }
    const std::vector<int> free = state.free_gpus_of_machine(machine);
    if (static_cast<int>(free.size()) < request.num_gpus) continue;
    int best_socket_free = 0;
    std::map<int, int> per_socket;
    for (const int gpu : free) {
      best_socket_free =
          std::max(best_socket_free, ++per_socket[topology.socket_of_gpu(gpu)]);
    }
    const bool can_pack = best_socket_free >= request.num_gpus ||
                          request.num_gpus > 2;  // >2 GPUs spans sockets anyway
    const long long co_runners =
        static_cast<long long>(state.jobs_of_machine(machine).size());
    const long long score = (can_pack ? 0 : 1000000) + co_runners * 100 +
                            static_cast<long long>(free.size());
    candidates.push_back({score, machine});
  }
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score != b.score ? a.score < b.score
                                        : a.machine < b.machine;
            });
  if (static_cast<int>(candidates.size()) > candidate_limit) {
    candidates.resize(static_cast<size_t>(candidate_limit));
  }

  std::optional<Placement> best;
  for (const Candidate& candidate : candidates) {
    const std::vector<int> free = state.free_gpus_of_machine(candidate.machine);
    std::optional<Placement> placement = map_onto(request, free, state);
    if (placement) {
      if (obs::DecisionScope* scope = obs::DecisionScope::current()) {
        obs::ExplainCandidate explain;
        explain.gpus = placement->gpus;
        explain.terms.utility = placement->utility;
        explain.source = "best-machine:" + std::to_string(candidate.machine);
        scope->add_candidate(std::move(explain));
      }
      if (!best || placement->utility > best->utility) {
        best = std::move(placement);
      }
    }
  }
  return best;
}

}  // namespace gts::sched
