// Placement-cache keys for TopoAwareScheduler::map_onto().
//
// The key serializes everything the DRB + utility evaluation depends on
// besides cluster state: the candidate GPU set and the job's shape. Job id
// and min_utility are deliberately excluded — the id only feeds
// co_runners() as a self-exclusion (a queued job is never running), and
// min_utility only gates the `satisfied` bit, recomputed per request.
//
// The production key streams those fields through two independent 64-bit
// FNV-1a accumulators (128 hash bits total) and carries a cheap equality
// payload (set size, first/last GPU, job shape) — no per-lookup string
// allocation. A spurious hit would need a simultaneous collision of both
// accumulators AND an identical payload; at the cache's size (thousands of
// entries per allocation epoch) the probability is negligible, and the
// equivalence suite pins hashed-key decisions to the byte-exact string
// serialization (kept here as the test oracle) on the seeded 500-job trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "jobgraph/jobgraph.hpp"

namespace gts::sched {

struct PlacementCacheKey {
  std::uint64_t h1 = 0;  // FNV-1a, standard offset basis
  std::uint64_t h2 = 0;  // FNV-1a, independent offset basis
  // Equality payload: cheap fields compared verbatim on lookup.
  std::uint32_t available_count = 0;
  std::int32_t first_gpu = -1;
  std::int32_t last_gpu = -1;
  std::int32_t num_gpus = 0;
  std::int32_t task_count = 0;

  bool operator==(const PlacementCacheKey& other) const = default;
};

struct PlacementCacheKeyHash {
  size_t operator()(const PlacementCacheKey& key) const noexcept {
    return static_cast<size_t>(key.h1);
  }
};

/// The production key: hashed, allocation-free.
PlacementCacheKey hashed_placement_cache_key(
    const jobgraph::JobRequest& request, const std::vector<int>& available);

/// The legacy byte-string key over exactly the same fields; retained as
/// the oracle for tests/perf_path_test.cpp's hashed-vs-string equivalence
/// run (and selectable via
/// TopoAwareScheduler::set_string_cache_keys_for_test).
std::string string_placement_cache_key(const jobgraph::JobRequest& request,
                                       const std::vector<int>& available);

}  // namespace gts::sched
