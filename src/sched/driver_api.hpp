// DriverApi: the scheduling-driver surface the service layer programs
// against (DESIGN.md section 19).
//
// Two implementations exist:
//
//   * sched::Driver       — one scheduler over one cluster (the Algorithm 1
//                           loop; the reference semantics);
//   * shard::ShardedDriver — a facade over N cells, each running its own
//                           Driver over a sub-topology, fronted by the
//                           Filter/Score router.
//
// svc::ServiceCore holds a DriverApi and never cares which one it got, so
// every verb — status, list, metrics, snapshot/restore, Prometheus
// exposition — works identically for sharded and unsharded daemons. The
// interface exposes *views* (visitors over running / waiting / terminal
// jobs) instead of handing out internal containers, because the sharded
// implementation must translate per-cell GPU ids into the global id space
// on the way out and must not copy whole tables per request.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "cluster/recorder.hpp"
#include "obs/metrics.hpp"
#include "util/expected.hpp"

namespace gts::sched {

/// Outcome of an online submit.
enum class SubmitResult {
  kAccepted,   // arrival event scheduled (or queued immediately)
  kNeverFits,  // exceeds cluster capacity under its constraints; rejected
  kDuplicate,  // a job with this id was already submitted
  kDraining,   // driver is draining; new work refused
};
std::string_view to_string(SubmitResult result) noexcept;

/// Static capacity check: can `request` ever fit `topology`, regardless of
/// what currently runs? Section 4.3 host-bandwidth ceiling plus the
/// anti-collocation / single-node shape constraints. The Driver uses it to
/// reject hopeless submits; the shard router uses it per cell to find
/// shards a job could ever run in.
bool job_can_ever_fit(const jobgraph::JobRequest& request,
                      const topo::TopologyGraph& topology,
                      const perf::DlWorkloadModel& model);

/// One running job as the service layer sees it. `gpus` are GLOBAL GPU ids
/// (the sharded driver translates cell-local ids before the callback) and
/// the span is only valid for the duration of the visit callback.
struct RunningJobView {
  const jobgraph::JobRequest* request = nullptr;
  std::span<const int> gpus;
  double start_time = 0.0;
  /// Progress as last banked, plus the rate/last_update pair needed to
  /// extrapolate live progress at the caller's clock.
  double progress_iterations = 0.0;
  double last_update = 0.0;
  double rate = 0.0;
  double placement_utility = 0.0;
  double noise_factor = 1.0;
  bool p2p = false;
};

/// One waiting-queue entry. `attempted_version` is expressed in the
/// implementation's public capacity_version() space (the sharded driver
/// normalizes per-cell versions on the way out, see its snapshot notes).
struct WaitingView {
  const jobgraph::JobRequest* request = nullptr;
  std::uint64_t attempted_version = ~0ULL;
  /// Owning shard (always 0 unsharded). Snapshots of sharded daemons
  /// persist it so a restore re-queues the job in the same cell — routing
  /// is a function of arrival-time state, which a restore cannot replay.
  int shard = 0;
};

/// Scheduler-loop counters (the `metrics` verb's cost block).
struct DriverCounters {
  long long decision_count = 0;
  double decision_seconds = 0.0;
  std::uint64_t events = 0;
  int rejected_jobs = 0;
};

/// Lifecycle / SLO aggregates over every job the implementation has seen.
struct LifecycleSummary {
  long long postponements = 0;
  int degradations = 0;
  int slo_violations = 0;
  double mean_jct_slowdown = 0.0;
  double mean_waiting_time = 0.0;
};

/// Per-cell occupancy row (the `shards` verb and the per-shard Prometheus
/// gauges). An unsharded Driver reports itself as one cell, shard 0.
struct ShardInfo {
  int shard = 0;
  int machines = 0;
  int gpus = 0;
  int free_gpus = 0;
  int running = 0;
  int queued = 0;
  double fragmentation = 0.0;
  long long decisions = 0;
  long long placements = 0;
  /// Jobs the router sent to this cell (equals placements + queue for an
  /// unsharded driver, where no routing happens).
  long long routed = 0;
};

/// Two-stage router telemetry; all-zero for an unsharded driver.
struct RouterTelemetry {
  long long routed = 0;     // routing decisions made
  long long filtered = 0;   // shard candidacies rejected by the Filter stage
  long long exhausted = 0;  // routes where every shard was filtered (fallback)
  obs::HistogramData route_latency_us;
};

class DriverApi {
 public:
  virtual ~DriverApi() = default;

  // --- control -------------------------------------------------------------
  virtual SubmitResult submit(const jobgraph::JobRequest& request) = 0;
  virtual bool cancel(int job_id) = 0;
  virtual void drain() = 0;
  virtual bool draining() const = 0;
  /// Fires every event with timestamp <= t and leaves the clock at t.
  virtual void advance_to(double t) = 0;
  /// Runs until no events remain; returns the clock.
  virtual double advance_all() = 0;
  /// Banks running-job progress at the current clock and re-arms
  /// completions, so snapshot-then-continue and restore-then-continue use
  /// bitwise-identical arithmetic.
  virtual void checkpoint_progress() = 0;
  virtual bool idle() const = 0;

  // --- clocks and aggregate state ------------------------------------------
  virtual double now() const = 0;
  virtual int queue_depth() const = 0;
  /// Jobs submitted with a future arrival time, not yet queued (cheaper
  /// than pending_arrivals().size() — no copy).
  virtual int pending_count() const = 0;
  virtual std::uint64_t capacity_version() const = 0;
  /// Allocation-mutation counter (sum over cells when sharded).
  virtual std::uint64_t allocation_version() const = 0;
  virtual int running_job_count() const = 0;
  virtual int free_gpu_count() const = 0;
  /// Eq. 5 mean free-socket fraction (socket-weighted mean over cells).
  virtual double fragmentation() const = 0;
  virtual DriverCounters counters() const = 0;
  virtual LifecycleSummary lifecycle() const = 0;

  // --- sharding introspection ----------------------------------------------
  virtual int shard_count() const = 0;
  virtual std::vector<ShardInfo> shard_infos() const = 0;
  virtual RouterTelemetry router() const = 0;

  // --- views ---------------------------------------------------------------
  /// Visits running jobs in ascending job-id order; return false from the
  /// callback to stop early. GPU ids in the view are global.
  virtual void visit_running(
      const std::function<bool(const RunningJobView&)>& fn) const = 0;
  /// Visits waiting-queue entries in queue order (arrival order; merged
  /// (arrival, id) order across cells when sharded).
  virtual void visit_waiting(
      const std::function<bool(const WaitingView&)>& fn) const = 0;
  /// Visits every job record the implementation has seen, in (arrival, id)
  /// order when sharded and submission order otherwise. GPU ids global.
  virtual void visit_records(
      const std::function<bool(const cluster::JobRecord&)>& fn) const = 0;
  /// Record of one job (GPU ids global), or nullopt if never seen.
  virtual std::optional<cluster::JobRecord> job_record(int job_id) const = 0;
  virtual std::vector<jobgraph::JobRequest> pending_arrivals() const = 0;

  // --- snapshot restore ----------------------------------------------------
  /// Same protocol as Driver: on a fresh instance, begin_restore, then
  /// restore_running per running job, restore_waiting per queued job (in
  /// visit_waiting order), submit per pending arrival, finish_restore.
  virtual util::Status begin_restore(double now,
                                     std::uint64_t capacity_version) = 0;
  virtual util::Status restore_running(const jobgraph::JobRequest& request,
                                       const std::vector<int>& gpus,
                                       double start_time,
                                       double progress_iterations,
                                       double placement_utility,
                                       double noise_factor,
                                       int postponements = 0) = 0;
  /// `shard_hint` is the WaitingView::shard the snapshot captured; -1
  /// (or an out-of-range value from an older layout) lets a sharded
  /// implementation re-route. Unsharded drivers ignore it.
  virtual void restore_waiting(const jobgraph::JobRequest& request,
                               std::uint64_t attempted_version,
                               int postponements = 0,
                               int shard_hint = -1) = 0;
  virtual util::Status finish_restore() = 0;

  /// check::validate over the cluster state (every cell when sharded).
  virtual util::Status validate() const = 0;
};

}  // namespace gts::sched
