// Greedy baseline schedulers (Section 5.2): First Come First Served with a
// FIFO queue, and Best Fit bin packing ("allocating first the GPUs from
// highly used domains"). Both are topology-blind: they never look at link
// types, distances, or co-runner interference.
#pragma once

#include "sched/scheduler.hpp"

namespace gts::sched {

/// FCFS: strict FIFO; first machine (lowest id) with enough free GPUs,
/// lowest-id free GPUs first. The queue blocks behind an unplaceable head.
class FcfsScheduler final : public Scheduler {
 public:
  std::string name() const override { return "FCFS"; }
  std::optional<Placement> place(const jobgraph::JobRequest& request,
                                 const cluster::ClusterState& state) override;
  bool blocking_queue() const override { return true; }
};

/// Best Fit: chooses the machine with the fewest free GPUs that still fits
/// the job, and inside it the sockets that are already most used.
class BestFitScheduler final : public Scheduler {
 public:
  std::string name() const override { return "BF"; }
  std::optional<Placement> place(const jobgraph::JobRequest& request,
                                 const cluster::ClusterState& state) override;
};

}  // namespace gts::sched
