// Algorithm 3's U(task, Py): the three utility factors for routing one
// task to one side of the current physical bipartition, using only
// information available mid-recursion (side GPU sets and the tasks
// already routed).
//
// Hot-path layout: during one job bipartition the side GPU sets are fixed
// — only the routed task lists grow — so every factor that depends on the
// GPU sets alone (mean intra-side distance, mean cross-cut distance, the
// co-runner interference factor, fragmentation free/total counts) is a
// per-side constant. DrbCallbacks::begin_bipartition marks the sides;
// the first task_utility call against a side fills its cache and every
// later call is O(task degree). Membership of a partner task in the
// other side's routed list is a bitset probe instead of a linear find.
//
// `incremental = false` disables all of this and recomputes every factor
// from scratch per call (the original behavior); the equivalence suite
// (tests/perf_path_test.cpp) pins both modes to identical values.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/state.hpp"
#include "jobgraph/jobgraph.hpp"
#include "partition/drb.hpp"
#include "sched/utility.hpp"

namespace gts::sched {

class TaskUtility final : public partition::DrbCallbacks {
 public:
  TaskUtility(const jobgraph::JobRequest& request,
              const cluster::ClusterState& state, const UtilityModel& model,
              bool incremental = true);

  void begin_bipartition(const std::vector<int>& gpus0,
                         const std::vector<int>& gpus1) const override;

  double task_utility(int task, int side,
                      const partition::BipartitionView& view) const override;

 private:
  /// getCommCost(): expected distance from `task` to its communication
  /// partners. Same-side partners cost the side's mean internal distance;
  /// cross-side partners the mean distance across the cut; unrouted
  /// partners are optimistically assumed co-located.
  double comm_utility(int task, double d_intra, double d_cross,
                      const std::vector<int>& other_tasks) const;

  /// getInter(): 1 / predicted co-runner slowdown factor on this side.
  double interference_utility(const std::vector<int>& side_gpus) const;

  /// Free/total GPU counts over the machines this side touches (Eq. 5's
  /// denominator and pre-placement numerator).
  void fragmentation_counts(const std::vector<int>& side_gpus, int* total,
                            int* free_now) const;

  double mean_internal_distance(const std::vector<int>& gpus) const;
  double mean_cross_distance(const std::vector<int>& a,
                             const std::vector<int>& b) const;

  const jobgraph::JobRequest& request_;
  const cluster::ClusterState& state_;
  const UtilityModel& model_;
  double comm_weight_;
  bool incremental_;

  // Per-task communication partners, edge order preserved so the weighted
  // sums accumulate in exactly the order of the original all-edges scan.
  std::vector<std::vector<std::pair<int, double>>> adjacency_;

  // Side aggregates for the current bipartition, keyed by the GPU-set
  // addresses announced by begin_bipartition and filled lazily.
  struct SideCache {
    bool valid = false;
    double d_intra = 1.0;
    double d_cross = 1.0;
    double interference = 1.0;
    int frag_total = 0;
    int frag_free = 0;
  };
  mutable const std::vector<int>* bip_gpus_[2] = {nullptr, nullptr};
  mutable SideCache side_cache_[2];

  // Scratch: task-id bitset for "partner routed to the other side" and a
  // machine-id list for the fragmentation scan.
  mutable std::vector<std::uint8_t> on_other_;
  mutable std::vector<int> machines_scratch_;
};

}  // namespace gts::sched
