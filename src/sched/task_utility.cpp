#include "sched/task_utility.hpp"

#include <algorithm>
#include <cmath>

namespace gts::sched {

TaskUtility::TaskUtility(const jobgraph::JobRequest& request,
                         const cluster::ClusterState& state,
                         const UtilityModel& model, bool incremental)
    : request_(request),
      state_(state),
      model_(model),
      comm_weight_(normalized_comm_weight(request)),
      incremental_(incremental) {
  const size_t tasks = static_cast<size_t>(request.comm_graph.task_count());
  adjacency_.resize(tasks);
  for (const jobgraph::CommEdge& edge : request.comm_graph.edges()) {
    adjacency_[static_cast<size_t>(edge.a)].emplace_back(edge.b, edge.weight);
    adjacency_[static_cast<size_t>(edge.b)].emplace_back(edge.a, edge.weight);
  }
  on_other_.assign(tasks, 0);
}

void TaskUtility::begin_bipartition(const std::vector<int>& gpus0,
                                    const std::vector<int>& gpus1) const {
  bip_gpus_[0] = &gpus0;
  bip_gpus_[1] = &gpus1;
  side_cache_[0].valid = false;
  side_cache_[1].valid = false;
}

double TaskUtility::task_utility(int task, int side,
                                 const partition::BipartitionView& view) const {
  const std::vector<int>& side_gpus = side == 0 ? view.gpus0 : view.gpus1;
  const std::vector<int>& side_tasks = side == 0 ? view.tasks0 : view.tasks1;
  const std::vector<int>& other_gpus = side == 0 ? view.gpus1 : view.gpus0;
  const std::vector<int>& other_tasks = side == 0 ? view.tasks1 : view.tasks0;
  if (side_gpus.empty()) return 0.0;

  double d_intra;
  double d_cross;
  double u_interference;
  int frag_total;
  int frag_free;
  // The caches apply only to the GPU sets announced by begin_bipartition;
  // a direct call against other vectors falls back to a full recompute.
  if (incremental_ && bip_gpus_[side] == &side_gpus &&
      bip_gpus_[1 - side] == &other_gpus) {
    SideCache& cache = side_cache_[side];
    if (!cache.valid) {
      cache.d_intra = mean_internal_distance(side_gpus);
      cache.d_cross = mean_cross_distance(side_gpus, other_gpus);
      cache.interference = interference_utility(side_gpus);
      fragmentation_counts(side_gpus, &cache.frag_total, &cache.frag_free);
      cache.valid = true;
    }
    d_intra = cache.d_intra;
    d_cross = cache.d_cross;
    u_interference = cache.interference;
    frag_total = cache.frag_total;
    frag_free = cache.frag_free;
  } else {
    d_intra = mean_internal_distance(side_gpus);
    d_cross = mean_cross_distance(side_gpus, other_gpus);
    u_interference = interference_utility(side_gpus);
    fragmentation_counts(side_gpus, &frag_total, &frag_free);
  }

  const double u_comm = comm_utility(task, d_intra, d_cross, other_tasks);

  // getFragmentation(): Eq. 5 over the machines this side touches, after
  // hypothetically consuming (routed tasks + this task) GPUs from it.
  double u_frag = 1.0;
  if (frag_total > 0) {
    const int free_after =
        std::max(0, frag_free - static_cast<int>(side_tasks.size()) - 1);
    const double omega =
        static_cast<double>(free_after) / static_cast<double>(frag_total);
    u_frag = 1.0 - omega;
  }
  return model_.combine(u_comm, u_interference, u_frag, comm_weight_);
}

double TaskUtility::comm_utility(int task, double d_intra, double d_cross,
                                 const std::vector<int>& other_tasks) const {
  const std::vector<std::pair<int, double>>& partners =
      adjacency_[static_cast<size_t>(task)];
  double weighted_distance = 0.0;
  double total_weight = 0.0;
  for (const int t : other_tasks) on_other_[static_cast<size_t>(t)] = 1;
  for (const auto& [partner, weight] : partners) {
    // Same-side and unrouted partners both cost d_intra.
    weighted_distance +=
        weight *
        (on_other_[static_cast<size_t>(partner)] != 0 ? d_cross : d_intra);
    total_weight += weight;
  }
  for (const int t : other_tasks) on_other_[static_cast<size_t>(t)] = 0;
  if (total_weight <= 0.0) return 1.0;
  const double mean_distance = weighted_distance / total_weight;
  return mean_distance > 0.0 ? std::min(1.0, 1.0 / mean_distance) : 1.0;
}

double TaskUtility::interference_utility(
    const std::vector<int>& side_gpus) const {
  const std::vector<perf::CoRunner> co =
      state_.co_runners(side_gpus, request_.id);
  const double factor =
      state_.model().interference_factor(request_.profile.batch, co);
  return factor > 0.0 ? 1.0 / factor : 1.0;
}

void TaskUtility::fragmentation_counts(const std::vector<int>& side_gpus,
                                       int* total, int* free_now) const {
  const topo::TopologyGraph& topology = state_.topology();
  machines_scratch_.clear();
  for (const int gpu : side_gpus) {
    machines_scratch_.push_back(topology.machine_of_gpu(gpu));
  }
  std::sort(machines_scratch_.begin(), machines_scratch_.end());
  machines_scratch_.erase(
      std::unique(machines_scratch_.begin(), machines_scratch_.end()),
      machines_scratch_.end());
  *total = 0;
  *free_now = 0;
  for (const int machine : machines_scratch_) {
    const std::vector<std::vector<int>>& sockets =
        topology.socket_gpu_lists(machine);
    const size_t socket_count = std::min(
        sockets.size(), static_cast<size_t>(topology.sockets_of_machine(machine)));
    for (size_t socket = 0; socket < socket_count; ++socket) {
      for (const int gpu : sockets[socket]) {
        ++*total;
        if (state_.gpu_free(gpu)) ++*free_now;
      }
    }
  }
}

double TaskUtility::mean_internal_distance(const std::vector<int>& gpus) const {
  if (gpus.size() < 2) return 1.0;  // a lone GPU: best case for peers here
  double total = 0.0;
  int pairs = 0;
  for (size_t i = 0; i < gpus.size(); ++i) {
    for (size_t j = i + 1; j < gpus.size(); ++j) {
      total += state_.topology().gpu_distance(gpus[i], gpus[j]);
      ++pairs;
    }
  }
  return total / pairs;
}

double TaskUtility::mean_cross_distance(const std::vector<int>& a,
                                        const std::vector<int>& b) const {
  if (a.empty() || b.empty()) return 1.0;
  double total = 0.0;
  for (const int gpu_a : a) {
    for (const int gpu_b : b) {
      total += state_.topology().gpu_distance(gpu_a, gpu_b);
    }
  }
  return total / (static_cast<double>(a.size()) *
                  static_cast<double>(b.size()));
}

}  // namespace gts::sched
