// Scheduler strategy interface (Algorithm 1's pluggable placement step).
//
// A Scheduler inspects the cluster state and proposes a placement for one
// job, or declines (insufficient resources / constraints / — for
// TOPO-AWARE-P — a utility below the job's threshold). The queue
// discipline (arrival-ordered, postponed jobs re-appended, Algorithm 1)
// lives in the Driver.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "jobgraph/jobgraph.hpp"
#include "sched/utility.hpp"

namespace gts::sched {

struct Placement {
  std::vector<int> gpus;   // one global GPU id per task
  double utility = 0.0;    // the scheduler's utility estimate
  bool satisfied = true;   // false when utility < job's min_utility
};

enum class Policy { kFcfs, kBestFit, kTopoAware, kTopoAwareP };
std::string_view to_string(Policy policy) noexcept;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  /// Proposes GPUs for `request`, or nullopt when the job cannot (or, for
  /// postponing policies, should not) be placed now.
  virtual std::optional<Placement> place(
      const jobgraph::JobRequest& request,
      const cluster::ClusterState& state) = 0;

  /// Strict FIFO head-of-line blocking: when true the driver stops the
  /// scheduling pass at the first job that cannot be placed.
  virtual bool blocking_queue() const { return false; }

  /// Opt into parallel candidate scoring with `threads` workers (< 0 = all
  /// cores, 0 = back to serial). Decisions must stay byte-identical to the
  /// serial path — parallelism is an implementation detail of place(), not
  /// a policy change. Default: no-op (the greedy policies score one
  /// candidate at a time by construction).
  virtual void set_parallel_scoring(int /*threads*/) {}
};

/// Factory for the four policies evaluated in the paper. The utility model
/// is shared so all policies are judged by the same yardstick in reports.
std::unique_ptr<Scheduler> make_scheduler(Policy policy,
                                          UtilityWeights weights = {});

/// Host filtering (Algorithm 1's filterHostsByConstraints): free GPUs the
/// job may use, honoring single-node / anti-collocation constraints.
/// Returns an empty list when constraints cannot currently be met.
std::vector<int> filter_hosts(const jobgraph::JobRequest& request,
                              const cluster::ClusterState& state);

}  // namespace gts::sched
