// Simulation driver: Algorithm 1's scheduler loop on the discrete-event
// engine.
//
// The driver owns the waiting queue (sorted by arrival time — "the oldest
// jobs have priority to be placed"), wakes on job arrivals and
// completions, runs a scheduling pass over the queue, and tracks the
// wall-clock cost of placement decisions (the Section 5.5.3 overhead
// analysis).
//
// Two operating modes share the same queue discipline:
//
//   * batch (`run`): submit a whole workload, run the engine to
//     completion — the paper's Section 5 experiments;
//   * online (`submit` / `cancel` / `drain` / `advance_to` /
//     `advance_all`): jobs arrive one at a time while the caller controls
//     how far simulated time advances — the scheduler service
//     (src/svc/) drives this API, including its snapshot/restore seams
//     (`begin_restore` / `restore_running` / `restore_waiting` /
//     `finish_restore`).
#pragma once

#include <map>
#include <vector>

#include "cluster/recorder.hpp"
#include "cluster/state.hpp"
#include "obs/metrics.hpp"
#include "sched/driver_api.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "util/expected.hpp"

namespace gts::sched {

struct DriverOptions {
  /// Record bandwidth / mean-utility series points at every state change.
  bool record_series = true;
  /// Lognormal execution-noise sigma (0 = deterministic). The schedulers
  /// still predict with the noise-free model, as in the paper's cloud.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 1234;
  /// Evaluate every enacted placement with the shared utility model (for
  /// SLO accounting); greedy schedulers do not produce their own utility.
  bool evaluate_utility = true;
  UtilityWeights utility_weights{};
  /// Self-audit mode (check subsystem): validate the topology up front,
  /// replay every proposed placement through check::audit_placement before
  /// enacting it, and run check::validate(ClusterState) after every
  /// simulation event. Any inconsistency fires GTS_CHECK. O(jobs) per
  /// event — meant for tests and debugging runs, off by default.
  bool self_audit = false;
  /// Fan candidate evaluation out across a worker pool inside the
  /// scheduler (Scheduler::set_parallel_scoring). Decisions stay
  /// byte-identical to the serial path (tests/parallel_scoring_test.cpp);
  /// off by default so the serial oracle remains the reference.
  bool parallel_scoring = false;
  /// Scoring workers when parallel_scoring is on; 0 = all cores.
  int scoring_threads = 0;
  /// Installed on the ClusterState before any traffic; the sharded
  /// scheduler's per-cell routing summaries subscribe here.
  cluster::ClusterState::AllocationListener allocation_listener;
  /// Differential-test oracle: re-rate every running job on each
  /// place/remove (the pre-scoping full recompute) instead of only the
  /// machine/link-scoped touched set. Outcomes are byte-identical either
  /// way (cluster::ClusterState::set_full_event_recompute); the flag only
  /// changes how much redundant model work each event performs.
  bool full_event_recompute = false;
};

struct DriverReport {
  cluster::Recorder recorder;
  /// Wall-clock seconds spent inside Scheduler::place across the run and
  /// the number of placement attempts (Section 5.5.3).
  double decision_seconds = 0.0;
  long long decision_count = 0;
  /// Per-decision latency distribution (microseconds), recorded for every
  /// run — this is the report-local histogram bench_overhead aggregates;
  /// the obs registry histogram "sched.decision_latency_us" is only fed
  /// when metrics are enabled.
  obs::HistogramData decision_latency_us;
  double mean_decision_seconds() const {
    return decision_count == 0 ? 0.0
                               : decision_seconds /
                                     static_cast<double>(decision_count);
  }
  /// Wall-clock seconds spent on the advance path — processing completion
  /// events (due-completion collection + removal rate updates) — and the
  /// number of completion events. The other half of the Section 5.5.3
  /// overhead split: together with decision_* it attributes scale
  /// regressions to the decision path or the event path.
  double advance_seconds = 0.0;
  long long advance_count = 0;
  obs::HistogramData advance_latency_us;
  double mean_advance_seconds() const {
    return advance_count == 0 ? 0.0
                              : advance_seconds /
                                    static_cast<double>(advance_count);
  }
  /// Simulated time when the last job finished.
  double end_time = 0.0;
  /// Discrete events fired by the engine across the run (the runner's
  /// events/sec throughput denominator).
  std::uint64_t events = 0;
  /// Jobs dropped because they can never fit the cluster (capacity), kept
  /// at zero by all paper scenarios.
  int rejected_jobs = 0;
};

class Driver : public DriverApi {
 public:
  Driver(const topo::TopologyGraph& topology,
         const perf::DlWorkloadModel& model, Scheduler& scheduler,
         DriverOptions options = {});

  struct QueueEntry {
    jobgraph::JobRequest request;
    /// Capacity version at the last failed attempt: a declined job is only
    /// re-offered after a completion frees capacity (placements never make
    /// a previously-declined placement viable, they only add contention).
    std::uint64_t attempted_version = ~0ULL;
  };

  /// Runs the whole workload to completion and returns the report.
  /// `jobs` need not be sorted; arrival order is established internally.
  DriverReport run(std::vector<jobgraph::JobRequest> jobs);

  // --- online mode ---------------------------------------------------------
  /// Admits one job. Its arrival event fires at
  /// max(request.arrival_time, now); an arrival at `now` is only enacted
  /// by the next advance_to/advance_all call.
  SubmitResult submit(const jobgraph::JobRequest& request) override;

  /// Withdraws a job: pending arrival events are cancelled, queued jobs
  /// leave the queue, running jobs release their GPUs (freed capacity is
  /// offered to the queue immediately). False when the id is unknown or
  /// the job already finished.
  bool cancel(int job_id) override;

  /// Refuses all subsequent submits; queued and running work proceeds.
  void drain() noexcept override { draining_ = true; }
  bool draining() const noexcept override { return draining_; }

  /// Fires every event with timestamp <= t and leaves the clock at t.
  void advance_to(double t) override;
  /// Runs until no events remain (all admitted work finished or stuck
  /// waiting for capacity that will never free). Returns the clock.
  double advance_all() override;
  /// Banks every running job's progress at the current clock and re-arms
  /// the completion event from the banked values. Taking a snapshot calls
  /// this first so the snapshotting process and a process restored from
  /// the snapshot continue with bitwise-identical progress arithmetic
  /// (both then extrapolate from `now`, not from the last event).
  void checkpoint_progress() override;
  /// True when nothing is running, queued, or pending arrival.
  bool idle() const override {
    return state_.running_job_count() == 0 && queue_.empty() &&
           !engine_.has_pending();
  }

  double now() const noexcept override { return engine_.now(); }
  int queue_depth() const noexcept override {
    return static_cast<int>(queue_.size());
  }
  const std::vector<QueueEntry>& waiting() const noexcept { return queue_; }
  /// Jobs submitted with a future arrival time, not yet in the queue.
  std::vector<jobgraph::JobRequest> pending_arrivals() const override;
  int pending_count() const noexcept override {
    return static_cast<int>(pending_arrivals_.size());
  }
  std::uint64_t capacity_version() const noexcept override {
    return capacity_version_;
  }
  const cluster::ClusterState& state() const noexcept { return state_; }
  const DriverReport& report() const noexcept { return report_; }
  const cluster::Recorder& recorder() const noexcept {
    return report_.recorder;
  }

  // --- DriverApi aggregate views -------------------------------------------
  std::uint64_t allocation_version() const override {
    return state_.allocation_version();
  }
  int running_job_count() const override {
    return state_.running_job_count();
  }
  int free_gpu_count() const override { return state_.free_gpu_count(); }
  double fragmentation() const override { return state_.fragmentation(); }
  DriverCounters counters() const override;
  LifecycleSummary lifecycle() const override;
  int shard_count() const override { return 1; }
  std::vector<ShardInfo> shard_infos() const override;
  RouterTelemetry router() const override { return {}; }
  void visit_running(
      const std::function<bool(const RunningJobView&)>& fn) const override;
  void visit_waiting(
      const std::function<bool(const WaitingView&)>& fn) const override;
  void visit_records(
      const std::function<bool(const cluster::JobRecord&)>& fn) const override;
  std::optional<cluster::JobRecord> job_record(int job_id) const override;
  util::Status validate() const override;

  // --- snapshot restore ----------------------------------------------------
  /// Restore protocol (svc snapshots): on a freshly constructed driver,
  ///   begin_restore(now, capacity_version)
  ///   restore_running(...) per running job   (audited, placement replay)
  ///   restore_waiting(...)  per queued job   (queue order preserved)
  ///   submit(...)           per pending future arrival
  ///   finish_restore()                       (validate + arm completions)
  util::Status begin_restore(double now,
                             std::uint64_t capacity_version) override;
  util::Status restore_running(const jobgraph::JobRequest& request,
                               const std::vector<int>& gpus,
                               double start_time, double progress_iterations,
                               double placement_utility, double noise_factor,
                               int postponements = 0) override;
  void restore_waiting(const jobgraph::JobRequest& request,
                       std::uint64_t attempted_version,
                       int postponements = 0, int shard_hint = -1) override;
  util::Status finish_restore() override;

 private:
  void on_arrival(const jobgraph::JobRequest& request);
  void on_completion_event();
  void scheduling_pass();
  void arm_completion_event();
  void sync_report();

  const topo::TopologyGraph& topology_;
  const perf::DlWorkloadModel& model_;
  Scheduler& scheduler_;
  DriverOptions options_;
  UtilityModel shared_utility_;

  sim::Engine engine_;
  cluster::ClusterState state_;
  std::vector<QueueEntry> queue_;  // waiting, arrival-ordered
  /// Submitted jobs whose arrival event has not fired yet (id -> handle +
  /// request), so online cancels can intercept them and snapshots can
  /// carry them.
  std::map<int, std::pair<sim::EventHandle, jobgraph::JobRequest>>
      pending_arrivals_;
  std::uint64_t capacity_version_ = 0;
  bool draining_ = false;
  DriverReport report_;
  sim::EventHandle completion_event_ = sim::kInvalidEvent;
};

}  // namespace gts::sched
