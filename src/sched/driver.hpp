// Simulation driver: Algorithm 1's scheduler loop on the discrete-event
// engine.
//
// The driver owns the waiting queue (sorted by arrival time — "the oldest
// jobs have priority to be placed"), wakes on job arrivals and
// completions, runs a scheduling pass over the queue, and tracks the
// wall-clock cost of placement decisions (the Section 5.5.3 overhead
// analysis).
#pragma once

#include <vector>

#include "cluster/recorder.hpp"
#include "cluster/state.hpp"
#include "obs/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace gts::sched {

struct DriverOptions {
  /// Record bandwidth / mean-utility series points at every state change.
  bool record_series = true;
  /// Lognormal execution-noise sigma (0 = deterministic). The schedulers
  /// still predict with the noise-free model, as in the paper's cloud.
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 1234;
  /// Evaluate every enacted placement with the shared utility model (for
  /// SLO accounting); greedy schedulers do not produce their own utility.
  bool evaluate_utility = true;
  UtilityWeights utility_weights{};
  /// Self-audit mode (check subsystem): validate the topology up front,
  /// replay every proposed placement through check::audit_placement before
  /// enacting it, and run check::validate(ClusterState) after every
  /// simulation event. Any inconsistency fires GTS_CHECK. O(jobs) per
  /// event — meant for tests and debugging runs, off by default.
  bool self_audit = false;
};

struct DriverReport {
  cluster::Recorder recorder;
  /// Wall-clock seconds spent inside Scheduler::place across the run and
  /// the number of placement attempts (Section 5.5.3).
  double decision_seconds = 0.0;
  long long decision_count = 0;
  /// Per-decision latency distribution (microseconds), recorded for every
  /// run — this is the report-local histogram bench_overhead aggregates;
  /// the obs registry histogram "sched.decision_latency_us" is only fed
  /// when metrics are enabled.
  obs::HistogramData decision_latency_us;
  double mean_decision_seconds() const {
    return decision_count == 0 ? 0.0
                               : decision_seconds /
                                     static_cast<double>(decision_count);
  }
  /// Simulated time when the last job finished.
  double end_time = 0.0;
  /// Discrete events fired by the engine across the run (the runner's
  /// events/sec throughput denominator).
  std::uint64_t events = 0;
  /// Jobs dropped because they can never fit the cluster (capacity), kept
  /// at zero by all paper scenarios.
  int rejected_jobs = 0;
};

class Driver {
 public:
  Driver(const topo::TopologyGraph& topology,
         const perf::DlWorkloadModel& model, Scheduler& scheduler,
         DriverOptions options = {});

  /// Runs the whole workload to completion and returns the report.
  /// `jobs` need not be sorted; arrival order is established internally.
  DriverReport run(std::vector<jobgraph::JobRequest> jobs);

 private:
  void on_arrival(const jobgraph::JobRequest& request);
  void on_completion_event();
  void scheduling_pass();
  void arm_completion_event();
  bool job_can_ever_fit(const jobgraph::JobRequest& request) const;

  const topo::TopologyGraph& topology_;
  const perf::DlWorkloadModel& model_;
  Scheduler& scheduler_;
  DriverOptions options_;
  UtilityModel shared_utility_;

  sim::Engine engine_;
  cluster::ClusterState state_;
  struct QueueEntry {
    jobgraph::JobRequest request;
    /// Capacity version at the last failed attempt: a declined job is only
    /// re-offered after a completion frees capacity (placements never make
    /// a previously-declined placement viable, they only add contention).
    std::uint64_t attempted_version = ~0ULL;
  };
  std::vector<QueueEntry> queue_;  // waiting, arrival-ordered
  std::uint64_t capacity_version_ = 0;
  DriverReport report_;
  sim::EventHandle completion_event_ = sim::kInvalidEvent;
};

}  // namespace gts::sched
