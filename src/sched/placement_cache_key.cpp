#include "sched/placement_cache_key.hpp"

namespace gts::sched {

namespace {

/// Two independent FNV-1a 64-bit accumulators fed the same byte stream.
class Fnv128 {
 public:
  void bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h1_ = (h1_ ^ p[i]) * kPrime;
      h2_ = (h2_ ^ p[i]) * kPrime;
    }
  }
  void add_int(int value) { bytes(&value, sizeof(value)); }
  void add_double(double value) { bytes(&value, sizeof(value)); }

  std::uint64_t h1() const noexcept { return h1_; }
  std::uint64_t h2() const noexcept { return h2_; }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  static constexpr std::uint64_t kBasis = 14695981039346656037ULL;
  std::uint64_t h1_ = kBasis;
  std::uint64_t h2_ = kBasis ^ 0x9e3779b97f4a7c15ULL;  // independent basis
};

void key_append(std::string* key, const void* bytes, size_t size) {
  key->append(static_cast<const char*>(bytes), size);
}

void key_append_int(std::string* key, int value) {
  key_append(key, &value, sizeof(value));
}

void key_append_double(std::string* key, double value) {
  key_append(key, &value, sizeof(value));
}

/// Streams the key fields through any sink with add_int/add_double; the
/// hashed and string keys stay field-for-field identical by construction.
template <typename Sink>
void stream_key_fields(Sink& sink, const jobgraph::JobRequest& request,
                       const std::vector<int>& available) {
  sink.add_int(static_cast<int>(available.size()));
  for (const int gpu : available) sink.add_int(gpu);
  const jobgraph::JobProfile& profile = request.profile;
  sink.add_int(request.num_gpus);
  sink.add_int(static_cast<int>(profile.nn));
  sink.add_int(static_cast<int>(profile.batch));
  sink.add_int(profile.batch_size);
  sink.add_int((profile.single_node ? 1 : 0) |
               (profile.anti_collocate ? 2 : 0));
  sink.add_double(profile.comm_weight);
  sink.add_double(profile.host_bw_demand_gbps);
  sink.add_double(profile.solo_time_pack);
  sink.add_double(profile.solo_time_spread);
  for (const double slowdown : profile.collocation_slowdown) {
    sink.add_double(slowdown);
  }
  sink.add_int(request.comm_graph.task_count());
  for (const jobgraph::CommEdge& edge : request.comm_graph.edges()) {
    sink.add_int(edge.a);
    sink.add_int(edge.b);
    sink.add_double(edge.weight);
  }
}

struct StringSink {
  std::string* key;
  void add_int(int value) { key_append_int(key, value); }
  void add_double(double value) { key_append_double(key, value); }
};

}  // namespace

PlacementCacheKey hashed_placement_cache_key(
    const jobgraph::JobRequest& request, const std::vector<int>& available) {
  Fnv128 fnv;
  stream_key_fields(fnv, request, available);
  PlacementCacheKey key;
  key.h1 = fnv.h1();
  key.h2 = fnv.h2();
  key.available_count = static_cast<std::uint32_t>(available.size());
  key.first_gpu = available.empty() ? -1 : available.front();
  key.last_gpu = available.empty() ? -1 : available.back();
  key.num_gpus = request.num_gpus;
  key.task_count = request.comm_graph.task_count();
  return key;
}

std::string string_placement_cache_key(const jobgraph::JobRequest& request,
                                       const std::vector<int>& available) {
  std::string key;
  key.reserve(64 + available.size() * sizeof(int) +
              request.comm_graph.edges().size() * (2 * sizeof(int) + 8));
  StringSink sink{&key};
  stream_key_fields(sink, request, available);
  return key;
}

}  // namespace gts::sched
