#include "sched/scheduler.hpp"

#include <algorithm>
#include <set>

#include "sched/greedy.hpp"
#include "sched/topo_aware.hpp"

namespace gts::sched {

std::string_view to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::kFcfs:
      return "FCFS";
    case Policy::kBestFit:
      return "BF";
    case Policy::kTopoAware:
      return "TOPO-AWARE";
    case Policy::kTopoAwareP:
      return "TOPO-AWARE-P";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(Policy policy,
                                          UtilityWeights weights) {
  switch (policy) {
    case Policy::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case Policy::kBestFit:
      return std::make_unique<BestFitScheduler>();
    case Policy::kTopoAware:
      return std::make_unique<TopoAwareScheduler>(weights,
                                                  /*postpone=*/false);
    case Policy::kTopoAwareP:
      return std::make_unique<TopoAwareScheduler>(weights,
                                                  /*postpone=*/true);
  }
  return nullptr;
}

std::vector<int> filter_hosts(const jobgraph::JobRequest& request,
                              const cluster::ClusterState& state) {
  const topo::TopologyGraph& topology = state.topology();
  // Section 4.3 capacity constraints: enough GPUs (t_gpu <= p_gpu) and
  // enough host memory bandwidth (t_bw <= p_bw) on every candidate.
  const double demand = request.profile.host_bw_demand_gbps;

  if (request.profile.anti_collocate) {
    // One GPU per machine: keep machines with at least one free GPU; the
    // job needs num_gpus such machines. Each machine carries an even
    // share of the job's bandwidth demand.
    const double share = demand / std::max(1, request.num_gpus);
    std::vector<int> gpus;
    int machines_with_free = 0;
    for (int machine = 0; machine < topology.machine_count(); ++machine) {
      if (!state.host_bw_available(machine, share)) continue;
      const std::vector<int> free = state.free_gpus_of_machine(machine);
      if (!free.empty()) ++machines_with_free;
      gpus.insert(gpus.end(), free.begin(), free.end());
    }
    if (machines_with_free < request.num_gpus) return {};
    return gpus;
  }

  if (request.profile.single_node) {
    // Only machines that can hold the whole job, GPUs and bandwidth.
    std::vector<int> gpus;
    for (int machine = 0; machine < topology.machine_count(); ++machine) {
      if (!state.host_bw_available(machine, demand)) continue;
      const std::vector<int> free = state.free_gpus_of_machine(machine);
      if (static_cast<int>(free.size()) >= request.num_gpus) {
        gpus.insert(gpus.end(), free.begin(), free.end());
      }
    }
    return gpus;
  }

  // Multi-node-capable: any machine with both a free GPU and bandwidth
  // headroom for a proportional share contributes.
  const double share = demand / std::max(1, request.num_gpus);
  std::vector<int> gpus;
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    if (!state.host_bw_available(machine, share)) continue;
    const std::vector<int> free = state.free_gpus_of_machine(machine);
    gpus.insert(gpus.end(), free.begin(), free.end());
  }
  if (static_cast<int>(gpus.size()) < request.num_gpus) return {};
  return gpus;
}

}  // namespace gts::sched
