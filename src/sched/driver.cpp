#include "sched/driver.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>

#include "check/audit.hpp"
#include "check/check.hpp"
#include "obs/explain.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gts::sched {

Driver::Driver(const topo::TopologyGraph& topology,
               const perf::DlWorkloadModel& model, Scheduler& scheduler,
               DriverOptions options)
    : topology_(topology),
      model_(model),
      scheduler_(scheduler),
      options_(options),
      shared_utility_(options.utility_weights),
      state_(topology, model) {
  if (options_.allocation_listener) {
    state_.set_allocation_listener(std::move(options_.allocation_listener));
  }
  state_.set_full_event_recompute(options_.full_event_recompute);
  if (options_.noise_sigma > 0.0) {
    state_.set_execution_noise(options_.noise_sigma, options_.noise_seed);
  }
  if (options_.parallel_scoring) {
    scheduler_.set_parallel_scoring(
        options_.scoring_threads > 0 ? options_.scoring_threads : -1);
  }
  if (options_.self_audit) {
    const util::Status status = check::validate(topology_);
    GTS_CHECK(status.is_ok(),
              "topology failed validation: ", status.error().message);
    engine_.set_post_event_hook([this] {
      const util::Status audit = check::validate(state_);
      GTS_CHECK(audit.is_ok(),
                "cluster self-audit failed at t=", engine_.now(), ": ",
                audit.error().message);
    });
  }
}

bool job_can_ever_fit(const jobgraph::JobRequest& request,
                      const topo::TopologyGraph& topology,
                      const perf::DlWorkloadModel& model) {
  // Section 4.3: a job demanding more host bandwidth than any machine
  // offers can never satisfy t_bw <= p_bw.
  if (request.profile.host_bw_demand_gbps >
      model.params().host_bw_capacity_gbps *
          (request.profile.single_node ? 1.0 : topology.machine_count())) {
    return false;
  }
  if (request.profile.anti_collocate) {
    return request.num_gpus <= topology.machine_count();
  }
  if (request.profile.single_node) {
    for (int machine = 0; machine < topology.machine_count(); ++machine) {
      if (static_cast<int>(topology.gpus_of_machine(machine).size()) >=
          request.num_gpus) {
        return true;
      }
    }
    return false;
  }
  return request.num_gpus <= topology.gpu_count();
}

std::string_view to_string(SubmitResult result) noexcept {
  switch (result) {
    case SubmitResult::kAccepted: return "accepted";
    case SubmitResult::kNeverFits: return "never_fits";
    case SubmitResult::kDuplicate: return "duplicate";
    case SubmitResult::kDraining: return "draining";
  }
  return "unknown";
}

DriverReport Driver::run(std::vector<jobgraph::JobRequest> jobs) {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const jobgraph::JobRequest& a,
                      const jobgraph::JobRequest& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  for (const jobgraph::JobRequest& job : jobs) {
    const SubmitResult result = submit(job);
    if (result == SubmitResult::kDuplicate) ++report_.rejected_jobs;
  }
  engine_.run();
  sync_report();
  report_.end_time = report_.recorder.makespan();
  return std::move(report_);
}

SubmitResult Driver::submit(const jobgraph::JobRequest& request) {
  if (draining_) return SubmitResult::kDraining;
  if (report_.recorder.find(request.id) != nullptr) {
    GTS_LOG_WARN("driver", "duplicate job id ", request.id, "; refused");
    return SubmitResult::kDuplicate;
  }
  jobgraph::JobRequest job = request;
  if (job.arrival_time < engine_.now()) job.arrival_time = engine_.now();
  report_.recorder.on_submit(job);
  if (!job_can_ever_fit(job, topology_, model_)) {
    ++report_.rejected_jobs;
    GTS_LOG_WARN("driver", "job ", job.id, " can never fit; rejected");
    return SubmitResult::kNeverFits;
  }
  const sim::EventHandle handle = engine_.schedule_at(
      job.arrival_time, [this, job]() { on_arrival(job); });
  pending_arrivals_.emplace(job.id, std::make_pair(handle, job));
  return SubmitResult::kAccepted;
}

bool Driver::cancel(int job_id) {
  const double now = engine_.now();
  if (const auto pending = pending_arrivals_.find(job_id);
      pending != pending_arrivals_.end()) {
    engine_.cancel(pending->second.first);
    pending_arrivals_.erase(pending);
    report_.recorder.on_cancel(job_id, now);
    return true;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->request.id == job_id) {
      queue_.erase(it);
      report_.recorder.on_cancel(job_id, now);
      return true;
    }
  }
  if (state_.find(job_id) != nullptr) {
    state_.remove(job_id, now);
    report_.recorder.on_cancel(job_id, now);
    // Freed capacity: let waiting jobs take it right away.
    ++capacity_version_;
    scheduling_pass();
    return true;
  }
  return false;
}

void Driver::advance_to(double t) {
  GTS_DCHECK(t >= engine_.now() - 1e-9, "advance into the past: t=", t,
             " now=", engine_.now());
  engine_.run_until(t);
  sync_report();
}

double Driver::advance_all() {
  engine_.run();
  sync_report();
  return engine_.now();
}

std::vector<jobgraph::JobRequest> Driver::pending_arrivals() const {
  std::vector<jobgraph::JobRequest> pending;
  pending.reserve(pending_arrivals_.size());
  for (const auto& [id, entry] : pending_arrivals_) {
    pending.push_back(entry.second);
  }
  return pending;
}

void Driver::sync_report() {
  report_.events = engine_.events_fired();
  const double makespan = report_.recorder.makespan();
  if (makespan > report_.end_time) report_.end_time = makespan;
}

DriverCounters Driver::counters() const {
  return {report_.decision_count, report_.decision_seconds, report_.events,
          report_.rejected_jobs};
}

LifecycleSummary Driver::lifecycle() const {
  const cluster::Recorder& recorder = report_.recorder;
  return {recorder.total_postponements(), recorder.total_degradations(),
          recorder.slo_violations(), recorder.mean_jct_slowdown(),
          recorder.mean_waiting_time()};
}

std::vector<ShardInfo> Driver::shard_infos() const {
  ShardInfo info;
  info.shard = 0;
  info.machines = topology_.machine_count();
  info.gpus = topology_.gpu_count();
  info.free_gpus = state_.free_gpu_count();
  info.running = state_.running_job_count();
  info.queued = queue_depth();
  info.fragmentation = state_.fragmentation();
  info.decisions = report_.decision_count;
  for (const cluster::JobRecord& record : report_.recorder.records()) {
    if (record.placed()) ++info.placements;
  }
  info.routed =
      static_cast<long long>(report_.recorder.records().size());
  return {info};
}

void Driver::visit_running(
    const std::function<bool(const RunningJobView&)>& fn) const {
  for (const auto& [id, job] : state_.running_jobs()) {
    RunningJobView view;
    view.request = &job.request;
    view.gpus = job.gpus;
    view.start_time = job.start_time;
    view.progress_iterations = job.progress_iterations;
    view.last_update = job.last_update;
    view.rate = job.rate;
    view.placement_utility = job.placement_utility;
    view.noise_factor = job.noise_factor;
    view.p2p = job.p2p;
    if (!fn(view)) return;
  }
}

void Driver::visit_waiting(
    const std::function<bool(const WaitingView&)>& fn) const {
  for (const QueueEntry& entry : queue_) {
    if (!fn({&entry.request, entry.attempted_version})) return;
  }
}

void Driver::visit_records(
    const std::function<bool(const cluster::JobRecord&)>& fn) const {
  for (const cluster::JobRecord& record : report_.recorder.records()) {
    if (!fn(record)) return;
  }
}

std::optional<cluster::JobRecord> Driver::job_record(int job_id) const {
  if (const cluster::JobRecord* record = report_.recorder.find(job_id)) {
    return *record;
  }
  return std::nullopt;
}

util::Status Driver::validate() const { return check::validate(state_); }

util::Status Driver::begin_restore(double now,
                                   std::uint64_t capacity_version) {
  if (state_.running_job_count() > 0 || !queue_.empty() ||
      engine_.has_pending() || report_.decision_count > 0) {
    return util::Error{"restore requires a freshly constructed driver"};
  }
  if (now < 0.0) return util::Error{"restore: negative simulated time"};
  engine_.fast_forward(now);
  capacity_version_ = capacity_version;
  return util::Status::ok();
}

util::Status Driver::restore_running(const jobgraph::JobRequest& request,
                                     const std::vector<int>& gpus,
                                     double start_time,
                                     double progress_iterations,
                                     double placement_utility,
                                     double noise_factor,
                                     int postponements) {
  // Replay the placement through the feasibility audit before enacting
  // it: a corrupted or stale snapshot must not poison the cluster state.
  if (util::Status audit = check::audit_placement(request, gpus, state_);
      !audit) {
    return audit.error().with_context(
        util::fmt("restore job {}", request.id));
  }
  if (progress_iterations < 0.0 ||
      progress_iterations >
          static_cast<double>(request.iterations) + 1e-6) {
    return util::Error{util::fmt("restore job {}: progress {} out of bounds",
                                 request.id, progress_iterations)};
  }
  if (noise_factor <= 0.0) {
    return util::Error{
        util::fmt("restore job {}: noise_factor must be > 0", request.id)};
  }
  report_.recorder.on_submit(request);
  state_.restore_job(request, gpus, start_time, progress_iterations,
                     placement_utility, noise_factor, engine_.now());
  const cluster::RunningJob* running = state_.find(request.id);
  report_.recorder.on_place(request.id, start_time, gpus, placement_utility,
                            running != nullptr && running->p2p);
  if (cluster::JobRecord* record = report_.recorder.find(request.id)) {
    record->postponements = postponements;
  }
  return util::Status::ok();
}

void Driver::restore_waiting(const jobgraph::JobRequest& request,
                             std::uint64_t attempted_version,
                             int postponements, int /*shard_hint*/) {
  report_.recorder.on_submit(request);
  if (cluster::JobRecord* record = report_.recorder.find(request.id)) {
    record->postponements = postponements;
  }
  queue_.push_back({request, attempted_version});
}

util::Status Driver::finish_restore() {
  if (util::Status status = check::validate(state_); !status) {
    return status.error().with_context("restored cluster state");
  }
  arm_completion_event();
  return util::Status::ok();
}

void Driver::on_arrival(const jobgraph::JobRequest& request) {
  pending_arrivals_.erase(request.id);
  queue_.push_back({request, ~0ULL});
  scheduling_pass();
}

void Driver::on_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  const double now = engine_.now();
  const std::int64_t t0_us = obs::wall_now_us();
  // Jobs whose stored finish time has been reached (ties arrive together:
  // identical rate regimes store bitwise-equal finish times). No
  // cluster-wide banking — every untouched job's progress extrapolates
  // exactly from its regime anchor, and remove() re-rates only the
  // machine/link sharers of each finished job.
  const std::vector<int> done = state_.due_completions(now);
  for (const int id : done) {
    state_.remove(id, now);
    report_.recorder.on_finish(id, now);
  }
  const double advance_us = static_cast<double>(obs::wall_now_us() - t0_us);
  report_.advance_seconds += advance_us * 1e-6;
  ++report_.advance_count;
  report_.advance_latency_us.record(advance_us);
  GTS_METRIC_HISTOGRAM("sched.advance_latency_us", advance_us,
                       obs::latency_bounds_us());
  if (!done.empty()) ++capacity_version_;
  scheduling_pass();
}

void Driver::checkpoint_progress() {
  state_.bank_progress(engine_.now());
  arm_completion_event();
}

void Driver::arm_completion_event() {
  if (completion_event_ != sim::kInvalidEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (const auto next = state_.next_completion(engine_.now())) {
    completion_event_ = engine_.schedule_at(
        next->second, [this]() { on_completion_event(); });
  }
}

void Driver::scheduling_pass() {
  const double now = engine_.now();
  obs::SpanGuard pass_span(obs::kSched, "sched.pass");
  pass_span.arg("queue", static_cast<double>(queue_.size()));

  // Algorithm 1: offer queued jobs oldest-first while resources remain.
  bool placed_any = false;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (state_.free_gpu_count() == 0) break;
    if (it->attempted_version == capacity_version_) {
      // Already declined at this capacity state; nothing has freed since.
      if (scheduler_.blocking_queue()) break;
      ++it;
      continue;
    }
    const jobgraph::JobRequest& request = it->request;

    obs::SpanGuard decision_span(obs::kSched, "sched.decide");
    decision_span.arg("job", request.id)
        .arg("gpus", request.num_gpus);
    std::optional<obs::DecisionScope> explain_scope;
    if (obs::explain_enabled()) {
      explain_scope.emplace(scheduler_.name(), request.id, request.num_gpus,
                            request.min_utility, now);
    }

    const std::int64_t t0_us = obs::wall_now_us();
    std::optional<Placement> placement = scheduler_.place(request, state_);
    const double decision_us =
        static_cast<double>(obs::wall_now_us() - t0_us);
    const double decision_seconds = decision_us * 1e-6;
    report_.decision_seconds += decision_seconds;
    ++report_.decision_count;
    report_.decision_latency_us.record(decision_us);
    GTS_METRIC_COUNT("sched.decisions", 1);
    GTS_METRIC_HISTOGRAM("sched.decision_latency_us", decision_us,
                         obs::latency_bounds_us());
    GTS_METRIC_WINDOW("sched.decision_latency_us", decision_us,
                      obs::latency_bounds_us());

    if (!placement) {
      it->attempted_version = capacity_version_;
      report_.recorder.on_postpone(request.id);
      GTS_METRIC_COUNT("sched.declines", 1);
      GTS_FLIGHT_AT(obs::FlightKind::kPostponement, request.id, decision_us,
                    static_cast<double>(queue_.size()),
                    scheduler_.blocking_queue() ? "postponed" : "declined",
                    now);
      if (explain_scope) {
        explain_scope->record().outcome =
            scheduler_.blocking_queue() ? "postponed" : "declined";
        explain_scope->record().decision_us = decision_us;
        explain_scope->commit();
      }
      if (scheduler_.blocking_queue()) break;  // strict FIFO head blocking
      ++it;
      continue;
    }
    if (options_.self_audit) {
      const util::Status audit =
          check::audit_placement(request, placement->gpus, state_);
      GTS_CHECK(audit.is_ok(), "placement audit for job ", request.id, ": ",
                audit.error().message);
    }
    double utility = placement->utility;
    if (options_.evaluate_utility && utility == 0.0) {
      utility =
          shared_utility_.placement_utility(request, placement->gpus, state_);
    }
    if (explain_scope) {
      // Eq. 3/4/5 breakdown of the chosen mapping, evaluated against the
      // pre-placement state (interference looks at the disturbed jobs).
      const UtilityBreakdown breakdown =
          shared_utility_.evaluate(request, placement->gpus, state_);
      obs::DecisionRecord& record = explain_scope->record();
      record.outcome = "placed";
      record.gpus = placement->gpus;
      record.satisfied = placement->satisfied;
      record.decision_us = decision_us;
      record.chosen.comm_cost = breakdown.comm_cost;
      record.chosen.comm_utility = breakdown.comm_utility;
      record.chosen.interference = breakdown.interference;
      record.chosen.frag_omega = breakdown.frag_omega;
      record.chosen.frag_utility = breakdown.frag_utility;
      record.chosen.comm_weight = breakdown.comm_weight;
      record.chosen.utility = utility != 0.0 ? utility : breakdown.utility;
      record.chosen.has_breakdown = true;
      explain_scope->commit();
    }
    state_.place(request, placement->gpus, now, utility);
    const cluster::RunningJob* running = state_.find(request.id);
    report_.recorder.on_place(request.id, now, placement->gpus, utility,
                              running != nullptr && running->p2p);
    GTS_METRIC_COUNT("sched.placements", 1);
    if (utility + 1e-9 < request.min_utility) {
      GTS_METRIC_COUNT("sched.degradations", 1);
    }
    GTS_METRIC_WINDOW("sched.placements", 1.0, obs::depth_bounds());
    GTS_FLIGHT_AT(obs::FlightKind::kDecision, request.id, decision_us,
                  utility, "placed", now);
    it = queue_.erase(it);
    placed_any = true;
  }
  if (options_.record_series) {
    report_.recorder.sample(state_, now);
  }
  GTS_METRIC_WINDOW("sched.queue_depth",
                    static_cast<double>(queue_.size()), obs::depth_bounds());
  GTS_METRIC_WINDOW("cluster.fragmentation", state_.fragmentation(),
                    obs::fraction_bounds());
  (void)placed_any;
  arm_completion_event();
}

}  // namespace gts::sched
