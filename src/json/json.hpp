// Minimal JSON value model, recursive-descent parser, and writer.
//
// The paper's prototype "continuously loads JSON files containing the
// necessary information about the submitted jobs" (Section 5.1); gts_trace
// preserves that manifest-driven workflow, so the library carries its own
// dependency-free JSON implementation.
//
// Supported: objects, arrays, strings (with \uXXXX escapes, BMP only),
// numbers (doubles), booleans, null. Trailing commas and comments are
// rejected, mirroring strict RFC 8259 behaviour.
//
// The parser also handles untrusted bytes (the svc wire protocol feeds it
// socket input): surrogate-range \uXXXX escapes — paired (non-BMP) or
// lone — are rejected with a clean error instead of emitting invalid
// UTF-8, and container nesting deeper than kMaxParseDepth is rejected
// instead of recursing toward stack exhaustion.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace gts::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys ordered, making writer output deterministic.
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

/// A JSON document node with value semantics.
class Value {
 public:
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}                 // NOLINT
  Value(bool b) : type_(Type::kBool), bool_(b) {}               // NOLINT
  Value(double n) : type_(Type::kNumber), number_(n) {}         // NOLINT
  Value(int n) : Value(static_cast<double>(n)) {}               // NOLINT
  Value(long long n) : Value(static_cast<double>(n)) {}         // NOLINT
  Value(std::size_t n) : Value(static_cast<double>(n)) {}       // NOLINT
  Value(const char* s) : type_(Type::kString), string_(s) {}    // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? number_ : fallback;
  }
  long long as_int(long long fallback = 0) const noexcept {
    return is_number() ? static_cast<long long>(number_) : fallback;
  }
  const std::string& as_string() const noexcept {
    static const std::string kEmpty;
    return is_string() ? string_ : kEmpty;
  }
  const Array& as_array() const noexcept {
    static const Array kEmpty;
    return is_array() ? array_ : kEmpty;
  }
  const Object& as_object() const noexcept {
    static const Object kEmpty;
    return is_object() ? object_ : kEmpty;
  }
  Array& mutable_array() {
    if (!is_array()) *this = Value(Array{});
    return array_;
  }
  Object& mutable_object() {
    if (!is_object()) *this = Value(Object{});
    return object_;
  }

  /// Object member lookup; returns a shared null Value when absent or when
  /// this node is not an object.
  const Value& at(const std::string& key) const noexcept;
  bool contains(const std::string& key) const noexcept {
    return is_object() && object_.count(key) > 0;
  }
  /// Inserts/overwrites an object member (converts this node to an object).
  void set(const std::string& key, Value value) {
    mutable_object()[key] = std::move(value);
  }

  bool operator==(const Value& other) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Maximum object/array nesting the parser accepts. Deeper documents get
/// a clean error; the bound keeps recursion far from stack limits even
/// under sanitizers.
inline constexpr int kMaxParseDepth = 192;

/// Parses a complete JSON document. Errors carry 1-based line/column info.
util::Expected<Value> parse(std::string_view text);

struct WriteOptions {
  /// Pretty-print with this indent width; 0 means compact single-line.
  int indent = 0;
};

/// Serializes a Value; round-trips through parse().
std::string write(const Value& value, const WriteOptions& options = {});

/// Convenience: reads and parses a file.
util::Expected<Value> parse_file(const std::string& path);

/// Convenience: serializes to a file, returning false on I/O failure.
util::Status write_file(const Value& value, const std::string& path,
                        const WriteOptions& options = {});

}  // namespace gts::json
