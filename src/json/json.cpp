#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace gts::json {

const Value& Value::at(const std::string& key) const noexcept {
  static const Value kNull;
  if (!is_object()) return kNull;
  const auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  util::Expected<Value> parse_document() {
    skip_whitespace();
    auto value = parse_value();
    if (!value) return value;
    skip_whitespace();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  util::Error too_deep() const {
    return error(
        util::fmt("nesting deeper than {} levels", kMaxParseDepth));
  }

  util::Error error(const std::string& message) const {
    int line = 1;
    int column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return util::Error{
        util::fmt("json: line {}: column {}: {}", line, column, message)};
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return at_end() ? '\0' : text_[pos_]; }
  char advance() noexcept { return at_end() ? '\0' : text_[pos_++]; }

  void skip_whitespace() noexcept {
    while (!at_end()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view literal) noexcept {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  util::Expected<Value> parse_value() {
    if (at_end()) return error("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string().map([](const std::string& s) { return Value(s); });
      case 't':
        if (consume_literal("true")) return Value(true);
        return error("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        return error("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        return error("invalid literal");
      default:
        return parse_number();
    }
  }

  util::Expected<Value> parse_object() {
    if (depth_ >= kMaxParseDepth) return too_deep();
    ++depth_;
    auto result = parse_object_body();
    --depth_;
    return result;
  }

  util::Expected<Value> parse_object_body() {
    advance();  // '{'
    Object object;
    skip_whitespace();
    if (peek() == '}') {
      advance();
      return Value(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') return error("expected string key");
      auto key = parse_string();
      if (!key) return key.error();
      skip_whitespace();
      if (advance() != ':') return error("expected ':' after key");
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      object[*key] = std::move(*value);
      skip_whitespace();
      const char c = advance();
      if (c == '}') return Value(std::move(object));
      if (c != ',') return error("expected ',' or '}' in object");
    }
  }

  util::Expected<Value> parse_array() {
    if (depth_ >= kMaxParseDepth) return too_deep();
    ++depth_;
    auto result = parse_array_body();
    --depth_;
    return result;
  }

  util::Expected<Value> parse_array_body() {
    advance();  // '['
    Array array;
    skip_whitespace();
    if (peek() == ']') {
      advance();
      return Value(std::move(array));
    }
    while (true) {
      skip_whitespace();
      auto value = parse_value();
      if (!value) return value;
      array.push_back(std::move(*value));
      skip_whitespace();
      const char c = advance();
      if (c == ']') return Value(std::move(array));
      if (c != ',') return error("expected ',' or ']' in array");
    }
  }

  util::Expected<std::string> parse_string() {
    advance();  // '"'
    std::string out;
    while (true) {
      if (at_end()) return error("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          return error("raw control character in string");
        }
        out.push_back(c);
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("invalid \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDFFF) {
            // Surrogate range: either half of a non-BMP pair or a lone
            // surrogate. The library is BMP-only; reject cleanly rather
            // than emit CESU-8 / invalid UTF-8.
            return error(
                "surrogate \\u escape (non-BMP or unpaired) unsupported");
          }
          append_utf8(out, code);
          break;
        }
        default:
          return error("invalid escape sequence");
      }
    }
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  util::Expected<Value> parse_number() {
    const size_t start = pos_;
    if (peek() == '-') advance();
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return error("invalid number");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.') {
      advance();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      advance();
      if (peek() == '+' || peek() == '-') advance();
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return error("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    const auto parsed =
        util::parse_double(text_.substr(start, pos_ - start));
    if (!parsed) return error("unparseable number");
    return Value(*parsed);
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void write_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostringstream& os, double n) {
  if (std::isnan(n) || std::isinf(n)) {
    os << "null";  // JSON has no NaN/Inf; null is the safest degradation.
    return;
  }
  if (n == static_cast<double>(static_cast<long long>(n)) &&
      std::fabs(n) < 1e15) {
    os << static_cast<long long>(n);
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", n);
  os << buffer;
}

void write_value(std::ostringstream& os, const Value& value, int indent,
                 int depth) {
  const std::string pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* space = indent > 0 ? " " : "";
  switch (value.type()) {
    case Type::kNull:
      os << "null";
      break;
    case Type::kBool:
      os << (value.as_bool() ? "true" : "false");
      break;
    case Type::kNumber:
      write_number(os, value.as_number());
      break;
    case Type::kString:
      write_escaped(os, value.as_string());
      break;
    case Type::kArray: {
      const Array& array = value.as_array();
      if (array.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (size_t i = 0; i < array.size(); ++i) {
        os << pad;
        write_value(os, array[i], indent, depth + 1);
        if (i + 1 < array.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case Type::kObject: {
      const Object& object = value.as_object();
      if (object.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      size_t i = 0;
      for (const auto& [key, member] : object) {
        os << pad;
        write_escaped(os, key);
        os << ':' << space;
        write_value(os, member, indent, depth + 1);
        if (++i < object.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

}  // namespace

util::Expected<Value> parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string write(const Value& value, const WriteOptions& options) {
  std::ostringstream os;
  write_value(os, value, options.indent, 0);
  return os.str();
}

util::Expected<Value> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Error{util::fmt("cannot open {}", path)};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = parse(buffer.str());
  if (!result) return result.error().with_context(path);
  return result;
}

util::Status write_file(const Value& value, const std::string& path,
                        const WriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return util::Error{util::fmt("cannot open {} for writing", path)};
  out << write(value, options) << '\n';
  return out.good() ? util::Status::ok()
                    : util::Status(util::Error{util::fmt("write to {} failed", path)});
}

}  // namespace gts::json
