// Blocking client for the scheduler-service wire protocol: connects to a
// gts_schedd daemon over its Unix-domain or TCP socket and performs
// request/response round trips. Used by gts_ctl, bench_service_load, and
// the service tests; sessions are single-threaded (one outstanding
// request at a time), matching the protocol's per-connection ordering.
#pragma once

#include <string>

#include "json/json.hpp"
#include "svc/protocol.hpp"
#include "util/expected.hpp"

namespace gts::svc {

class Client {
 public:
  static util::Expected<Client> connect_unix(const std::string& path);
  static util::Expected<Client> connect_tcp(const std::string& host,
                                            int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One round trip; request ids are assigned sequentially per client.
  /// The returned Response may be a failure (ok == false) — transport
  /// errors are the Expected error, protocol errors are in the Response.
  util::Expected<Response> call(const std::string& verb,
                                json::Value params = {});

  /// Round trip for a caller-built request (tests exercise malformed
  /// versions through this).
  util::Expected<Response> roundtrip(const Request& request);

  /// Sends raw bytes and reads one reply line (adversarial tests).
  util::Expected<Response> roundtrip_raw(const std::string& line);

 private:
  explicit Client(int fd) : fd_(fd) {}
  util::Status send_all(const std::string& data);
  util::Expected<std::string> read_line();

  int fd_ = -1;
  long long next_id_ = 1;
  std::string buffer_;  // bytes past the last consumed newline
};

}  // namespace gts::svc
