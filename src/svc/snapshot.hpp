// Crash-recovery snapshot format for the scheduler service
// (DESIGN.md section 14.3).
//
// A snapshot is a versioned JSON document capturing everything the
// daemon's decisions depend on:
//
//   {"schema_version": 1, "kind": "svc_snapshot",
//    "now": <simulated seconds>, "capacity_version": <n>,
//    "draining": <bool>, "next_auto_id": <n>,
//    "running":  [{"manifest": {...}, "gpus": [...], "start_time": t,
//                  "progress_iterations": x, "placement_utility": u,
//                  "noise_factor": f}, ...],
//    "waiting":  [{"manifest": {...}, "attempted_version": v|-1}, ...],
//    "pending":  [{"manifest": {...}}, ...],
//    "history":  [<terminal status records>, ...]}
//
// Jobs are stored as their Section 5.1 manifests; profiles are re-derived
// from the workload model on restore (they are a pure function of the
// manifest, the model, and the topology). Restore replays every running
// placement through check::audit_placement and the rebuilt cluster state
// through check::validate, so a stale or hand-edited snapshot fails
// loudly instead of corrupting the daemon.
#pragma once

#include "json/json.hpp"
#include "util/expected.hpp"

namespace gts::svc {

inline constexpr int kSnapshotSchemaVersion = 1;
inline constexpr std::string_view kSnapshotKind = "svc_snapshot";

/// Structural validation of a snapshot document (schema version, kind,
/// required fields and their types). restore_json performs it implicitly;
/// tools/validate_trace.py is the out-of-process twin.
util::Status validate_snapshot_json(const json::Value& document);

}  // namespace gts::svc
