#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "jobgraph/manifest.hpp"
#include "json/json.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "perf/profile.hpp"
#include "shard/sharded_driver.hpp"
#include "util/strings.hpp"

namespace gts::svc {

namespace {

sched::DriverOptions make_driver_options(const ServiceOptions& options) {
  sched::DriverOptions driver_options;
  driver_options.utility_weights = options.weights;
  driver_options.self_audit = options.self_audit;
  driver_options.parallel_scoring = options.config.parallel_scoring;
  driver_options.scoring_threads = options.config.scoring_threads;
  return driver_options;
}

std::unique_ptr<sched::DriverApi> make_driver(
    const topo::TopologyGraph& topology, const perf::DlWorkloadModel& model,
    const ServiceOptions& options, sched::Scheduler& scheduler) {
  if (options.config.shard_count > 1) {
    shard::ShardedOptions sharded;
    sharded.shards = options.config.shard_count;
    sharded.shard_threads = options.config.shard_threads;
    sharded.policy = options.config.policy;
    sharded.driver = make_driver_options(options);
    return std::make_unique<shard::ShardedDriver>(topology, model,
                                                  std::move(sharded));
  }
  return std::make_unique<sched::Driver>(topology, model, scheduler,
                                         make_driver_options(options));
}

json::Value int_array(const std::vector<int>& values) {
  json::Array array;
  array.reserve(values.size());
  for (const int value : values) array.push_back(value);
  return json::Value{std::move(array)};
}

json::Value int_array(std::span<const int> values) {
  json::Array array;
  array.reserve(values.size());
  for (const int value : values) array.push_back(value);
  return json::Value{std::move(array)};
}

}  // namespace

ServiceCore::ServiceCore(const topo::TopologyGraph& topology,
                         const perf::DlWorkloadModel& model,
                         ServiceOptions options)
    : topology_(topology),
      model_(model),
      options_(std::move(options)),
      scheduler_(sched::make_scheduler(options_.config.policy,
                                       options_.weights)),
      driver_(make_driver(topology_, model_, options_, *scheduler_)) {}

int ServiceCore::admission_depth() const noexcept {
  return driver_->queue_depth() + driver_->pending_count();
}

Response ServiceCore::handle(const Request& request) {
  util::SerialGuard guard(serial_);
  return handle_one(request);
}

Response ServiceCore::handle_one(const Request& request) {
  obs::SpanGuard span(obs::kSvc, "svc.request");
  span.arg("request_id", static_cast<double>(request.id));
  const auto t0 = std::chrono::steady_clock::now();
  Response response = dispatch(request);
  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count();
  span.arg("ok", response.ok ? 1.0 : 0.0);
  GTS_METRIC_COUNT("svc.requests", 1);
  if (!response.ok) GTS_METRIC_COUNT("svc.request_errors", 1);
  GTS_METRIC_HISTOGRAM("svc.request_latency_us", latency_us,
                       obs::latency_bounds_us());
  GTS_METRIC_GAUGE_SET("svc.queue_depth",
                       static_cast<double>(admission_depth()));
  GTS_METRIC_WINDOW("svc.request_latency_us", latency_us,
                    obs::latency_bounds_us());
  GTS_METRIC_WINDOW("svc.requests", 1.0, obs::depth_bounds());
  GTS_METRIC_WINDOW("svc.queue_depth",
                    static_cast<double>(admission_depth()),
                    obs::depth_bounds());
  return response;
}

std::vector<Response> ServiceCore::handle_batch(
    const std::vector<Request>& requests) {
  util::SerialGuard guard(serial_);
  obs::SpanGuard span(obs::kSvc, "svc.batch");
  span.arg("requests", static_cast<double>(requests.size()));
  GTS_METRIC_COUNT("svc.batches", 1);
  GTS_METRIC_HISTOGRAM("svc.batch_size",
                       static_cast<double>(requests.size()),
                       obs::depth_bounds());
  GTS_FLIGHT_AT(obs::FlightKind::kBatch, -1,
                static_cast<double>(requests.size()), 0.0, "batch",
                driver_->now());
  std::vector<Response> responses;
  responses.reserve(requests.size());
  // Dispatch in arrival order under one serial entry: each request goes
  // through exactly the per-request path handle() takes, so a batch of N
  // is semantically N sequential handle() calls — placements, queue and
  // backpressure behavior are identical by construction
  // (tests/service_batch_test.cpp holds the responses to that).
  for (const Request& request : requests) {
    responses.push_back(handle_one(request));
  }
  return responses;
}

Response ServiceCore::handle_line(std::string_view line) {
  auto request = parse_request(line);
  if (!request) {
    return Response::failure(0, ErrorCode::kParse, request.error().message);
  }
  return handle(*request);
}

Response ServiceCore::dispatch(const Request& request) {
  if (request.version != kProtocolVersion) {
    return Response::failure(
        request.id, ErrorCode::kUnsupportedVersion,
        util::fmt("protocol version {} unsupported; this daemon speaks {}",
                  request.version, kProtocolVersion));
  }
  if (request.verb == "ping") return verb_ping(request);
  if (request.verb == "submit") return verb_submit(request);
  if (request.verb == "status") return verb_status(request);
  if (request.verb == "list") return verb_list(request);
  if (request.verb == "cancel") return verb_cancel(request);
  if (request.verb == "topology") return verb_topology(request);
  if (request.verb == "metrics") return verb_metrics(request);
  if (request.verb == "metrics_prom") return verb_metrics_prom(request);
  if (request.verb == "shards") return verb_shards(request);
  if (request.verb == "dump") return verb_dump(request);
  if (request.verb == "advance") return verb_advance(request);
  if (request.verb == "snapshot") return verb_snapshot(request);
  if (request.verb == "drain") return verb_drain(request);
  if (request.verb == "shutdown") return verb_shutdown(request);
  return Response::failure(request.id, ErrorCode::kUnknownVerb,
                           util::fmt("unknown verb '{}'", request.verb));
}

Response ServiceCore::verb_ping(const Request& request) {
  json::Value result;
  result.set("now", driver_->now());
  result.set("protocol", kProtocolVersion);
  result.set("policy", std::string(scheduler_->name()));
  result.set("shards", driver_->shard_count());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::submit_one(long long request_id,
                                 jobgraph::JobRequest job) {
  if (admission_depth() >= options_.config.max_queue) {
    GTS_METRIC_COUNT("svc.backpressure", 1);
    GTS_FLIGHT_AT(obs::FlightKind::kBackpressure, job.id,
                  static_cast<double>(admission_depth()),
                  static_cast<double>(options_.config.retry_after_ms),
                  "queue_full", driver_->now());
    return Response::failure(
        request_id, ErrorCode::kBackpressure,
        util::fmt("admission queue full ({} jobs); retry later",
                  options_.config.max_queue),
        options_.config.retry_after_ms);
  }
  // Wire submissions carry only the manifest; the profile anchors come
  // from the same model-backed profiling the batch paths use, keeping
  // service and prototype placements identical on the same workload.
  perf::fill_profile(job, model_, topology_);
  const sched::SubmitResult outcome = driver_->submit(job);
  switch (outcome) {
    case sched::SubmitResult::kAccepted: {
      if (job.id >= next_auto_id_) next_auto_id_ = job.id + 1;
      GTS_FLIGHT_AT(obs::FlightKind::kAdmission, job.id,
                    static_cast<double>(admission_depth()),
                    static_cast<double>(job.num_gpus), "accepted",
                    driver_->now());
      json::Value result;
      result.set("id", job.id);
      result.set("status", "accepted");
      result.set("queue_depth", admission_depth());
      return Response::success(request_id, std::move(result));
    }
    case sched::SubmitResult::kDuplicate:
      return Response::failure(
          request_id, ErrorCode::kConflict,
          util::fmt("job id {} already submitted", job.id));
    case sched::SubmitResult::kNeverFits: {
      rejected_.insert(job.id);
      json::Value record;
      record.set("id", job.id);
      record.set("state", "rejected");
      record.set("arrival", job.arrival_time);
      record.set("num_gpus", job.num_gpus);
      history_[job.id] = std::move(record);
      return Response::failure(
          request_id, ErrorCode::kBadRequest,
          util::fmt("job {} can never fit this cluster", job.id));
    }
    case sched::SubmitResult::kDraining:
      return Response::failure(request_id, ErrorCode::kDraining,
                               "daemon is draining; submit refused");
  }
  return Response::failure(request_id, ErrorCode::kInternal,
                           "unhandled submit outcome");
}

Response ServiceCore::verb_submit(const Request& request) {
  const json::Value& params = request.params;
  const bool has_job = params.contains("job");
  const bool has_manifest = params.contains("manifest");
  if (has_job == has_manifest) {
    return Response::failure(
        request.id, ErrorCode::kBadRequest,
        "submit takes exactly one of params.job (manifest object) or "
        "params.manifest (manifest file path)");
  }
  if (has_job) {
    json::Value manifest = params.at("job");
    if (!manifest.is_object()) {
      return Response::failure(request.id, ErrorCode::kBadRequest,
                               "params.job must be a manifest object");
    }
    if (!manifest.contains("id")) manifest.set("id", next_auto_id_);
    auto job = jobgraph::from_manifest(manifest);
    if (!job) {
      return Response::failure(request.id, ErrorCode::kBadRequest,
                               job.error().message);
    }
    return submit_one(request.id, std::move(*job));
  }
  const std::string path = params.at("manifest").as_string();
  auto jobs = jobgraph::load_manifest_file(path);
  if (!jobs) {
    return Response::failure(request.id, ErrorCode::kBadRequest,
                             jobs.error().message);
  }
  // Batch submit: per-job outcomes, so one full queue or duplicate id
  // doesn't hide what happened to the rest of the file.
  json::Array results;
  int accepted = 0;
  for (jobgraph::JobRequest& job : *jobs) {
    const int job_id = job.id;
    const Response outcome = submit_one(request.id, std::move(job));
    json::Value entry;
    entry.set("id", job_id);
    if (outcome.ok) {
      entry.set("status", "accepted");
      ++accepted;
    } else {
      entry.set("status", std::string(to_string(outcome.code)));
      entry.set("message", outcome.message);
      if (outcome.retry_after_ms >= 0.0) {
        entry.set("retry_after_ms", outcome.retry_after_ms);
      }
    }
    results.push_back(std::move(entry));
  }
  json::Value result;
  result.set("accepted", accepted);
  result.set("total", results.size());
  result.set("results", std::move(results));
  result.set("queue_depth", admission_depth());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_status(const Request& request) {
  if (!request.params.at("id").is_number()) {
    return Response::failure(request.id, ErrorCode::kBadRequest,
                             "status requires numeric params.id");
  }
  const int job_id = static_cast<int>(request.params.at("id").as_int());
  reconcile_history();
  json::Value result;
  result.set("id", job_id);
  bool found = false;
  driver_->visit_running([&](const sched::RunningJobView& view) {
    if (view.request->id != job_id) return true;
    found = true;
    result.set("state", "running");
    result.set("arrival", view.request->arrival_time);
    result.set("start", view.start_time);
    result.set("gpus", int_array(view.gpus));
    // Progress is banked lazily on state changes; report it as of `now`.
    const double live_progress =
        view.progress_iterations +
        view.rate * (driver_->now() - view.last_update);
    result.set("progress_iterations",
               std::min(live_progress,
                        static_cast<double>(view.request->iterations)));
    result.set("iterations", view.request->iterations);
    result.set("placement_utility", view.placement_utility);
    if (const auto record = driver_->job_record(job_id)) {
      result.set("postponements", record->postponements);
      result.set("degradation_events", record->degradation_events);
      result.set("queue_time", record->waiting_time());
      result.set("slo_violated", record->slo_violated());
    }
    return false;
  });
  if (found) return Response::success(request.id, std::move(result));
  driver_->visit_waiting([&](const sched::WaitingView& view) {
    if (view.request->id != job_id) return true;
    found = true;
    result.set("state", "queued");
    result.set("arrival", view.request->arrival_time);
    result.set("num_gpus", view.request->num_gpus);
    result.set("waited", driver_->now() - view.request->arrival_time);
    if (const auto record = driver_->job_record(job_id)) {
      result.set("postponements", record->postponements);
    }
    return false;
  });
  if (found) return Response::success(request.id, std::move(result));
  for (const jobgraph::JobRequest& pending : driver_->pending_arrivals()) {
    if (pending.id != job_id) continue;
    result.set("state", "pending_arrival");
    result.set("arrival", pending.arrival_time);
    return Response::success(request.id, std::move(result));
  }
  if (const auto it = history_.find(job_id); it != history_.end()) {
    return Response::success(request.id, it->second);
  }
  return Response::failure(request.id, ErrorCode::kNotFound,
                           util::fmt("unknown job id {}", job_id));
}

Response ServiceCore::verb_list(const Request& request) {
  reconcile_history();
  json::Array running;
  driver_->visit_running([&](const sched::RunningJobView& view) {
    running.push_back(view.request->id);
    return true;
  });
  json::Array queued;
  driver_->visit_waiting([&](const sched::WaitingView& view) {
    queued.push_back(view.request->id);
    return true;
  });
  json::Array pending;
  for (const jobgraph::JobRequest& job : driver_->pending_arrivals()) {
    pending.push_back(job.id);
  }
  json::Array finished;
  json::Array cancelled;
  json::Array rejected;
  for (const auto& [id, record] : history_) {
    const std::string& state = record.at("state").as_string();
    if (state == "finished") {
      finished.push_back(id);
    } else if (state == "cancelled") {
      cancelled.push_back(id);
    } else {
      rejected.push_back(id);
    }
  }
  json::Value result;
  result.set("now", driver_->now());
  result.set("draining", driver_->draining());
  result.set("queue_depth", admission_depth());
  result.set("capacity_version", driver_->capacity_version());
  result.set("running", std::move(running));
  result.set("queued", std::move(queued));
  result.set("pending", std::move(pending));
  result.set("finished", std::move(finished));
  result.set("cancelled", std::move(cancelled));
  result.set("rejected", std::move(rejected));
  if (request.params.at("detail").as_bool(false)) {
    // Per-job lifecycle table (gts_top's job pane): one row per known
    // job with state, timing, and SLO accounting.
    json::Array jobs;
    driver_->visit_running([&](const sched::RunningJobView& view) {
      json::Value row;
      row.set("id", view.request->id);
      row.set("state", "running");
      row.set("arrival", view.request->arrival_time);
      row.set("start", view.start_time);
      row.set("num_gpus", view.request->num_gpus);
      row.set("placement_utility", view.placement_utility);
      const double live_progress =
          view.progress_iterations +
          view.rate * (driver_->now() - view.last_update);
      row.set("progress",
              view.request->iterations > 0
                  ? std::min(live_progress /
                                 static_cast<double>(view.request->iterations),
                             1.0)
                  : 0.0);
      if (const auto record = driver_->job_record(view.request->id)) {
        row.set("postponements", record->postponements);
        row.set("queue_time", record->waiting_time());
        row.set("slo_violated", record->slo_violated());
      }
      jobs.push_back(std::move(row));
      return true;
    });
    driver_->visit_waiting([&](const sched::WaitingView& view) {
      json::Value row;
      row.set("id", view.request->id);
      row.set("state", "queued");
      row.set("arrival", view.request->arrival_time);
      row.set("num_gpus", view.request->num_gpus);
      row.set("waited", driver_->now() - view.request->arrival_time);
      if (const auto record = driver_->job_record(view.request->id)) {
        row.set("postponements", record->postponements);
      }
      jobs.push_back(std::move(row));
      return true;
    });
    for (const jobgraph::JobRequest& job : driver_->pending_arrivals()) {
      json::Value row;
      row.set("id", job.id);
      row.set("state", "pending_arrival");
      row.set("arrival", job.arrival_time);
      row.set("num_gpus", job.num_gpus);
      jobs.push_back(std::move(row));
    }
    for (const auto& [id, record] : history_) jobs.push_back(record);
    // Numeric id order across all states: with datacenter-scale clusters
    // the table mixes 1-digit and 5-digit ids, and the per-state section
    // order (running, queued, pending, terminal) read as unsorted.
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const json::Value& a, const json::Value& b) {
                       return a.at("id").as_int() < b.at("id").as_int();
                     });
    result.set("jobs", std::move(jobs));
  }
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_cancel(const Request& request) {
  if (!request.params.at("id").is_number()) {
    return Response::failure(request.id, ErrorCode::kBadRequest,
                             "cancel requires numeric params.id");
  }
  const int job_id = static_cast<int>(request.params.at("id").as_int());
  reconcile_history();
  if (driver_->cancel(job_id)) {
    reconcile_history();
    json::Value result;
    result.set("id", job_id);
    result.set("cancelled", true);
    result.set("now", driver_->now());
    return Response::success(request.id, std::move(result));
  }
  if (history_.count(job_id) > 0) {
    return Response::failure(
        request.id, ErrorCode::kConflict,
        util::fmt("job {} already {}", job_id,
                  history_.at(job_id).at("state").as_string()));
  }
  return Response::failure(request.id, ErrorCode::kNotFound,
                           util::fmt("unknown job id {}", job_id));
}

Response ServiceCore::verb_topology(const Request& request) {
  json::Value result;
  result.set("machines", topology_.machine_count());
  result.set("gpus", topology_.gpu_count());
  result.set("free_gpus", driver_->free_gpu_count());
  result.set("fragmentation", driver_->fragmentation());
  result.set("allocation_version", driver_->allocation_version());
  result.set("shards", driver_->shard_count());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_metrics(const Request& request) {
  reconcile_history();
  const sched::DriverCounters counters = driver_->counters();
  json::Value result;
  result.set("now", driver_->now());
  result.set("queue_depth", admission_depth());
  result.set("running", driver_->running_job_count());
  result.set("terminal", history_.size());
  result.set("decisions", counters.decision_count);
  result.set("decision_seconds", counters.decision_seconds);
  result.set("events", counters.events);
  result.set("rejected_jobs", counters.rejected_jobs);
  result.set("capacity_version", driver_->capacity_version());
  result.set("draining", driver_->draining());
  // Lifecycle / SLO summary over every job the recorder has seen
  // (DESIGN.md section 18.4).
  const sched::LifecycleSummary lifecycle = driver_->lifecycle();
  result.set("postponements", lifecycle.postponements);
  result.set("degradations", lifecycle.degradations);
  result.set("slo_violations", lifecycle.slo_violations);
  result.set("mean_jct_slowdown", lifecycle.mean_jct_slowdown);
  result.set("mean_waiting_time", lifecycle.mean_waiting_time);
  if (driver_->shard_count() > 1) {
    const sched::RouterTelemetry router = driver_->router();
    json::Value routing;
    routing.set("shards", driver_->shard_count());
    routing.set("routed", router.routed);
    routing.set("filtered", router.filtered);
    routing.set("exhausted", router.exhausted);
    result.set("router", std::move(routing));
  }
  if (obs::metrics_enabled()) {
    result.set("registry", obs::Registry::instance().snapshot_json());
  }
  if (obs::windows_enabled()) {
    result.set("windows",
               obs::WindowRegistry::instance().snapshot_json().at("windows"));
  }
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_metrics_prom(const Request& request) {
  reconcile_history();
  json::Value result;
  result.set("content_type", "text/plain; version=0.0.4");
  result.set("text", prometheus_text_locked());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_shards(const Request& request) {
  // Per-cell occupancy plus router telemetry (one summary row per shard;
  // gts_top renders this instead of a per-machine listing at datacenter
  // scale). Works on an unsharded daemon too: one cell, no router
  // traffic.
  const sched::RouterTelemetry router = driver_->router();
  json::Value routing;
  routing.set("routed", router.routed);
  routing.set("filtered", router.filtered);
  routing.set("exhausted", router.exhausted);
  routing.set("route_latency_us", router.route_latency_us.to_json());
  json::Array cells;
  for (const sched::ShardInfo& info : driver_->shard_infos()) {
    json::Value cell;
    cell.set("shard", info.shard);
    cell.set("machines", info.machines);
    cell.set("gpus", info.gpus);
    cell.set("free_gpus", info.free_gpus);
    cell.set("running", info.running);
    cell.set("queued", info.queued);
    cell.set("fragmentation", info.fragmentation);
    cell.set("decisions", info.decisions);
    cell.set("placements", info.placements);
    cell.set("routed", info.routed);
    cells.push_back(std::move(cell));
  }
  json::Value result;
  result.set("now", driver_->now());
  result.set("shards", driver_->shard_count());
  result.set("router", std::move(routing));
  result.set("cells", std::move(cells));
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_dump(const Request& request) {
  const obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  json::Value result;
  result.set("enabled", obs::flight_enabled());
  result.set("capacity", recorder.capacity());
  result.set("recorded", static_cast<double>(recorder.recorded()));
  const std::string path = request.params.at("path").as_string();
  if (!path.empty()) {
    if (auto status = recorder.dump_to_file(path); !status) {
      return Response::failure(request.id, ErrorCode::kInternal,
                               status.error().message);
    }
    result.set("path", path);
  } else {
    result.set("text", recorder.dump_jsonl());
  }
  return Response::success(request.id, std::move(result));
}

std::string ServiceCore::prometheus_text() const {
  util::SerialGuard guard(serial_);
  return prometheus_text_locked();
}

std::string ServiceCore::prometheus_text_locked() const {
  std::string text = obs::prometheus_text();
  // Live gauges computed at scrape time: present (and fresh) even when
  // the cumulative metrics pillar is disabled.
  obs::append_prometheus_gauge(text, "svc.up", "daemon liveness flag", 1.0);
  obs::append_prometheus_gauge(text, "svc.sim_now_seconds",
                               "simulated clock", driver_->now());
  obs::append_prometheus_gauge(
      text, "svc.queue_depth_live",
      "jobs waiting or pending arrival (admission depth)",
      static_cast<double>(admission_depth()));
  obs::append_prometheus_gauge(
      text, "svc.running_jobs_live", "jobs currently placed",
      static_cast<double>(driver_->running_job_count()));
  obs::append_prometheus_gauge(text, "svc.draining",
                               "1 while the daemon refuses new submits",
                               driver_->draining() ? 1.0 : 0.0);
  obs::append_prometheus_gauge(
      text, "cluster.free_gpus_live", "unallocated GPUs",
      static_cast<double>(driver_->free_gpu_count()));
  obs::append_prometheus_gauge(text, "cluster.fragmentation_live",
                               "cluster fragmentation in [0,1]",
                               driver_->fragmentation());
  obs::append_prometheus_gauge(
      text, "sched.decisions_live", "placement attempts so far",
      static_cast<double>(driver_->counters().decision_count));
  if (driver_->shard_count() > 1) {
    const sched::RouterTelemetry router = driver_->router();
    obs::append_prometheus_gauge(text, "shard.count",
                                 "cells the cluster is partitioned into",
                                 static_cast<double>(driver_->shard_count()));
    obs::append_prometheus_gauge(text, "shard.routed_live",
                                 "jobs routed to a cell so far",
                                 static_cast<double>(router.routed));
    obs::append_prometheus_gauge(
        text, "shard.filtered_live",
        "shard candidates rejected by the router's Filter stage",
        static_cast<double>(router.filtered));
    obs::append_prometheus_gauge(
        text, "shard.exhausted_live",
        "routes that fell back after every shard was filtered",
        static_cast<double>(router.exhausted));
    for (const sched::ShardInfo& info : driver_->shard_infos()) {
      const std::string labels =
          "shard=\"" + std::to_string(info.shard) + "\"";
      obs::append_prometheus_gauge_labeled(
          text, "shard.free_gpus_live", "unallocated GPUs per cell", labels,
          static_cast<double>(info.free_gpus));
      obs::append_prometheus_gauge_labeled(
          text, "shard.running_jobs_live", "jobs placed per cell", labels,
          static_cast<double>(info.running));
      obs::append_prometheus_gauge_labeled(
          text, "shard.queue_depth_live", "jobs waiting per cell", labels,
          static_cast<double>(info.queued));
      obs::append_prometheus_gauge_labeled(
          text, "shard.fragmentation_live",
          "per-cell fragmentation in [0,1]", labels, info.fragmentation);
      obs::append_prometheus_gauge_labeled(
          text, "shard.routed_jobs_live", "jobs ever routed to the cell",
          labels, static_cast<double>(info.routed));
    }
  }
  return text;
}

Response ServiceCore::verb_advance(const Request& request) {
  const json::Value& params = request.params;
  const bool has_to = params.contains("to");
  const bool run_all = params.at("all").as_bool(false);
  if (has_to == run_all) {
    return Response::failure(
        request.id, ErrorCode::kBadRequest,
        "advance takes exactly one of params.to (seconds) or params.all");
  }
  if (has_to) {
    if (!params.at("to").is_number()) {
      return Response::failure(request.id, ErrorCode::kBadRequest,
                               "params.to must be a number");
    }
    const double to = params.at("to").as_number();
    if (to < driver_->now() - 1e-9) {
      return Response::failure(
          request.id, ErrorCode::kBadRequest,
          util::fmt("cannot advance into the past (now={})", driver_->now()));
    }
    driver_->advance_to(to);
  } else {
    driver_->advance_all();
  }
  reconcile_history();
  json::Value result;
  result.set("now", driver_->now());
  result.set("idle", driver_->idle());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_snapshot(const Request& request) {
  reconcile_history();
  // Bank running-job progress and re-arm the completion event before
  // serializing: the origin process and one restored from this snapshot
  // then continue with bitwise-identical arithmetic (a snapshot request
  // is part of the decision-determining request sequence).
  driver_->checkpoint_progress();
  const std::string path = request.params.at("path").as_string();
  GTS_FLIGHT_AT(obs::FlightKind::kSnapshot, -1,
                static_cast<double>(driver_->running_job_count()),
                static_cast<double>(driver_->queue_depth()),
                path.empty() ? "inline" : "file", driver_->now());
  if (path.empty()) {
    json::Value result;
    result.set("snapshot", snapshot_json_locked());
    return Response::success(request.id, std::move(result));
  }
  if (auto status = save_snapshot_locked(path); !status) {
    return Response::failure(request.id, ErrorCode::kInternal,
                             status.error().message);
  }
  json::Value result;
  result.set("path", path);
  result.set("now", driver_->now());
  result.set("running", driver_->running_job_count());
  result.set("queued", driver_->queue_depth());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_drain(const Request& request) {
  driver_->drain();
  const bool wait = request.params.at("wait").as_bool(true);
  if (wait) driver_->advance_all();
  reconcile_history();
  json::Value result;
  result.set("draining", true);
  result.set("now", driver_->now());
  result.set("idle", driver_->idle());
  return Response::success(request.id, std::move(result));
}

Response ServiceCore::verb_shutdown(const Request& request) {
  driver_->drain();
  shutdown_requested_ = true;
  json::Value result;
  result.set("shutdown", true);
  result.set("now", driver_->now());
  return Response::success(request.id, std::move(result));
}

json::Value ServiceCore::terminal_record(const cluster::JobRecord& record,
                                         std::string state) const {
  json::Value value;
  value.set("id", record.id);
  value.set("state", std::move(state));
  value.set("arrival", record.arrival);
  value.set("start", record.start);
  value.set("end", record.end);
  value.set("num_gpus", record.num_gpus);
  value.set("gpus", int_array(record.gpus));
  value.set("placement_utility", record.placement_utility);
  value.set("postponements", record.postponements);
  value.set("degradation_events", record.degradation_events);
  value.set("queue_time", record.waiting_time());
  value.set("execution_time", record.execution_time());
  value.set("jct_slowdown", record.jct_slowdown());
  value.set("slo_violated", record.slo_violated());
  return value;
}

void ServiceCore::reconcile_history() {
  driver_->visit_records([&](const cluster::JobRecord& record) {
    if (history_.count(record.id) > 0) return true;
    if (record.cancelled) {
      history_[record.id] = terminal_record(record, "cancelled");
    } else if (record.end >= 0.0) {
      history_[record.id] = terminal_record(record, "finished");
    }
    return true;
  });
}

}  // namespace gts::svc
