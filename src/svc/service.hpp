// Scheduler service core: the verb dispatcher behind the gts_schedd
// daemon (DESIGN.md section 14).
//
// The core is transport-agnostic and single-threaded: the socket server
// feeds it one decoded Request at a time and writes back the Response.
// Simulated time is virtual and advances only through the `advance` and
// `drain` verbs, so a daemon's decision sequence is a pure function of
// the request sequence — which is what makes the snapshot/restore
// continuation byte-identical to an uninterrupted run (tests/svc_test.cpp
// and tools/service_smoke.sh hold it to that).
//
// Verbs: ping, submit (inline manifest object or manifest file), status,
// list, cancel, topology, metrics, metrics_prom, shards, dump, advance,
// snapshot, drain, shutdown.
//
// The core runs against the sched::DriverApi interface: with
// config.shard_count == 1 it owns a classic single sched::Driver; with
// shard_count > 1 it owns a shard::ShardedDriver federation (DESIGN.md
// section 19) — every verb, the snapshot document, and the Prometheus
// gauges work identically on both.
// Admission is bounded: when queued + pending-arrival jobs reach
// max_queue, submit fails with a `backpressure` error carrying a
// retry_after_ms hint.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "config/system_config.hpp"
#include "perf/model.hpp"
#include "sched/driver.hpp"
#include "sched/scheduler.hpp"
#include "svc/protocol.hpp"
#include "topo/topology.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace gts::svc {

struct ServiceOptions {
  /// Admission/backpressure knobs and the placement policy ([service]
  /// section of sys-config.ini; every field has a gts_schedd flag).
  config::ServiceConfig config;
  sched::UtilityWeights weights{};
  /// Driver self-audit (check subsystem) after every simulated event.
  bool self_audit = false;
};

class ServiceCore {
 public:
  ServiceCore(const topo::TopologyGraph& topology,
              const perf::DlWorkloadModel& model, ServiceOptions options = {});

  /// Dispatches one request (version check, then the verb table).
  /// Instrumented: kSvc span, svc.requests / svc.request_latency_us /
  /// svc.queue_depth metrics.
  Response handle(const Request& request);

  /// Dispatches a batch of already-parsed requests in order under one
  /// serial entry (one SerialGuard, one svc.batch span). Response i
  /// answers request i; the sequence of responses is identical to N
  /// individual handle() calls — batching only amortizes the entry cost
  /// and lets the server parse the next batch off this thread.
  std::vector<Response> handle_batch(const std::vector<Request>& requests);

  /// Parses one wire line and dispatches it. Undecodable lines yield a
  /// `parse` failure addressed to id 0; the caller should close the
  /// session afterwards (framing is unrecoverable).
  Response handle_line(std::string_view line);

  /// Set by the `shutdown` verb; the server exits its loop after
  /// flushing pending replies.
  bool shutdown_requested() const noexcept {
    util::SerialGuard guard(serial_);
    return shutdown_requested_;
  }

  const ServiceOptions& options() const noexcept { return options_; }
  sched::DriverApi& driver() noexcept { return *driver_; }
  const sched::DriverApi& driver() const noexcept { return *driver_; }

  /// Jobs counted against max_queue: waiting + pending arrivals.
  int admission_depth() const noexcept;

  /// Prometheus text-format exposition (obs/prom.hpp) plus live service
  /// gauges (queue depth, running jobs, fragmentation, free GPUs) that
  /// stay meaningful even when the metrics pillar is off. Served by the
  /// `metrics_prom` verb and the Server's --prom-port HTTP listener.
  std::string prometheus_text() const;

  // --- snapshot/restore (svc/snapshot.cpp) ---------------------------------
  /// The versioned crash-recovery document (schema_version 1, kind
  /// "svc_snapshot"): simulated clock, capacity version, every running /
  /// waiting / pending-arrival job as its manifest plus execution state,
  /// terminal-job history, and the draining flag.
  json::Value snapshot_json() const;
  /// Rebuilds the core from a snapshot document. Requires a freshly
  /// constructed core (no traffic yet); every running placement is
  /// replayed through check::audit_placement and the restored cluster
  /// state through check::validate before the core accepts traffic.
  util::Status restore_json(const json::Value& document);
  util::Status save_snapshot(const std::string& path) const;
  util::Status load_snapshot(const std::string& path);

 private:
  /// Body of handle(): per-request span + metrics + dispatch, callable
  /// from handle_batch without re-entering the serial capability.
  Response handle_one(const Request& request) GTS_REQUIRES(serial_);
  Response dispatch(const Request& request) GTS_REQUIRES(serial_);
  Response verb_ping(const Request& request) GTS_REQUIRES(serial_);
  Response verb_submit(const Request& request) GTS_REQUIRES(serial_);
  Response verb_status(const Request& request) GTS_REQUIRES(serial_);
  Response verb_list(const Request& request) GTS_REQUIRES(serial_);
  Response verb_cancel(const Request& request) GTS_REQUIRES(serial_);
  Response verb_topology(const Request& request) GTS_REQUIRES(serial_);
  Response verb_metrics(const Request& request) GTS_REQUIRES(serial_);
  Response verb_metrics_prom(const Request& request) GTS_REQUIRES(serial_);
  Response verb_shards(const Request& request) GTS_REQUIRES(serial_);
  Response verb_dump(const Request& request) GTS_REQUIRES(serial_);
  Response verb_advance(const Request& request) GTS_REQUIRES(serial_);
  Response verb_snapshot(const Request& request) GTS_REQUIRES(serial_);
  Response verb_drain(const Request& request) GTS_REQUIRES(serial_);
  Response verb_shutdown(const Request& request) GTS_REQUIRES(serial_);

  /// Admits one parsed job; shared by inline and manifest-file submit.
  Response submit_one(long long request_id, jobgraph::JobRequest job)
      GTS_REQUIRES(serial_);
  /// Folds newly terminal recorder records (finished/cancelled) into
  /// history_, so status/list survive snapshot/restore.
  void reconcile_history() GTS_REQUIRES(serial_);
  json::Value terminal_record(const cluster::JobRecord& record,
                              std::string state) const;

  std::string prometheus_text_locked() const GTS_REQUIRES(serial_);

  /// In-context bodies of the public snapshot entry points, callable from
  /// verb handlers without re-entering the serial capability.
  json::Value snapshot_json_locked() const GTS_REQUIRES(serial_);
  util::Status restore_json_locked(const json::Value& document)
      GTS_REQUIRES(serial_);
  util::Status save_snapshot_locked(const std::string& path) const
      GTS_REQUIRES(serial_);

  const topo::TopologyGraph& topology_;
  const perf::DlWorkloadModel& model_;
  ServiceOptions options_;
  /// Only the unsharded driver borrows this; a ShardedDriver builds its
  /// own per-cell schedulers. Always constructed so verbs can report the
  /// policy name uniformly.
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::DriverApi> driver_;
  /// Single-thread confinement of the session/queue state below: every
  /// public entry point takes a SerialGuard, so the analysis proves no
  /// code path reaches this state except through them (DESIGN.md
  /// section 16.2). The core stays single-threaded by design; this makes
  /// the contract compile-checked instead of comment-enforced.
  mutable util::SerialCapability serial_;
  /// Terminal jobs (finished/cancelled/rejected) as status-shaped JSON,
  /// keyed by job id; carried across snapshot/restore.
  std::map<int, json::Value> history_ GTS_GUARDED_BY(serial_);
  /// Ids refused with never_fits (they briefly touch the recorder).
  std::set<int> rejected_ GTS_GUARDED_BY(serial_);
  int next_auto_id_ GTS_GUARDED_BY(serial_) = 1;
  bool shutdown_requested_ GTS_GUARDED_BY(serial_) = false;
};

}  // namespace gts::svc
