#include "svc/snapshot.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "jobgraph/manifest.hpp"
#include "perf/profile.hpp"
#include "svc/service.hpp"
#include "util/strings.hpp"

namespace gts::svc {

namespace {

/// The waiting-queue "never attempted" sentinel (~0ULL) does not survive a
/// double round-trip; encode it as -1.
json::Value encode_attempted_version(std::uint64_t version) {
  if (version == ~0ULL) return json::Value{-1};
  return json::Value{static_cast<double>(version)};
}

std::uint64_t decode_attempted_version(const json::Value& value) {
  const double raw = value.as_number(-1.0);
  if (raw < 0.0) return ~0ULL;
  return static_cast<std::uint64_t>(raw);
}

util::Status require_array(const json::Value& document, const char* key) {
  if (!document.at(key).is_array()) {
    return util::Error{util::fmt("snapshot: missing array '{}'", key)};
  }
  return util::Status::ok();
}

}  // namespace

util::Status validate_snapshot_json(const json::Value& document) {
  if (!document.is_object()) {
    return util::Error{"snapshot: document is not an object"};
  }
  if (document.at("schema_version").as_int(-1) != kSnapshotSchemaVersion) {
    return util::Error{
        util::fmt("snapshot: schema_version must be {}",
                  kSnapshotSchemaVersion)};
  }
  if (document.at("kind").as_string() != kSnapshotKind) {
    return util::Error{"snapshot: kind must be 'svc_snapshot'"};
  }
  if (!document.at("now").is_number() || document.at("now").as_number() < 0.0) {
    return util::Error{"snapshot: missing non-negative 'now'"};
  }
  if (!document.at("capacity_version").is_number()) {
    return util::Error{"snapshot: missing numeric 'capacity_version'"};
  }
  for (const char* key : {"running", "waiting", "pending", "history"}) {
    if (auto status = require_array(document, key); !status) return status;
  }
  for (const json::Value& entry : document.at("running").as_array()) {
    if (!entry.at("manifest").is_object()) {
      return util::Error{"snapshot: running entry without manifest object"};
    }
    if (!entry.at("gpus").is_array() || entry.at("gpus").as_array().empty()) {
      return util::Error{"snapshot: running entry without gpus"};
    }
    if (!entry.at("start_time").is_number() ||
        !entry.at("progress_iterations").is_number()) {
      return util::Error{
          "snapshot: running entry without start_time/progress_iterations"};
    }
  }
  for (const char* key : {"waiting", "pending"}) {
    for (const json::Value& entry : document.at(key).as_array()) {
      if (!entry.at("manifest").is_object()) {
        return util::Error{
            util::fmt("snapshot: {} entry without manifest object", key)};
      }
    }
  }
  return util::Status::ok();
}

json::Value ServiceCore::snapshot_json() const {
  util::SerialGuard guard(serial_);
  return snapshot_json_locked();
}

json::Value ServiceCore::snapshot_json_locked() const {
  json::Value document;
  document.set("schema_version", kSnapshotSchemaVersion);
  document.set("kind", std::string(kSnapshotKind));
  document.set("now", driver_->now());
  document.set("capacity_version", driver_->capacity_version());
  document.set("draining", driver_->draining());
  document.set("next_auto_id", next_auto_id_);

  json::Array running;
  driver_->visit_running([&](const sched::RunningJobView& view) {
    json::Value entry;
    entry.set("manifest", jobgraph::to_manifest(*view.request));
    json::Array gpus;
    for (const int gpu : view.gpus) gpus.push_back(gpu);
    entry.set("gpus", std::move(gpus));
    entry.set("start_time", view.start_time);
    // Live progress at the snapshot clock: progress is banked lazily (at
    // state changes), so the stored value must include the un-banked run
    // since last_update or the restored job would finish late. The
    // `snapshot` verb banks first (checkpoint_progress), making this the
    // identity and the restored arithmetic bitwise-equal.
    entry.set("progress_iterations",
              std::min(view.progress_iterations +
                           view.rate * (driver_->now() - view.last_update),
                       static_cast<double>(view.request->iterations)));
    entry.set("placement_utility", view.placement_utility);
    entry.set("noise_factor", view.noise_factor);
    if (const auto record = driver_->job_record(view.request->id)) {
      entry.set("postponements", record->postponements);
    }
    running.push_back(std::move(entry));
    return true;
  });
  document.set("running", std::move(running));

  json::Array waiting;
  const bool sharded = driver_->shard_count() > 1;
  driver_->visit_waiting([&](const sched::WaitingView& view) {
    json::Value item;
    item.set("manifest", jobgraph::to_manifest(*view.request));
    item.set("attempted_version",
             encode_attempted_version(view.attempted_version));
    if (const auto record = driver_->job_record(view.request->id)) {
      item.set("postponements", record->postponements);
    }
    // Only sharded daemons persist the owning cell: the field keeps
    // unsharded snapshots byte-identical to the pre-shard format.
    if (sharded) item.set("shard", view.shard);
    waiting.push_back(std::move(item));
    return true;
  });
  document.set("waiting", std::move(waiting));

  json::Array pending;
  for (const jobgraph::JobRequest& job : driver_->pending_arrivals()) {
    json::Value item;
    item.set("manifest", jobgraph::to_manifest(job));
    pending.push_back(std::move(item));
  }
  document.set("pending", std::move(pending));

  json::Array history;
  for (const auto& [id, record] : history_) history.push_back(record);
  document.set("history", std::move(history));
  return document;
}

util::Status ServiceCore::restore_json(const json::Value& document) {
  util::SerialGuard guard(serial_);
  return restore_json_locked(document);
}

util::Status ServiceCore::restore_json_locked(const json::Value& document) {
  if (auto status = validate_snapshot_json(document); !status) return status;

  const double now = document.at("now").as_number();
  const auto capacity_version =
      static_cast<std::uint64_t>(document.at("capacity_version").as_number());
  if (auto status = driver_->begin_restore(now, capacity_version); !status) {
    return status;
  }
  for (const json::Value& entry : document.at("running").as_array()) {
    auto job = jobgraph::from_manifest(entry.at("manifest"));
    if (!job) return job.error().with_context("snapshot running job");
    perf::fill_profile(*job, model_, topology_);
    std::vector<int> gpus;
    for (const json::Value& gpu : entry.at("gpus").as_array()) {
      gpus.push_back(static_cast<int>(gpu.as_int()));
    }
    if (auto status = driver_->restore_running(
            *job, gpus, entry.at("start_time").as_number(),
            entry.at("progress_iterations").as_number(),
            entry.at("placement_utility").as_number(),
            entry.at("noise_factor").as_number(1.0),
            static_cast<int>(entry.at("postponements").as_int(0)));
        !status) {
      return status;
    }
  }
  for (const json::Value& entry : document.at("waiting").as_array()) {
    auto job = jobgraph::from_manifest(entry.at("manifest"));
    if (!job) return job.error().with_context("snapshot waiting job");
    perf::fill_profile(*job, model_, topology_);
    driver_->restore_waiting(
        *job, decode_attempted_version(entry.at("attempted_version")),
        static_cast<int>(entry.at("postponements").as_int(0)),
        static_cast<int>(entry.at("shard").as_int(-1)));
  }
  for (const json::Value& entry : document.at("pending").as_array()) {
    auto job = jobgraph::from_manifest(entry.at("manifest"));
    if (!job) return job.error().with_context("snapshot pending job");
    perf::fill_profile(*job, model_, topology_);
    if (driver_->submit(*job) != sched::SubmitResult::kAccepted) {
      return util::Error{util::fmt(
          "snapshot pending job {}: arrival could not be re-scheduled",
          job->id)};
    }
  }
  if (auto status = driver_->finish_restore(); !status) return status;

  history_.clear();
  rejected_.clear();
  for (const json::Value& record : document.at("history").as_array()) {
    const int id = static_cast<int>(record.at("id").as_int());
    history_[id] = record;
    if (record.at("state").as_string() == "rejected") rejected_.insert(id);
  }
  next_auto_id_ = static_cast<int>(document.at("next_auto_id").as_int(1));
  if (document.at("draining").as_bool(false)) driver_->drain();
  return util::Status::ok();
}

util::Status ServiceCore::save_snapshot(const std::string& path) const {
  util::SerialGuard guard(serial_);
  return save_snapshot_locked(path);
}

util::Status ServiceCore::save_snapshot_locked(const std::string& path) const {
  return json::write_file(snapshot_json_locked(), path, {.indent = 2});
}

util::Status ServiceCore::load_snapshot(const std::string& path) {
  util::SerialGuard guard(serial_);
  auto document = json::parse_file(path);
  if (!document) return document.error().with_context(path);
  if (auto status = restore_json_locked(*document); !status) {
    return status.error().with_context(path);
  }
  return util::Status::ok();
}

}  // namespace gts::svc
