#include "svc/protocol.hpp"

#include "util/strings.hpp"

namespace gts::svc {

namespace {

constexpr struct {
  ErrorCode code;
  std::string_view name;
} kErrorCodeNames[] = {
    {ErrorCode::kParse, "parse"},
    {ErrorCode::kUnsupportedVersion, "unsupported_version"},
    {ErrorCode::kBadRequest, "bad_request"},
    {ErrorCode::kUnknownVerb, "unknown_verb"},
    {ErrorCode::kBackpressure, "backpressure"},
    {ErrorCode::kDraining, "draining"},
    {ErrorCode::kNotFound, "not_found"},
    {ErrorCode::kConflict, "conflict"},
    {ErrorCode::kInternal, "internal"},
};

}  // namespace

std::string_view to_string(ErrorCode code) noexcept {
  for (const auto& entry : kErrorCodeNames) {
    if (entry.code == code) return entry.name;
  }
  return "internal";
}

util::Expected<ErrorCode> parse_error_code(std::string_view name) {
  for (const auto& entry : kErrorCodeNames) {
    if (entry.name == name) return entry.code;
  }
  return util::Error{util::fmt("unknown error code '{}'", std::string(name))};
}

json::Value Request::to_json() const {
  json::Value doc;
  doc.set("v", version);
  doc.set("id", id);
  doc.set("verb", verb);
  if (!params.is_null()) doc.set("params", params);
  return doc;
}

Response Response::success(long long id, json::Value result) {
  Response response;
  response.id = id;
  response.ok = true;
  response.result = std::move(result);
  return response;
}

Response Response::failure(long long id, ErrorCode code, std::string message,
                           double retry_after_ms) {
  Response response;
  response.id = id;
  response.ok = false;
  response.code = code;
  response.message = std::move(message);
  response.retry_after_ms = retry_after_ms;
  return response;
}

json::Value Response::to_json() const {
  json::Value doc;
  doc.set("v", version);
  doc.set("id", id);
  doc.set("ok", ok);
  if (ok) {
    doc.set("result", result);
  } else {
    json::Value error;
    error.set("code", std::string(to_string(code)));
    error.set("message", message);
    if (retry_after_ms >= 0.0) error.set("retry_after_ms", retry_after_ms);
    doc.set("error", std::move(error));
  }
  return doc;
}

namespace {

util::Expected<json::Value> parse_line(std::string_view line) {
  if (line.size() > kMaxLineBytes) {
    return util::Error{util::fmt("line exceeds {} bytes", kMaxLineBytes)};
  }
  auto doc = json::parse(line);
  if (!doc) return doc.error();
  if (!doc->is_object()) return util::Error{"message is not a JSON object"};
  return doc;
}

}  // namespace

util::Expected<Request> parse_request(std::string_view line) {
  auto doc = parse_line(line);
  if (!doc) return doc.error();
  Request request;
  if (!doc->at("v").is_number()) return util::Error{"missing numeric 'v'"};
  request.version = static_cast<int>(doc->at("v").as_int());
  if (!doc->at("id").is_number()) return util::Error{"missing numeric 'id'"};
  request.id = doc->at("id").as_int();
  if (!doc->at("verb").is_string() || doc->at("verb").as_string().empty()) {
    return util::Error{"missing string 'verb'"};
  }
  request.verb = doc->at("verb").as_string();
  if (doc->contains("params")) {
    if (!doc->at("params").is_object()) {
      return util::Error{"'params' must be an object"};
    }
    request.params = doc->at("params");
  }
  return request;
}

util::Expected<Response> parse_response(std::string_view line) {
  auto doc = parse_line(line);
  if (!doc) return doc.error();
  Response response;
  if (!doc->at("v").is_number()) return util::Error{"missing numeric 'v'"};
  response.version = static_cast<int>(doc->at("v").as_int());
  if (!doc->at("id").is_number()) return util::Error{"missing numeric 'id'"};
  response.id = doc->at("id").as_int();
  if (!doc->at("ok").is_bool()) return util::Error{"missing boolean 'ok'"};
  response.ok = doc->at("ok").as_bool();
  if (response.ok) {
    response.result = doc->at("result");
    return response;
  }
  const json::Value& error = doc->at("error");
  if (!error.is_object()) return util::Error{"failure without 'error' object"};
  auto code = parse_error_code(error.at("code").as_string());
  if (!code) return code.error();
  response.code = *code;
  response.message = error.at("message").as_string();
  response.retry_after_ms =
      error.contains("retry_after_ms") ? error.at("retry_after_ms").as_number()
                                       : -1.0;
  return response;
}

std::string encode(const Request& request) {
  std::string line = json::write(request.to_json());
  line.push_back('\n');
  return line;
}

std::string encode(const Response& response) {
  std::string line = json::write(response.to_json());
  line.push_back('\n');
  return line;
}

}  // namespace gts::svc
