#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/strings.hpp"

namespace gts::svc {

namespace {

util::Error socket_error(const char* what) {
  return util::Error{util::fmt("{}: {}", what,
                               std::string(std::strerror(errno)))};
}

}  // namespace

util::Expected<Client> Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return util::Error{util::fmt("unix socket path too long: {}", path)};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const util::Error error = socket_error("connect");
    ::close(fd);
    return error.with_context(path);
  }
  return Client(fd);
}

util::Expected<Client> Client::connect_tcp(const std::string& host,
                                           int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Error{util::fmt("invalid TCP address '{}'", host)};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const util::Error error = socket_error("connect");
    ::close(fd);
    return error.with_context(util::fmt("{}:{}", host, port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::Status Client::send_all(const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return socket_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return util::Status::ok();
}

util::Expected<std::string> Client::read_line() {
  char chunk[4096];
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    if (buffer_.size() > kMaxLineBytes) {
      return util::Error{"server reply exceeds the line-size bound"};
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return util::Error{"connection closed by server"};
    if (errno == EINTR) continue;
    return socket_error("recv");
  }
}

util::Expected<Response> Client::roundtrip_raw(const std::string& line) {
  if (auto status = send_all(line); !status) return status.error();
  auto reply = read_line();
  if (!reply) return reply.error();
  return parse_response(*reply);
}

util::Expected<Response> Client::roundtrip(const Request& request) {
  return roundtrip_raw(encode(request));
}

util::Expected<Response> Client::call(const std::string& verb,
                                      json::Value params) {
  Request request;
  request.id = next_id_++;
  request.verb = verb;
  request.params = std::move(params);
  return roundtrip(request);
}

}  // namespace gts::svc
