// Scheduler-service wire protocol (DESIGN.md section 14).
//
// The daemon (gts_schedd) and its clients (gts_ctl, bench_service_load)
// exchange line-delimited JSON over a Unix-domain or TCP socket: one
// request object per line, one response object per line, in order.
//
//   request  {"v":1,"id":7,"verb":"submit","params":{...}}
//   success  {"v":1,"id":7,"ok":true,"result":{...}}
//   failure  {"v":1,"id":7,"ok":false,
//             "error":{"code":"backpressure","message":"...",
//                      "retry_after_ms":50.0}}
//
// `id` is a client-chosen correlation number echoed verbatim; `params`
// is an object (may be omitted). Lines longer than kMaxLineBytes and
// documents that fail to parse are answered with a `parse` error carrying
// id 0, then the session is closed (framing is lost at that point).
#pragma once

#include <string>
#include <string_view>

#include "json/json.hpp"
#include "util/expected.hpp"

namespace gts::svc {

/// Protocol revision; requests carrying any other "v" are refused with
/// an `unsupported_version` error naming this value.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one request or response line (bytes, newline included).
/// Bounds per-session buffering against hostile or broken peers.
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

enum class ErrorCode {
  kParse,               // malformed JSON / not an object / oversize line
  kUnsupportedVersion,  // "v" != kProtocolVersion
  kBadRequest,          // missing/invalid params for the verb
  kUnknownVerb,
  kBackpressure,        // admission queue full; retry after retry_after_ms
  kDraining,            // daemon refuses new work
  kNotFound,            // unknown job id
  kConflict,            // duplicate job id
  kInternal,
};
std::string_view to_string(ErrorCode code) noexcept;
util::Expected<ErrorCode> parse_error_code(std::string_view name);

struct Request {
  int version = kProtocolVersion;
  long long id = 0;
  std::string verb;
  json::Value params;  // object; null when the verb takes none

  json::Value to_json() const;
};

struct Response {
  int version = kProtocolVersion;
  long long id = 0;
  bool ok = false;
  json::Value result;  // success payload (ok == true)
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  /// Suggested client backoff; only meaningful (>= 0) with kBackpressure.
  double retry_after_ms = -1.0;

  static Response success(long long id, json::Value result);
  static Response failure(long long id, ErrorCode code, std::string message,
                          double retry_after_ms = -1.0);

  json::Value to_json() const;
};

/// Parses one request line (without the trailing newline). Enforces the
/// line-size bound, JSON well-formedness, and the required fields; the
/// version is carried through unchecked so the dispatcher can answer a
/// mismatch on the request's own id.
util::Expected<Request> parse_request(std::string_view line);

/// Parses one response line (client side).
util::Expected<Response> parse_response(std::string_view line);

/// Compact single-line serialization, newline-terminated.
std::string encode(const Request& request);
std::string encode(const Response& response);

}  // namespace gts::svc
