// Socket front-end of the scheduler service: a single-threaded poll()
// reactor multiplexing any number of client sessions onto one
// ServiceCore (DESIGN.md section 14.2).
//
// Listens on a Unix-domain socket, a TCP endpoint, or both. Each session
// gets independent in/out buffers; requests are dispatched in arrival
// order per session (the protocol is strictly request/response per
// connection). A self-pipe makes stop() safe from signal handlers and
// other threads. When configured, a wall-clock timer writes periodic
// crash-recovery snapshots — snapshotting is read-only, so the timer
// cannot perturb the virtual-time decision sequence.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "util/annotations.hpp"
#include "util/expected.hpp"
#include "util/sync.hpp"

namespace gts::svc {

struct ServerOptions {
  /// Unix-domain socket path; empty = no UDS listener. A stale file at
  /// the path is removed before binding.
  std::string unix_socket;
  /// TCP bind address; port 0 picks an ephemeral port (see Server::port),
  /// empty host = no TCP listener.
  std::string tcp_host;
  int tcp_port = 0;
  /// Periodic snapshot: every `snapshot_every_s` wall seconds to
  /// `snapshot_path` (both must be set; 0 disables).
  std::string snapshot_path;
  double snapshot_every_s = 0.0;
};

class Server {
 public:
  Server(ServiceCore& core, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and the self-pipe. At least one
  /// listener must be configured.
  util::Status start();

  /// Runs the reactor until stop() is called or a client issues the
  /// `shutdown` verb (pending replies are flushed first).
  util::Status run();

  /// Requests run() to return. Async-signal-safe (one write to the
  /// self-pipe); callable from any thread.
  void stop();

  /// Bound TCP port (after start); -1 without a TCP listener. Lets tests
  /// bind port 0 and discover the ephemeral port.
  int port() const noexcept { return tcp_port_; }

  /// Number of currently connected sessions (diagnostics/tests). Read
  /// from the owning thread between run() rounds; exempt from the
  /// reactor-confinement analysis for that reason.
  std::size_t session_count() const noexcept GTS_NO_THREAD_SAFETY_ANALYSIS {
    return sessions_.size();
  }

 private:
  struct Session {
    int fd = -1;
    std::string in;
    std::string out;
    /// Set after an unrecoverable framing error: flush `out`, then close.
    bool close_after_flush = false;
  };

  util::Status listen_unix(const std::string& path);
  util::Status listen_tcp(const std::string& host, int port);
  void accept_clients(int listener_fd) GTS_REQUIRES(reactor_);
  /// Reads available bytes and dispatches complete lines; returns false
  /// when the session should be dropped.
  bool service_input(Session& session) GTS_REQUIRES(reactor_);
  /// Flushes buffered output; returns false when the session should be
  /// dropped.
  bool service_output(Session& session) GTS_REQUIRES(reactor_);
  void close_session(Session& session) GTS_REQUIRES(reactor_);
  void write_periodic_snapshot() GTS_REQUIRES(reactor_);

  ServiceCore& core_;
  ServerOptions options_;
  std::vector<int> listeners_;
  int tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  /// Confines the live session table and the stop flag to the reactor
  /// loop: run() enters the role, every helper requires it, and stop()
  /// stays off it by design (it only writes the self-pipe). See
  /// DESIGN.md section 16.2.
  mutable util::SerialCapability reactor_;
  std::vector<std::unique_ptr<Session>> sessions_ GTS_GUARDED_BY(reactor_);
  bool started_ = false;
  bool stop_requested_ GTS_GUARDED_BY(reactor_) = false;
};

}  // namespace gts::svc
