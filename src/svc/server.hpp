// Socket front-end of the scheduler service: a single-threaded poll()
// reactor multiplexing any number of client sessions onto one
// ServiceCore (DESIGN.md section 14.2).
//
// Listens on a Unix-domain socket, a TCP endpoint, or both. Each session
// gets independent in/out buffers; requests are dispatched in arrival
// order per session (the protocol is strictly request/response per
// connection). A self-pipe makes stop() safe from signal handlers and
// other threads. When configured, a wall-clock timer writes periodic
// crash-recovery snapshots — snapshotting is read-only, so the timer
// cannot perturb the virtual-time decision sequence.
//
// Batched admission (batch_max > 1, DESIGN.md section 17.4): instead of
// dispatching each complete line inline from service_input, the reactor
// frames lines into per-session pending queues, then once per poll round
// collects up to batch_max of them in (session, line) order, parses them
// (optionally on a parse pool — parse_request is pure, workers touch only
// batch-local slots, so the reactor confinement below stays intact) and
// hands the parsed requests to ServiceCore::handle_batch in one serial
// entry. Responses are routed back in slot order, so each session's
// reply stream is byte-identical to the batch_max == 1 oracle; leftover
// pending lines force a zero-timeout poll so they drain on the next
// round. batch_max == 1 keeps the legacy inline-dispatch path unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "svc/service.hpp"
#include "util/annotations.hpp"
#include "util/expected.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace gts::svc {

struct ServerOptions {
  /// Unix-domain socket path; empty = no UDS listener. A stale file at
  /// the path is removed before binding.
  std::string unix_socket;
  /// TCP bind address; port 0 picks an ephemeral port (see Server::port),
  /// empty host = no TCP listener.
  std::string tcp_host;
  int tcp_port = 0;
  /// Periodic snapshot: every `snapshot_every_s` wall seconds to
  /// `snapshot_path` (both must be set; 0 disables).
  std::string snapshot_path;
  double snapshot_every_s = 0.0;
  /// Requests dispatched per reactor round; 1 = legacy inline dispatch
  /// (the oracle the batched path is held byte-identical to).
  int batch_max = 1;
  /// Protocol-parse workers for batched rounds (0 = parse on the reactor
  /// thread; ignored when batch_max == 1).
  int parse_threads = 0;
  /// Prometheus scrape endpoint: a tiny HTTP/1.0 GET-only listener
  /// serving ServiceCore::prometheus_text() on the same poll() reactor
  /// (DESIGN.md section 18.2). Port 0 picks an ephemeral port (see
  /// Server::prom_port); -1 disables the listener.
  int prom_port = -1;
  std::string prom_host = "127.0.0.1";
};

class Server {
 public:
  Server(ServiceCore& core, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and the self-pipe. At least one
  /// listener must be configured.
  util::Status start();

  /// Runs the reactor until stop() is called or a client issues the
  /// `shutdown` verb (pending replies are flushed first).
  util::Status run();

  /// Requests run() to return. Async-signal-safe (one write to the
  /// self-pipe); callable from any thread.
  void stop();

  /// Bound TCP port (after start); -1 without a TCP listener. Lets tests
  /// bind port 0 and discover the ephemeral port.
  int port() const noexcept { return tcp_port_; }

  /// Bound Prometheus scrape port (after start); -1 when disabled.
  int prom_port() const noexcept { return prom_port_; }

  /// Number of currently connected sessions (diagnostics/tests). Read
  /// from the owning thread between run() rounds; exempt from the
  /// reactor-confinement analysis for that reason.
  std::size_t session_count() const noexcept GTS_NO_THREAD_SAFETY_ANALYSIS {
    return sessions_.size();
  }

 private:
  struct Session {
    int fd = -1;
    std::string in;
    std::string out;
    /// Accepted on the Prometheus listener: input is parsed as one HTTP
    /// GET request instead of JSONL frames; the reply closes the session.
    bool http = false;
    /// Set after an unrecoverable framing error: flush `out`, then close.
    bool close_after_flush = false;
    /// Batched mode only: complete lines framed but not yet dispatched.
    std::vector<std::string> pending;
    /// Batched mode only: encoded oversize-line failure to emit after
    /// `pending` drains (serial emits it after the lines framed before
    /// the flood; the batch path must preserve that reply order). While
    /// set, further input from the session is discarded.
    std::string pending_error;
  };

  util::Status listen_unix(const std::string& path);
  util::Status listen_tcp(const std::string& host, int port);
  util::Status listen_prom(const std::string& host, int port);
  void accept_clients(int listener_fd, bool http) GTS_REQUIRES(reactor_);
  /// Reads available bytes and dispatches complete lines; returns false
  /// when the session should be dropped.
  bool service_input(Session& session) GTS_REQUIRES(reactor_);
  /// HTTP sessions (the Prometheus listener): buffers until the header
  /// terminator, answers one GET with the exposition, then closes.
  bool service_http_input(Session& session) GTS_REQUIRES(reactor_);
  /// Flushes buffered output; returns false when the session should be
  /// dropped.
  bool service_output(Session& session) GTS_REQUIRES(reactor_);
  void close_session(Session& session) GTS_REQUIRES(reactor_);
  void write_periodic_snapshot() GTS_REQUIRES(reactor_);
  /// Batched mode: collects up to batch_max pending lines in (session,
  /// line) order, parses them (parse pool when configured), dispatches
  /// the valid ones through ServiceCore::handle_batch, and appends every
  /// reply in slot order. A parse error answers id 0, drops the
  /// session's remaining pending lines, and closes after flush — the
  /// same semantics as the inline path.
  void dispatch_pending() GTS_REQUIRES(reactor_);
  bool has_pending() const GTS_REQUIRES(reactor_);

  ServiceCore& core_;
  ServerOptions options_;
  /// Parse workers for batched rounds; created once in the constructor
  /// and internally synchronized, so it needs no reactor guard. Null when
  /// batching or parse pipelining is off.
  std::unique_ptr<util::ThreadPool> parse_pool_;
  std::vector<int> listeners_;
  /// Prometheus HTTP listener fd; -1 while disabled. Kept out of
  /// `listeners_` so accepts can tag their sessions as HTTP.
  int prom_listener_ = -1;
  int tcp_port_ = -1;
  int prom_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  /// Confines the live session table and the stop flag to the reactor
  /// loop: run() enters the role, every helper requires it, and stop()
  /// stays off it by design (it only writes the self-pipe). See
  /// DESIGN.md section 16.2.
  mutable util::SerialCapability reactor_;
  std::vector<std::unique_ptr<Session>> sessions_ GTS_GUARDED_BY(reactor_);
  bool started_ = false;
  bool stop_requested_ GTS_GUARDED_BY(reactor_) = false;
};

}  // namespace gts::svc
