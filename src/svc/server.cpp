#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <optional>
#include <utility>

#include "obs/metrics.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace gts::svc {

namespace {

util::Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Error{util::fmt("fcntl(O_NONBLOCK): {}",
                                 std::string(std::strerror(errno)))};
  }
  return util::Status::ok();
}

util::Error socket_error(const char* what) {
  return util::Error{util::fmt("{}: {}", what,
                               std::string(std::strerror(errno)))};
}

/// Binds + listens a nonblocking TCP socket; writes the actually bound
/// port (port 0 = ephemeral) to *bound_port. Shared by the protocol and
/// Prometheus listeners.
util::Expected<int> bind_tcp_listener(const std::string& host, int port,
                                      int* bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::Error{util::fmt("invalid TCP bind address '{}'", host)};
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const util::Error error = socket_error("bind");
    ::close(fd);
    return error.with_context(util::fmt("{}:{}", host, port));
  }
  if (::listen(fd, 64) < 0) {
    const util::Error error = socket_error("listen");
    ::close(fd);
    return error;
  }
  if (auto status = set_nonblocking(fd); !status) {
    ::close(fd);
    return status.error();
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

}  // namespace

Server::Server(ServiceCore& core, ServerOptions options)
    : core_(core), options_(std::move(options)) {
  if (options_.batch_max > 1 && options_.parse_threads > 0) {
    parse_pool_ = std::make_unique<util::ThreadPool>(options_.parse_threads);
  }
}

Server::~Server() {
  // Destruction implies exclusive ownership; entering the reactor role
  // here keeps the confinement analysis sound without special-casing.
  util::SerialGuard guard(reactor_);
  for (const auto& session : sessions_) {
    if (session->fd >= 0) ::close(session->fd);
  }
  for (const int fd : listeners_) ::close(fd);
  if (prom_listener_ >= 0) ::close(prom_listener_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  if (!options_.unix_socket.empty() && started_) {
    ::unlink(options_.unix_socket.c_str());
  }
}

util::Status Server::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return util::Error{util::fmt("unix socket path too long: {}", path)};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return socket_error("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const util::Error error = socket_error("bind");
    ::close(fd);
    return error.with_context(path);
  }
  if (::listen(fd, 64) < 0) {
    const util::Error error = socket_error("listen");
    ::close(fd);
    return error.with_context(path);
  }
  if (auto status = set_nonblocking(fd); !status) {
    ::close(fd);
    return status;
  }
  listeners_.push_back(fd);
  return util::Status::ok();
}

util::Status Server::listen_tcp(const std::string& host, int port) {
  auto fd = bind_tcp_listener(host, port, &tcp_port_);
  if (!fd) return fd.error();
  listeners_.push_back(*fd);
  return util::Status::ok();
}

util::Status Server::listen_prom(const std::string& host, int port) {
  auto fd = bind_tcp_listener(host, port, &prom_port_);
  if (!fd) return fd.error().with_context("prometheus listener");
  prom_listener_ = *fd;
  return util::Status::ok();
}

util::Status Server::start() {
  if (options_.unix_socket.empty() && options_.tcp_host.empty()) {
    return util::Error{"server needs a unix socket path or a TCP endpoint"};
  }
  if (::pipe(wake_pipe_) < 0) return socket_error("pipe");
  for (const int end : {wake_pipe_[0], wake_pipe_[1]}) {
    if (auto status = set_nonblocking(end); !status) return status;
  }
  if (!options_.unix_socket.empty()) {
    if (auto status = listen_unix(options_.unix_socket); !status) {
      return status;
    }
  }
  if (!options_.tcp_host.empty()) {
    if (auto status = listen_tcp(options_.tcp_host, options_.tcp_port);
        !status) {
      return status;
    }
  }
  if (options_.prom_port >= 0) {
    const std::string host =
        options_.prom_host.empty() ? "127.0.0.1" : options_.prom_host;
    if (auto status = listen_prom(host, options_.prom_port); !status) {
      return status;
    }
  }
  started_ = true;
  return util::Status::ok();
}

void Server::stop() {
  // Async-signal-safe wake-up; run() drains the pipe and exits.
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::accept_clients(int listener_fd, bool http) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        GTS_LOG_WARN("svc", "accept failed: ", std::strerror(errno));
      }
      return;
    }
    if (auto status = set_nonblocking(fd); !status) {
      ::close(fd);
      continue;
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    session->http = http;
    sessions_.push_back(std::move(session));
    GTS_METRIC_GAUGE_SET("svc.active_sessions",
                         static_cast<double>(sessions_.size()));
  }
}

bool Server::service_http_input(Session& session) {
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(session.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      session.in.append(buffer, static_cast<std::size_t>(n));
      if (session.in.size() > kMaxLineBytes) return false;  // header flood
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // One request per connection (HTTP/1.0 semantics): wait for the full
  // header, answer, then flush-and-close.
  if (session.in.find("\r\n\r\n") == std::string::npos &&
      session.in.find("\n\n") == std::string::npos) {
    return true;  // header incomplete; keep reading
  }
  std::string request_line = session.in.substr(0, session.in.find('\n'));
  while (!request_line.empty() &&
         (request_line.back() == '\r' || request_line.back() == ' ')) {
    request_line.pop_back();
  }
  const std::size_t method_end = request_line.find(' ');
  const std::string method = request_line.substr(0, method_end);
  std::string target = "/";
  if (method_end != std::string::npos) {
    const std::size_t target_end = request_line.find(' ', method_end + 1);
    target = request_line.substr(
        method_end + 1,
        target_end == std::string::npos ? std::string::npos
                                        : target_end - method_end - 1);
  }
  std::string status_line;
  std::string body;
  if (method != "GET") {
    status_line = "HTTP/1.0 405 Method Not Allowed";
    body = "GET only\n";
  } else if (target == "/metrics" || target == "/") {
    status_line = "HTTP/1.0 200 OK";
    body = core_.prometheus_text();
  } else {
    status_line = "HTTP/1.0 404 Not Found";
    body = "try /metrics\n";
  }
  session.out = util::fmt(
      "{}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: {}\r\nConnection: close\r\n\r\n",
      status_line, body.size());
  session.out += body;
  session.close_after_flush = true;
  session.in.clear();
  return true;
}

bool Server::service_input(Session& session) {
  if (session.http) return service_http_input(session);
  const bool batched = options_.batch_max > 1;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(session.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      session.in.append(buffer, static_cast<std::size_t>(n));
      if (session.in.size() > kMaxLineBytes &&
          session.in.find('\n') == std::string::npos) {
        // Unframeable flood: answer once, then drop the connection.
        const std::string failure = encode(Response::failure(
            0, ErrorCode::kParse,
            util::fmt("request line exceeds {} bytes", kMaxLineBytes)));
        if (batched && !session.pending.empty()) {
          // Replies to lines framed before the flood are still owed and
          // must precede the failure; stash it until pending drains.
          session.pending_error = failure;
        } else {
          session.out += failure;
          session.close_after_flush = true;
        }
        session.in.clear();
        return true;
      }
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (!session.pending_error.empty()) {
    // The session is already condemned; discard anything past the flood.
    session.in.clear();
    return true;
  }
  std::size_t start = 0;
  while (!session.close_after_flush) {
    const std::size_t newline = session.in.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string_view line(session.in.data() + start, newline - start);
    if (!line.empty()) {
      if (batched) {
        session.pending.emplace_back(line);
      } else {
        const Response response = core_.handle_line(line);
        session.out += encode(response);
        if (!response.ok && response.code == ErrorCode::kParse) {
          // Framing is unrecoverable after a malformed line.
          session.close_after_flush = true;
        }
      }
    }
    start = newline + 1;
  }
  session.in.erase(0, start);
  return true;
}

bool Server::has_pending() const {
  for (const auto& session : sessions_) {
    if (!session->pending.empty() || !session->pending_error.empty()) {
      return true;
    }
  }
  return false;
}

void Server::dispatch_pending() {
  // One slot per line taken this round; slot order is (session, line)
  // order, which is exactly the order the inline path would dispatch in,
  // so appending replies in slot order reproduces the oracle byte stream.
  struct Slot {
    Session* session;
    std::string line;
    std::optional<Request> request;
    std::string parse_error;
    bool skip = false;
  };
  std::vector<Slot> slots;
  const auto batch_max = static_cast<std::size_t>(options_.batch_max);
  for (auto& session : sessions_) {
    auto& pending = session->pending;
    std::size_t taken = 0;
    while (taken < pending.size() && slots.size() < batch_max) {
      slots.push_back(Slot{session.get(), std::move(pending[taken]), {}, {}});
      ++taken;
    }
    if (taken > 0) {
      pending.erase(pending.begin(),
                    pending.begin() + static_cast<std::ptrdiff_t>(taken));
    }
    if (slots.size() >= batch_max) break;
  }

  if (!slots.empty()) {
    // Parse phase: parse_request is pure and each worker touches only its
    // own slot, so the reactor confinement of the session table holds.
    const auto parse_slot = [&slots](int index) {
      Slot& slot = slots[static_cast<std::size_t>(index)];
      auto parsed = parse_request(slot.line);
      if (parsed) {
        slot.request = std::move(*parsed);
      } else {
        slot.parse_error = parsed.error().message;
      }
    };
    if (parse_pool_ && slots.size() > 1) {
      util::parallel_for(*parse_pool_, static_cast<int>(slots.size()),
                         parse_slot);
    } else {
      for (int i = 0; i < static_cast<int>(slots.size()); ++i) parse_slot(i);
    }

    // Decision phase: a parse error condemns its session — the slot
    // answers id 0, later slots from that session are skipped, and any
    // lines still pending are dropped (the inline path leaves them
    // unread in `in` and closes, which drops them the same way).
    std::vector<Request> requests;
    requests.reserve(slots.size());
    for (Slot& slot : slots) {
      Session& session = *slot.session;
      if (session.close_after_flush) {
        slot.skip = true;
        continue;
      }
      if (!slot.request) {
        session.close_after_flush = true;
        session.pending.clear();
        session.pending_error.clear();
        continue;
      }
      requests.push_back(std::move(*slot.request));
    }

    std::vector<Response> responses;
    if (!requests.empty()) responses = core_.handle_batch(requests);

    // Reply phase, in slot order.
    std::size_t next_response = 0;
    for (Slot& slot : slots) {
      if (slot.skip) continue;
      if (!slot.parse_error.empty()) {
        slot.session->out += encode(
            Response::failure(0, ErrorCode::kParse, slot.parse_error));
        continue;
      }
      slot.session->out += encode(responses[next_response++]);
    }
  }

  // Oversize-line failures fire once the owed replies are out.
  for (auto& session : sessions_) {
    if (!session->pending_error.empty() && session->pending.empty() &&
        !session->close_after_flush) {
      session->out += session->pending_error;
      session->pending_error.clear();
      session->close_after_flush = true;
    }
  }
}

bool Server::service_output(Session& session) {
  while (!session.out.empty()) {
    const ssize_t n = ::send(session.fd, session.out.data(),
                             session.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      session.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  return !session.close_after_flush;
}

void Server::close_session(Session& session) {
  if (session.fd >= 0) ::close(session.fd);
  session.fd = -1;
}

void Server::write_periodic_snapshot() {
  if (auto status = core_.save_snapshot(options_.snapshot_path); !status) {
    GTS_LOG_WARN("svc", "periodic snapshot failed: ", status.error().message);
  } else {
    GTS_METRIC_COUNT("svc.snapshots", 1);
  }
}

util::Status Server::run() {
  util::SerialGuard guard(reactor_);
  if (!started_) return util::Error{"run() before start()"};
  using Clock = std::chrono::steady_clock;
  const bool periodic =
      options_.snapshot_every_s > 0.0 && !options_.snapshot_path.empty();
  const auto snapshot_interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          periodic ? options_.snapshot_every_s : 0.0));
  auto next_snapshot = Clock::now() + snapshot_interval;

  std::vector<pollfd> fds;
  while (true) {
    // Exit once shutdown was requested and every reply has been flushed.
    if (stop_requested_ || core_.shutdown_requested()) {
      bool pending_output = false;
      for (const auto& session : sessions_) {
        if (!session->out.empty()) pending_output = true;
      }
      if (stop_requested_ || !pending_output) break;
    }

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (const int listener : listeners_) {
      // Stop accepting new sessions while shutting down.
      if (!core_.shutdown_requested()) fds.push_back({listener, POLLIN, 0});
    }
    if (prom_listener_ >= 0 && !core_.shutdown_requested()) {
      fds.push_back({prom_listener_, POLLIN, 0});
    }
    const std::size_t first_session = fds.size();
    for (const auto& session : sessions_) {
      short events = POLLIN;
      if (!session->out.empty()) events |= POLLOUT;
      fds.push_back({session->fd, events, 0});
    }

    int timeout_ms = -1;
    if (periodic) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(next_snapshot - Clock::now());
      timeout_ms = static_cast<int>(std::max<long long>(0, remaining.count()));
    }
    // Leftover batched lines (batch_max cap hit) must not wait for new
    // socket activity.
    if (options_.batch_max > 1 && has_pending()) timeout_ms = 0;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return socket_error("poll");
    }
    if (periodic && Clock::now() >= next_snapshot) {
      write_periodic_snapshot();
      next_snapshot += snapshot_interval;
    }
    if (ready == 0 && !(options_.batch_max > 1 && has_pending())) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
      stop_requested_ = true;
    }
    for (std::size_t i = 1; i < first_session; ++i) {
      if ((fds[i].revents & POLLIN) != 0) {
        accept_clients(fds[i].fd, fds[i].fd == prom_listener_);
      }
    }
    // Service sessions; drop the ones that closed or errored. Sessions
    // past `polled_sessions` were accepted after the pollfd array was
    // built — they have no revents entry and simply wait for the next
    // poll round.
    const std::size_t polled_sessions = fds.size() - first_session;
    std::vector<std::unique_ptr<Session>> alive;
    alive.reserve(sessions_.size());
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      Session& session = *sessions_[i];
      bool keep = true;
      if (i < polled_sessions) {
        const short revents = fds[first_session + i].revents;
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (revents & POLLIN) == 0) {
          keep = false;
        }
        if (keep && (revents & POLLIN) != 0) keep = service_input(session);
        // Always try to flush after handling input (replies are ready now).
        if (keep && !session.out.empty()) keep = service_output(session);
        if (keep && session.out.empty() && session.close_after_flush) {
          keep = false;
        }
      }
      if (keep) {
        alive.push_back(std::move(sessions_[i]));
      } else {
        close_session(session);
      }
    }
    sessions_ = std::move(alive);
    if (options_.batch_max > 1 && has_pending()) {
      dispatch_pending();
      // Flush the batch replies and retire sessions whose final flush
      // just completed (the inline path does this per session above).
      std::vector<std::unique_ptr<Session>> still_alive;
      still_alive.reserve(sessions_.size());
      for (auto& session : sessions_) {
        bool keep = true;
        if (!session->out.empty()) keep = service_output(*session);
        if (keep && session->out.empty() && session->close_after_flush) {
          keep = false;
        }
        if (keep) {
          still_alive.push_back(std::move(session));
        } else {
          close_session(*session);
        }
      }
      sessions_ = std::move(still_alive);
    }
    GTS_METRIC_GAUGE_SET("svc.active_sessions",
                         static_cast<double>(sessions_.size()));
  }

  for (const auto& session : sessions_) close_session(*session);
  sessions_.clear();
  GTS_METRIC_GAUGE_SET("svc.active_sessions", 0.0);
  return util::Status::ok();
}

}  // namespace gts::svc
