// Fiduccia-Mattheyses bipartitioning (Fiduccia & Mattheyses, DAC'82).
//
// The paper's DRB mapper bi-partitions the physical topology graph with FM
// ("the physical graph bi-partition is performed with the well-known
// Fiduccia Mattheyses algorithm that minimizes the cut-sets", Section 4.4).
//
// This is the classic single-vertex-move variant for weighted undirected
// graphs: passes of tentative best-gain moves with per-vertex locking,
// rolled back to the best prefix. Vertex selection among equal gains is
// deterministic (lowest vertex id), so results are reproducible.
//
// The gain order lives in the classic FM bucket-list structure, adapted to
// real-valued weights: buckets quantize the gain axis (quantization only
// partitions the order — any two gains in different buckets compare the
// same way their buckets do), and the highest non-empty bucket is scanned
// exactly for (max gain, min vertex id). Best-gain pop is therefore a
// bucket walk, and a neighbor gain update is an O(1) bucket relink; the
// result is identical, move for move, to a totally ordered
// set<(-gain, vertex)> — fm_bipartition_reference keeps that original
// std::set implementation alive as the oracle for the equivalence suite
// (tests/perf_path_test.cpp).
//
// All per-call storage (CSR adjacency, gains, buckets, move log) comes
// from an FmScratch arena so the thousands of FM calls inside one DRB
// recursion reuse the same allocations. Passing nullptr uses a
// thread-local arena, which keeps concurrent runner replicas independent.
#pragma once

#include <cstdint>
#include <vector>

namespace gts::partition {

/// Undirected weighted graph in edge-list form for FM.
struct FmGraph {
  int vertex_count = 0;
  struct Edge {
    int a = 0;
    int b = 0;
    double weight = 0.0;
  };
  std::vector<Edge> edges;
};

struct FmOptions {
  /// Maximum refinement passes; FM usually converges in 2-4.
  int max_passes = 8;
  /// Each side must keep at least `min_side` vertices.
  int min_side = 1;
  /// Maximum allowed |side0| as a fraction of all vertices (and likewise
  /// for side1 via symmetry). 1.0 disables the balance constraint except
  /// for min_side.
  double max_side_fraction = 1.0;
};

struct FmResult {
  std::vector<int> side;  // 0 or 1 per vertex
  double cut_weight = 0.0;
  int passes = 0;         // passes actually executed
  double initial_cut = 0.0;
};

/// Reusable per-call storage for fm_bipartition. A scratch object may be
/// reused across any number of sequential calls (the hot path keeps one
/// per thread); it must not be shared by concurrent calls.
struct FmScratch {
  // CSR adjacency rebuilt per call (offsets into vertex/weight arrays).
  std::vector<int> adj_offset;
  std::vector<int> adj_vertex;
  std::vector<double> adj_weight;
  // Per-vertex pass state.
  std::vector<double> gain;
  std::vector<std::uint8_t> locked;
  std::vector<int> side;
  // Gain bucket lists: bucket -> vertex ids; per-vertex back-references
  // for O(1) removal by swap-with-last.
  std::vector<std::vector<int>> buckets;
  std::vector<int> bucket_of;
  std::vector<int> slot_of;
  // Move log of the current pass.
  std::vector<int> move_vertex;
  std::vector<double> move_cut;
};

/// Total weight of edges crossing the partition.
double cut_weight(const FmGraph& graph, const std::vector<int>& side);

/// Refines `initial` (0/1 per vertex); the result cut is never worse than
/// the initial cut. `scratch` may carry reusable buffers across calls;
/// nullptr uses a thread-local arena.
FmResult fm_bipartition(const FmGraph& graph, std::vector<int> initial,
                        const FmOptions& options = {},
                        FmScratch* scratch = nullptr);

/// The original totally-ordered-set implementation, kept as the oracle
/// for the bucket-list equivalence suite. Move-for-move identical to
/// fm_bipartition (same sides, cut, and pass count) by construction.
FmResult fm_bipartition_reference(const FmGraph& graph,
                                  std::vector<int> initial,
                                  const FmOptions& options = {});

}  // namespace gts::partition
