// Fiduccia-Mattheyses bipartitioning (Fiduccia & Mattheyses, DAC'82).
//
// The paper's DRB mapper bi-partitions the physical topology graph with FM
// ("the physical graph bi-partition is performed with the well-known
// Fiduccia Mattheyses algorithm that minimizes the cut-sets", Section 4.4).
//
// This is the classic single-vertex-move variant for weighted undirected
// graphs: passes of tentative best-gain moves with per-vertex locking,
// rolled back to the best prefix. Vertex selection among equal gains is
// deterministic (lowest vertex id), so results are reproducible.
//
// Edge weights are real-valued (our physical "closeness" weights are
// derived from path distances), so gains are tracked in a sorted structure
// instead of the original integer bucket array; complexity per pass is
// O(V log V + E) which is indistinguishable from linear for the graph
// sizes a placement decision sees (a few thousand GPUs at cluster scale).
#pragma once

#include <vector>

namespace gts::partition {

/// Undirected weighted graph in edge-list form for FM.
struct FmGraph {
  int vertex_count = 0;
  struct Edge {
    int a = 0;
    int b = 0;
    double weight = 0.0;
  };
  std::vector<Edge> edges;
};

struct FmOptions {
  /// Maximum refinement passes; FM usually converges in 2-4.
  int max_passes = 8;
  /// Each side must keep at least `min_side` vertices.
  int min_side = 1;
  /// Maximum allowed |side0| as a fraction of all vertices (and likewise
  /// for side1 via symmetry). 1.0 disables the balance constraint except
  /// for min_side.
  double max_side_fraction = 1.0;
};

struct FmResult {
  std::vector<int> side;  // 0 or 1 per vertex
  double cut_weight = 0.0;
  int passes = 0;         // passes actually executed
  double initial_cut = 0.0;
};

/// Total weight of edges crossing the partition.
double cut_weight(const FmGraph& graph, const std::vector<int>& side);

/// Refines `initial` (0/1 per vertex); the result cut is never worse than
/// the initial cut.
FmResult fm_bipartition(const FmGraph& graph, std::vector<int> initial,
                        const FmOptions& options = {});

}  // namespace gts::partition
