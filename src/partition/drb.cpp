#include "partition/drb.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include "partition/fm.hpp"

namespace gts::partition {

namespace {

/// Distinct machine ids of a GPU set (ascending). Small sets: sort +
/// unique on a flat vector instead of a node-based set.
std::vector<int> machines_of(const std::vector<int>& gpus,
                             const topo::TopologyGraph& topology) {
  std::vector<int> machines;
  machines.reserve(gpus.size());
  for (const int gpu : gpus) {
    machines.push_back(topology.machine_of_gpu(gpu));
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()),
                 machines.end());
  return machines;
}

/// Tasks ordered for Algorithm 3's pop(): highest total communication
/// weight first (the most constrained tasks choose sides first), ties by
/// ascending task id for determinism.
std::vector<int> task_order(const jobgraph::JobGraph& job) {
  std::vector<double> weight(static_cast<size_t>(job.task_count()), 0.0);
  for (const jobgraph::CommEdge& edge : job.edges()) {
    weight[static_cast<size_t>(edge.a)] += edge.weight;
    weight[static_cast<size_t>(edge.b)] += edge.weight;
  }
  std::vector<int> order(static_cast<size_t>(job.task_count()));
  for (int t = 0; t < job.task_count(); ++t) order[static_cast<size_t>(t)] = t;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return weight[static_cast<size_t>(a)] > weight[static_cast<size_t>(b)];
  });
  return order;
}

class Mapper {
 public:
  Mapper(const jobgraph::JobGraph& job, const topo::TopologyGraph& topology,
         const DrbCallbacks& callbacks, const DrbOptions& options)
      : job_(job),
        topology_(topology),
        callbacks_(callbacks),
        options_(options) {}

  DrbResult run(const std::vector<int>& available_gpus) {
    result_.assignment.assign(static_cast<size_t>(job_.task_count()), -1);
    if (options_.span == SpanMode::kAntiCollocate &&
        machines_of(available_gpus, topology_).size() <
            static_cast<size_t>(job_.task_count())) {
      // Fewer machines than tasks: the distinct-machine constraint can
      // never hold (in particular on a single-machine topology, where the
      // recursion below would never see a machine split to enforce it).
      return std::move(result_);
    }
    std::vector<int> tasks = task_order(job_);
    recurse(tasks, available_gpus, 1);
    result_.complete =
        std::none_of(result_.assignment.begin(), result_.assignment.end(),
                     [](int gpu) { return gpu < 0; });
    if (result_.complete && options_.span == SpanMode::kAntiCollocate) {
      // The split heuristics enforce the constraint at machine-split
      // levels; a degenerate bipartition (FM fallback halving straddling a
      // machine) can still co-locate, so verify the final assignment.
      const std::vector<int> machines =
          machines_of(result_.assignment, topology_);
      result_.complete = machines.size() == result_.assignment.size();
    }
    return std::move(result_);
  }

 private:
  // Algorithm 2: DRB(A, P, C).
  void recurse(const std::vector<int>& tasks, const std::vector<int>& gpus,
               int depth) {
    result_.stats.max_depth = std::max(result_.stats.max_depth, depth);
    if (tasks.empty()) return;
    if (gpus.empty()) return;  // tasks stay unassigned -> incomplete
    if (gpus.size() == 1) {
      // Leaf: map the first task; any extra tasks are a capacity failure
      // and remain unassigned.
      result_.assignment[static_cast<size_t>(tasks.front())] = gpus.front();
      return;
    }
    const std::vector<int> side = physical_bipartition(gpus, topology_,
                                                       &result_.stats);
    std::vector<int> gpus0;
    std::vector<int> gpus1;
    for (size_t i = 0; i < gpus.size(); ++i) {
      (side[i] == 0 ? gpus0 : gpus1).push_back(gpus[i]);
    }
    if (gpus0.empty() || gpus1.empty()) {
      // Degenerate split (identical closeness everywhere): fall back to a
      // deterministic halving so recursion always terminates.
      gpus0.assign(gpus.begin(), gpus.begin() + static_cast<long>(gpus.size() / 2));
      gpus1.assign(gpus.begin() + static_cast<long>(gpus.size() / 2), gpus.end());
    }

    std::vector<int> tasks0;
    std::vector<int> tasks1;
    job_bipartition(tasks, gpus0, gpus1, tasks0, tasks1);

    recurse(tasks0, gpus0, depth + 1);
    recurse(tasks1, gpus1, depth + 1);
  }

  // Algorithm 3: utility-based job graph bipartitioning.
  void job_bipartition(const std::vector<int>& tasks,
                       const std::vector<int>& gpus0,
                       const std::vector<int>& gpus1, std::vector<int>& tasks0,
                       std::vector<int>& tasks1) {
    callbacks_.begin_bipartition(gpus0, gpus1);
    const bool machine_split = is_machine_split(gpus0, gpus1);

    if (machine_split && options_.span != SpanMode::kAntiCollocate) {
      // Keep the job on one machine group when any side can hold it
      // entirely ("preferentially places as many tasks as possible ... in
      // the same node").
      const bool fits0 = gpus0.size() >= tasks.size();
      const bool fits1 = gpus1.size() >= tasks.size();
      if (fits0 || fits1) {
        int chosen;
        if (fits0 && fits1) {
          chosen = whole_job_side(tasks, gpus0, gpus1);
        } else {
          chosen = fits0 ? 0 : 1;
        }
        (chosen == 0 ? tasks0 : tasks1) = tasks;
        return;
      }
      if (options_.span == SpanMode::kSingleNode) {
        // Cannot satisfy the single-node constraint at this level; leave
        // all tasks unassigned (the scheduler will see incomplete=false).
        // Exception: a deeper machine group may still fit, so only fail if
        // both sides are single machines.
        if (machines_of(gpus0, topology_).size() == 1 &&
            machines_of(gpus1, topology_).size() == 1) {
          return;  // tasks dropped -> incomplete
        }
        // Otherwise route everything to the side with more capacity and
        // let the deeper recursion try to find one machine.
        (gpus0.size() >= gpus1.size() ? tasks0 : tasks1) = tasks;
        return;
      }
      // kPreferPack but no side fits the whole job: fall through to the
      // per-task split (the job spans machines).
    }

    if (machine_split && options_.span == SpanMode::kAntiCollocate) {
      // Every task must land on a distinct machine: capacity of a side is
      // its machine count.
      anti_collocate_split(tasks, gpus0, gpus1, tasks0, tasks1);
      return;
    }

    // Algorithm 3's per-task loop.
    for (const int task : tasks) {
      const BipartitionView view{gpus0, gpus1, tasks0, tasks1};
      const bool room0 = tasks0.size() < gpus0.size();
      const bool room1 = tasks1.size() < gpus1.size();
      if (!room0 && !room1) return;  // capacity exhausted -> incomplete
      double u0 = room0 ? callbacks_.task_utility(task, 0, view) : -1.0;
      double u1 = room1 ? callbacks_.task_utility(task, 1, view) : -1.0;
      if (u0 >= u1) {
        tasks0.push_back(task);
      } else {
        tasks1.push_back(task);
      }
    }
  }

  void anti_collocate_split(const std::vector<int>& tasks,
                            const std::vector<int>& gpus0,
                            const std::vector<int>& gpus1,
                            std::vector<int>& tasks0,
                            std::vector<int>& tasks1) {
    const size_t cap0 = machines_of(gpus0, topology_).size();
    const size_t cap1 = machines_of(gpus1, topology_).size();
    for (const int task : tasks) {
      const BipartitionView view{gpus0, gpus1, tasks0, tasks1};
      const bool room0 = tasks0.size() < cap0;
      const bool room1 = tasks1.size() < cap1;
      if (!room0 && !room1) return;  // incomplete
      double u0 = room0 ? callbacks_.task_utility(task, 0, view) : -1.0;
      double u1 = room1 ? callbacks_.task_utility(task, 1, view) : -1.0;
      if (u0 >= u1) {
        tasks0.push_back(task);
      } else {
        tasks1.push_back(task);
      }
    }
  }

  /// True when the cut separates whole machines (no machine straddles it).
  bool is_machine_split(const std::vector<int>& gpus0,
                        const std::vector<int>& gpus1) const {
    const std::vector<int> m0 = machines_of(gpus0, topology_);
    const std::vector<int> m1 = machines_of(gpus1, topology_);
    std::vector<int> common;
    std::set_intersection(m0.begin(), m0.end(), m1.begin(), m1.end(),
                          std::back_inserter(common));
    return common.empty() && (m0.size() + m1.size() > 1) &&
           !(m0.size() == 1 && m1.empty()) && !(m1.size() == 1 && m0.empty());
  }

  /// Which side gets the whole job: simulate Algorithm 3's accumulation on
  /// each side and compare summed utilities.
  int whole_job_side(const std::vector<int>& tasks,
                     const std::vector<int>& gpus0,
                     const std::vector<int>& gpus1) {
    double total0 = 0.0;
    double total1 = 0.0;
    std::vector<int> accumulated0;
    std::vector<int> accumulated1;
    const std::vector<int> empty;
    for (const int task : tasks) {
      {
        const BipartitionView view{gpus0, gpus1, accumulated0, empty};
        total0 += callbacks_.task_utility(task, 0, view);
        accumulated0.push_back(task);
      }
      {
        const BipartitionView view{gpus0, gpus1, empty, accumulated1};
        total1 += callbacks_.task_utility(task, 1, view);
        accumulated1.push_back(task);
      }
    }
    return total0 >= total1 ? 0 : 1;
  }

  const jobgraph::JobGraph& job_;
  const topo::TopologyGraph& topology_;
  const DrbCallbacks& callbacks_;
  const DrbOptions options_;
  DrbResult result_;
};

}  // namespace

std::vector<int> DrbResult::gpus() const {
  if (!complete) return {};
  return assignment;
}

std::vector<int> physical_bipartition(const std::vector<int>& gpus,
                                      const topo::TopologyGraph& topology,
                                      DrbStats* stats) {
  const int n = static_cast<int>(gpus.size());
  GTS_CHECK_GE(n, 2);

  // Closeness graph: weight = (D + 1) - distance, D = max pairwise distance
  // within this GPU set. Close pairs get heavy edges; FM's mincut then cuts
  // across the widest topological separation.
  double max_distance = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      max_distance = std::max(
          max_distance, topology.gpu_distance(gpus[static_cast<size_t>(i)],
                                              gpus[static_cast<size_t>(j)]));
    }
  }
  FmGraph graph;
  graph.vertex_count = n;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double closeness =
          max_distance + 1.0 -
          topology.gpu_distance(gpus[static_cast<size_t>(i)],
                                gpus[static_cast<size_t>(j)]);
      if (closeness > 0.0) graph.edges.push_back({i, j, closeness});
    }
  }

  // Hierarchical initial partition: split whole machines when the set spans
  // machines, else whole sockets, else halves by GPU id.
  std::vector<int> initial(static_cast<size_t>(n), 0);
  const std::vector<int> machines = machines_of(gpus, topology);
  if (machines.size() > 1) {
    // First half of the machine ids (ascending) to side 0.
    const auto half =
        machines.begin() + static_cast<long>(machines.size() / 2);
    for (int i = 0; i < n; ++i) {
      initial[static_cast<size_t>(i)] =
          std::binary_search(
              machines.begin(), half,
              topology.machine_of_gpu(gpus[static_cast<size_t>(i)]))
              ? 0
              : 1;
    }
  } else {
    std::vector<int> sockets;
    sockets.reserve(gpus.size());
    for (const int gpu : gpus) {
      sockets.push_back(topology.socket_of_gpu(gpu));
    }
    std::sort(sockets.begin(), sockets.end());
    sockets.erase(std::unique(sockets.begin(), sockets.end()), sockets.end());
    if (sockets.size() > 1) {
      const auto half =
          sockets.begin() + static_cast<long>(sockets.size() / 2);
      for (int i = 0; i < n; ++i) {
        initial[static_cast<size_t>(i)] =
            std::binary_search(
                sockets.begin(), half,
                topology.socket_of_gpu(gpus[static_cast<size_t>(i)]))
                ? 0
                : 1;
      }
    } else {
      for (int i = n / 2; i < n; ++i) initial[static_cast<size_t>(i)] = 1;
    }
  }
  // Guard: both sides must be non-empty for FM's min_side constraint.
  if (std::count(initial.begin(), initial.end(), 0) == 0 ||
      std::count(initial.begin(), initial.end(), 0) == n) {
    for (int i = n / 2; i < n; ++i) initial[static_cast<size_t>(i)] = 1;
    for (int i = 0; i < n / 2; ++i) initial[static_cast<size_t>(i)] = 0;
  }

  obs::SpanGuard fm_span(obs::kFm, "fm.bipartition");
  fm_span.arg("vertices", n);
  FmResult fm = fm_bipartition(graph, std::move(initial), FmOptions{});
  fm_span.arg("passes", fm.passes)
      .arg("cut", fm.cut_weight)
      .arg("gain", fm.initial_cut - fm.cut_weight);
  GTS_METRIC_COUNT("drb.bipartitions", 1);
  GTS_METRIC_COUNT("fm.passes", fm.passes);
  GTS_METRIC_HISTOGRAM("drb.cut_cost", fm.cut_weight, obs::cost_bounds());
  if (stats != nullptr) {
    ++stats->bipartitions;
    stats->fm_passes += fm.passes;
  }
  return std::move(fm.side);
}

DrbResult drb_map(const jobgraph::JobGraph& job,
                  const std::vector<int>& available_gpus,
                  const topo::TopologyGraph& topology,
                  const DrbCallbacks& callbacks, const DrbOptions& options) {
  Mapper mapper(job, topology, callbacks, options);
  return mapper.run(available_gpus);
}

}  // namespace gts::partition
