#include "partition/fm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "check/check.hpp"

namespace gts::partition {

namespace {

/// Adjacency built once per call; graphs are small and short-lived.
/// (Reference implementation only; the bucket path builds CSR into the
/// scratch arena instead.)
struct Adjacency {
  struct Neighbor {
    int vertex;
    double weight;
  };
  std::vector<std::vector<Neighbor>> lists;

  explicit Adjacency(const FmGraph& graph)
      : lists(static_cast<size_t>(graph.vertex_count)) {
    for (const FmGraph::Edge& edge : graph.edges) {
      lists[static_cast<size_t>(edge.a)].push_back({edge.b, edge.weight});
      lists[static_cast<size_t>(edge.b)].push_back({edge.a, edge.weight});
    }
  }
};

/// Gain of moving `v` to the other side: external weight - internal weight.
double vertex_gain(const Adjacency& adj, const std::vector<int>& side, int v) {
  double gain = 0.0;
  for (const auto& n : adj.lists[static_cast<size_t>(v)]) {
    gain += (side[static_cast<size_t>(n.vertex)] != side[static_cast<size_t>(v)])
                ? n.weight
                : -n.weight;
  }
  return gain;
}

/// Builds the CSR adjacency for `graph` into `s` and returns the maximum
/// weighted degree (an upper bound on |gain| throughout the call).
double build_csr(const FmGraph& graph, FmScratch& s) {
  const size_t n = static_cast<size_t>(graph.vertex_count);
  s.adj_offset.assign(n + 1, 0);
  for (const FmGraph::Edge& edge : graph.edges) {
    ++s.adj_offset[static_cast<size_t>(edge.a) + 1];
    ++s.adj_offset[static_cast<size_t>(edge.b) + 1];
  }
  for (size_t v = 0; v < n; ++v) s.adj_offset[v + 1] += s.adj_offset[v];
  s.adj_vertex.resize(static_cast<size_t>(s.adj_offset[n]));
  s.adj_weight.resize(static_cast<size_t>(s.adj_offset[n]));
  // Fill using a cursor per vertex (reuse gain[] as scratch is unsafe:
  // weights are doubles — use a local copy of the offsets instead).
  std::vector<int>& cursor = s.bucket_of;  // reused as temp before buckets
  cursor.assign(n, 0);
  for (size_t v = 0; v < n; ++v) cursor[v] = s.adj_offset[v];
  for (const FmGraph::Edge& edge : graph.edges) {
    const size_t a = static_cast<size_t>(edge.a);
    const size_t b = static_cast<size_t>(edge.b);
    s.adj_vertex[static_cast<size_t>(cursor[a])] = edge.b;
    s.adj_weight[static_cast<size_t>(cursor[a])] = edge.weight;
    ++cursor[a];
    s.adj_vertex[static_cast<size_t>(cursor[b])] = edge.a;
    s.adj_weight[static_cast<size_t>(cursor[b])] = edge.weight;
    ++cursor[b];
  }
  double max_degree = 0.0;
  for (size_t v = 0; v < n; ++v) {
    double degree = 0.0;
    for (int i = s.adj_offset[v]; i < s.adj_offset[v + 1]; ++i) {
      degree += std::abs(s.adj_weight[static_cast<size_t>(i)]);
    }
    max_degree = std::max(max_degree, degree);
  }
  return max_degree;
}

/// The quantized gain buckets. Bucket order is consistent with exact gain
/// order (floor of a monotone map), so walking buckets high-to-low and
/// scanning one bucket exactly reproduces the total (gain desc, id asc)
/// order of the reference std::set.
class BucketList {
 public:
  BucketList(FmScratch& s, int n, double max_gain) : s_(s) {
    // ~2 vertices per bucket keeps the exact in-bucket scan short without
    // allocating an unbounded bucket array for large gain ranges.
    count_ = std::clamp(2 * n, 16, 4096);
    if (static_cast<int>(s_.buckets.size()) < count_) {
      s_.buckets.resize(static_cast<size_t>(count_));
    }
    for (int b = 0; b < count_; ++b) {
      s_.buckets[static_cast<size_t>(b)].clear();
    }
    bound_ = max_gain;
    inv_quantum_ = (bound_ > 0.0)
                       ? static_cast<double>(count_) / (2.0 * bound_)
                       : 0.0;
    s_.bucket_of.assign(static_cast<size_t>(n), -1);
    s_.slot_of.assign(static_cast<size_t>(n), -1);
    highest_ = 0;
  }

  int index_of(double gain) const {
    if (inv_quantum_ <= 0.0) return 0;
    const int raw = static_cast<int>((gain + bound_) * inv_quantum_);
    return std::clamp(raw, 0, count_ - 1);
  }

  void insert(int v, double gain) {
    const int b = index_of(gain);
    std::vector<int>& bucket = s_.buckets[static_cast<size_t>(b)];
    s_.bucket_of[static_cast<size_t>(v)] = b;
    s_.slot_of[static_cast<size_t>(v)] = static_cast<int>(bucket.size());
    bucket.push_back(v);
    highest_ = std::max(highest_, b);
  }

  void remove(int v) {
    const int b = s_.bucket_of[static_cast<size_t>(v)];
    std::vector<int>& bucket = s_.buckets[static_cast<size_t>(b)];
    const int slot = s_.slot_of[static_cast<size_t>(v)];
    const int last = bucket.back();
    bucket[static_cast<size_t>(slot)] = last;
    s_.slot_of[static_cast<size_t>(last)] = slot;
    bucket.pop_back();
    s_.bucket_of[static_cast<size_t>(v)] = -1;
  }

  /// Relinks `v` after its gain changed (no-op when the bucket is stable;
  /// the exact gain lives in s_.gain, not in the bucket).
  void update(int v, double gain) {
    const int b = index_of(gain);
    if (b == s_.bucket_of[static_cast<size_t>(v)]) return;
    remove(v);
    std::vector<int>& bucket = s_.buckets[static_cast<size_t>(b)];
    s_.bucket_of[static_cast<size_t>(v)] = b;
    s_.slot_of[static_cast<size_t>(v)] = static_cast<int>(bucket.size());
    bucket.push_back(v);
    highest_ = std::max(highest_, b);
  }

  /// Highest-gain vertex (ties: lowest id) whose move `legal` accepts, or
  /// -1 when no unlocked vertex has a legal move. Walks buckets downward;
  /// the first bucket containing a legal vertex decides (every vertex in
  /// a higher bucket was already rejected, every lower bucket loses).
  template <typename Legal>
  int pop_best(const Legal& legal) {
    while (highest_ > 0 && s_.buckets[static_cast<size_t>(highest_)].empty()) {
      --highest_;
    }
    for (int b = highest_; b >= 0; --b) {
      const std::vector<int>& bucket = s_.buckets[static_cast<size_t>(b)];
      int best = -1;
      for (const int v : bucket) {
        if (!legal(v)) continue;
        if (best < 0 ||
            s_.gain[static_cast<size_t>(v)] > s_.gain[static_cast<size_t>(best)] ||
            (s_.gain[static_cast<size_t>(v)] ==
                 s_.gain[static_cast<size_t>(best)] &&
             v < best)) {
          best = v;
        }
      }
      if (best >= 0) {
        remove(best);
        return best;
      }
    }
    return -1;
  }

 private:
  FmScratch& s_;
  int count_ = 0;
  int highest_ = 0;
  double bound_ = 0.0;
  double inv_quantum_ = 0.0;
};

}  // namespace

double cut_weight(const FmGraph& graph, const std::vector<int>& side) {
  double cut = 0.0;
  for (const FmGraph::Edge& edge : graph.edges) {
    if (side[static_cast<size_t>(edge.a)] != side[static_cast<size_t>(edge.b)]) {
      cut += edge.weight;
    }
  }
  return cut;
}

FmResult fm_bipartition(const FmGraph& graph, std::vector<int> initial,
                        const FmOptions& options, FmScratch* scratch) {
  static thread_local FmScratch tls_scratch;
  FmScratch& s = scratch != nullptr ? *scratch : tls_scratch;

  const int n = graph.vertex_count;
  GTS_CHECK_EQ(static_cast<int>(initial.size()), n);

  FmResult result;
  result.side = std::move(initial);
  result.initial_cut = cut_weight(graph, result.side);
  result.cut_weight = result.initial_cut;
  if (n < 2) return result;

  const double max_gain = build_csr(graph, s);
  // FM's classic balance criterion allows a one-vertex slack around the
  // target fraction so moves are possible from an exactly-balanced start.
  int max_side = static_cast<int>(options.max_side_fraction *
                                  static_cast<double>(n));
  max_side = std::max(max_side, n / 2 + 1);
  max_side = std::min(max_side, n - options.min_side);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    s.side.assign(result.side.begin(), result.side.end());
    int count0 = static_cast<int>(
        std::count(s.side.begin(), s.side.end(), 0));

    // Initial gains straight from CSR, each vertex filed in its bucket.
    s.gain.resize(static_cast<size_t>(n));
    s.locked.assign(static_cast<size_t>(n), 0);
    BucketList order(s, n, max_gain);
    for (int v = 0; v < n; ++v) {
      double gain = 0.0;
      for (int i = s.adj_offset[static_cast<size_t>(v)];
           i < s.adj_offset[static_cast<size_t>(v) + 1]; ++i) {
        const int peer = s.adj_vertex[static_cast<size_t>(i)];
        gain += (s.side[static_cast<size_t>(peer)] !=
                 s.side[static_cast<size_t>(v)])
                    ? s.adj_weight[static_cast<size_t>(i)]
                    : -s.adj_weight[static_cast<size_t>(i)];
      }
      s.gain[static_cast<size_t>(v)] = gain;
      order.insert(v, gain);
    }

    // Tentatively move every vertex once, tracking the best prefix.
    s.move_vertex.clear();
    s.move_cut.clear();
    double running_cut = result.cut_weight;

    for (int moved = 0; moved < n; ++moved) {
      // Pick the best-gain vertex whose move keeps both sides legal.
      const int chosen = order.pop_best([&](int v) {
        const int from = s.side[static_cast<size_t>(v)];
        const int count0_after = count0 + (from == 0 ? -1 : +1);
        const int count1_after = n - count0_after;
        return count0_after >= options.min_side &&
               count1_after >= options.min_side && count0_after <= max_side &&
               count1_after <= max_side;
      });
      if (chosen < 0) break;  // no legal move remains
      s.locked[static_cast<size_t>(chosen)] = 1;

      const int from = s.side[static_cast<size_t>(chosen)];
      s.side[static_cast<size_t>(chosen)] = 1 - from;
      count0 += (from == 0 ? -1 : +1);
      running_cut -= s.gain[static_cast<size_t>(chosen)];
      s.move_vertex.push_back(chosen);
      s.move_cut.push_back(running_cut);

      // Update neighbor gains (FM's incremental rule).
      for (int i = s.adj_offset[static_cast<size_t>(chosen)];
           i < s.adj_offset[static_cast<size_t>(chosen) + 1]; ++i) {
        const int nb = s.adj_vertex[static_cast<size_t>(i)];
        if (s.locked[static_cast<size_t>(nb)] != 0) continue;
        const double w = s.adj_weight[static_cast<size_t>(i)];
        // Neighbor previously saw `chosen` on side `from`; it moved away.
        if (s.side[static_cast<size_t>(nb)] == from) {
          // Edge became external: gain increases by 2w.
          s.gain[static_cast<size_t>(nb)] += 2 * w;
        } else {
          s.gain[static_cast<size_t>(nb)] -= 2 * w;
        }
        order.update(nb, s.gain[static_cast<size_t>(nb)]);
      }
    }

    // Find the best prefix of moves (strictly better than the pass start).
    double best_cut = result.cut_weight;
    int best_prefix = 0;
    for (size_t i = 0; i < s.move_cut.size(); ++i) {
      if (s.move_cut[i] < best_cut - 1e-12) {
        best_cut = s.move_cut[i];
        best_prefix = static_cast<int>(i) + 1;
      }
    }
    if (best_prefix == 0) break;  // converged

    for (int i = 0; i < best_prefix; ++i) {
      const int v = s.move_vertex[static_cast<size_t>(i)];
      result.side[static_cast<size_t>(v)] = 1 - result.side[static_cast<size_t>(v)];
    }
    result.cut_weight = best_cut;
  }

  // Guard against floating-point drift in the incremental cut tracking.
  result.cut_weight = cut_weight(graph, result.side);
  return result;
}

FmResult fm_bipartition_reference(const FmGraph& graph,
                                  std::vector<int> initial,
                                  const FmOptions& options) {
  const int n = graph.vertex_count;
  GTS_CHECK_EQ(static_cast<int>(initial.size()), n);

  FmResult result;
  result.side = std::move(initial);
  result.initial_cut = cut_weight(graph, result.side);
  result.cut_weight = result.initial_cut;
  if (n < 2) return result;

  const Adjacency adj(graph);
  int max_side = static_cast<int>(options.max_side_fraction *
                                  static_cast<double>(n));
  max_side = std::max(max_side, n / 2 + 1);
  max_side = std::min(max_side, n - options.min_side);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    std::vector<int> side = result.side;
    int count0 = static_cast<int>(
        std::count(side.begin(), side.end(), 0));

    // Gain-ordered set of movable vertices: (-gain, vertex) so the best
    // gain pops first and equal gains resolve to the lowest vertex id.
    std::vector<double> gain(static_cast<size_t>(n));
    std::set<std::pair<double, int>> order;
    for (int v = 0; v < n; ++v) {
      gain[static_cast<size_t>(v)] = vertex_gain(adj, side, v);
      order.insert({-gain[static_cast<size_t>(v)], v});
    }

    struct Move {
      int vertex;
      double cumulative_cut;
    };
    std::vector<Move> moves;
    moves.reserve(static_cast<size_t>(n));
    std::vector<bool> locked(static_cast<size_t>(n), false);
    double running_cut = result.cut_weight;

    while (!order.empty()) {
      auto it = order.begin();
      int chosen = -1;
      for (; it != order.end(); ++it) {
        const int v = it->second;
        const int from = side[static_cast<size_t>(v)];
        const int count0_after = count0 + (from == 0 ? -1 : +1);
        const int count1_after = n - count0_after;
        if (count0_after >= options.min_side &&
            count1_after >= options.min_side && count0_after <= max_side &&
            count1_after <= max_side) {
          chosen = v;
          break;
        }
      }
      if (chosen < 0) break;  // no legal move remains
      order.erase(it);
      locked[static_cast<size_t>(chosen)] = true;

      const int from = side[static_cast<size_t>(chosen)];
      side[static_cast<size_t>(chosen)] = 1 - from;
      count0 += (from == 0 ? -1 : +1);
      running_cut -= gain[static_cast<size_t>(chosen)];
      moves.push_back({chosen, running_cut});

      for (const auto& nb : adj.lists[static_cast<size_t>(chosen)]) {
        if (locked[static_cast<size_t>(nb.vertex)]) continue;
        order.erase({-gain[static_cast<size_t>(nb.vertex)], nb.vertex});
        if (side[static_cast<size_t>(nb.vertex)] == from) {
          gain[static_cast<size_t>(nb.vertex)] += 2 * nb.weight;
        } else {
          gain[static_cast<size_t>(nb.vertex)] -= 2 * nb.weight;
        }
        order.insert({-gain[static_cast<size_t>(nb.vertex)], nb.vertex});
      }
    }

    double best_cut = result.cut_weight;
    int best_prefix = 0;
    for (size_t i = 0; i < moves.size(); ++i) {
      if (moves[i].cumulative_cut < best_cut - 1e-12) {
        best_cut = moves[i].cumulative_cut;
        best_prefix = static_cast<int>(i) + 1;
      }
    }
    if (best_prefix == 0) break;  // converged

    for (int i = 0; i < best_prefix; ++i) {
      const int v = moves[static_cast<size_t>(i)].vertex;
      result.side[static_cast<size_t>(v)] = 1 - result.side[static_cast<size_t>(v)];
    }
    result.cut_weight = best_cut;
  }

  result.cut_weight = cut_weight(graph, result.side);
  return result;
}

}  // namespace gts::partition
