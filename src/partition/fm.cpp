#include "partition/fm.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "check/check.hpp"

namespace gts::partition {

namespace {

/// Adjacency built once per call; graphs are small and short-lived.
struct Adjacency {
  struct Neighbor {
    int vertex;
    double weight;
  };
  std::vector<std::vector<Neighbor>> lists;

  explicit Adjacency(const FmGraph& graph)
      : lists(static_cast<size_t>(graph.vertex_count)) {
    for (const FmGraph::Edge& edge : graph.edges) {
      lists[static_cast<size_t>(edge.a)].push_back({edge.b, edge.weight});
      lists[static_cast<size_t>(edge.b)].push_back({edge.a, edge.weight});
    }
  }
};

/// Gain of moving `v` to the other side: external weight - internal weight.
double vertex_gain(const Adjacency& adj, const std::vector<int>& side, int v) {
  double gain = 0.0;
  for (const auto& n : adj.lists[static_cast<size_t>(v)]) {
    gain += (side[static_cast<size_t>(n.vertex)] != side[static_cast<size_t>(v)])
                ? n.weight
                : -n.weight;
  }
  return gain;
}

}  // namespace

double cut_weight(const FmGraph& graph, const std::vector<int>& side) {
  double cut = 0.0;
  for (const FmGraph::Edge& edge : graph.edges) {
    if (side[static_cast<size_t>(edge.a)] != side[static_cast<size_t>(edge.b)]) {
      cut += edge.weight;
    }
  }
  return cut;
}

FmResult fm_bipartition(const FmGraph& graph, std::vector<int> initial,
                        const FmOptions& options) {
  const int n = graph.vertex_count;
  GTS_CHECK_EQ(static_cast<int>(initial.size()), n);

  FmResult result;
  result.side = std::move(initial);
  result.initial_cut = cut_weight(graph, result.side);
  result.cut_weight = result.initial_cut;
  if (n < 2) return result;

  const Adjacency adj(graph);
  // FM's classic balance criterion allows a one-vertex slack around the
  // target fraction so moves are possible from an exactly-balanced start.
  int max_side = static_cast<int>(options.max_side_fraction *
                                  static_cast<double>(n));
  max_side = std::max(max_side, n / 2 + 1);
  max_side = std::min(max_side, n - options.min_side);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    std::vector<int> side = result.side;
    int count0 = static_cast<int>(
        std::count(side.begin(), side.end(), 0));

    // Gain-ordered set of movable vertices: (-gain, vertex) so the best
    // gain pops first and equal gains resolve to the lowest vertex id.
    std::vector<double> gain(static_cast<size_t>(n));
    std::set<std::pair<double, int>> order;
    for (int v = 0; v < n; ++v) {
      gain[static_cast<size_t>(v)] = vertex_gain(adj, side, v);
      order.insert({-gain[static_cast<size_t>(v)], v});
    }

    // Tentatively move every vertex once, tracking the best prefix.
    struct Move {
      int vertex;
      double cumulative_cut;
    };
    std::vector<Move> moves;
    moves.reserve(static_cast<size_t>(n));
    std::vector<bool> locked(static_cast<size_t>(n), false);
    double running_cut = result.cut_weight;

    while (!order.empty()) {
      // Pick the best-gain vertex whose move keeps both sides legal.
      auto it = order.begin();
      int chosen = -1;
      for (; it != order.end(); ++it) {
        const int v = it->second;
        const int from = side[static_cast<size_t>(v)];
        const int count0_after = count0 + (from == 0 ? -1 : +1);
        const int count1_after = n - count0_after;
        if (count0_after >= options.min_side &&
            count1_after >= options.min_side && count0_after <= max_side &&
            count1_after <= max_side) {
          chosen = v;
          break;
        }
      }
      if (chosen < 0) break;  // no legal move remains
      order.erase(it);
      locked[static_cast<size_t>(chosen)] = true;

      const int from = side[static_cast<size_t>(chosen)];
      side[static_cast<size_t>(chosen)] = 1 - from;
      count0 += (from == 0 ? -1 : +1);
      running_cut -= gain[static_cast<size_t>(chosen)];
      moves.push_back({chosen, running_cut});

      // Update neighbor gains (FM's incremental rule).
      for (const auto& nb : adj.lists[static_cast<size_t>(chosen)]) {
        if (locked[static_cast<size_t>(nb.vertex)]) continue;
        order.erase({-gain[static_cast<size_t>(nb.vertex)], nb.vertex});
        // Neighbor previously saw `chosen` on side `from`; it moved away.
        if (side[static_cast<size_t>(nb.vertex)] == from) {
          // Edge became external: gain increases by 2w.
          gain[static_cast<size_t>(nb.vertex)] += 2 * nb.weight;
        } else {
          gain[static_cast<size_t>(nb.vertex)] -= 2 * nb.weight;
        }
        order.insert({-gain[static_cast<size_t>(nb.vertex)], nb.vertex});
      }
    }

    // Find the best prefix of moves (strictly better than the pass start).
    double best_cut = result.cut_weight;
    int best_prefix = 0;
    for (size_t i = 0; i < moves.size(); ++i) {
      if (moves[i].cumulative_cut < best_cut - 1e-12) {
        best_cut = moves[i].cumulative_cut;
        best_prefix = static_cast<int>(i) + 1;
      }
    }
    if (best_prefix == 0) break;  // converged

    for (int i = 0; i < best_prefix; ++i) {
      const int v = moves[static_cast<size_t>(i)].vertex;
      result.side[static_cast<size_t>(v)] = 1 - result.side[static_cast<size_t>(v)];
    }
    result.cut_weight = best_cut;
  }

  // Guard against floating-point drift in the incremental cut tracking.
  result.cut_weight = cut_weight(graph, result.side);
  return result;
}

}  // namespace gts::partition
