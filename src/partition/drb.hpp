// Dual Recursive Bipartitioning mapper (Algorithms 2 and 3 of the paper,
// after Ercal et al.'s recursive mincut bipartitioning and SCOTCH's DRB).
//
// drb_map() recursively splits the physical GPU set with a
// Fiduccia-Mattheyses mincut on a "closeness" graph (close GPUs attract),
// and splits the job's task set by asking, per task, which side yields the
// higher utility (Algorithm 3). The utility itself — communication cost,
// interference, fragmentation (Eqs. 1-5) — is supplied by the scheduler
// through the DrbCallbacks interface, keeping this module independent of
// cluster state.
//
// The recursion grounds out when a side holds one GPU (map the task) or no
// tasks. Complexity is Theta(|E_A| * log2 |V_P|) per the paper.
#pragma once

#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "topo/topology.hpp"

namespace gts::partition {

/// Both sides of the current bipartition as seen by Algorithm 3: the
/// available GPUs of each physical side and the tasks already routed to
/// each side.
struct BipartitionView {
  const std::vector<int>& gpus0;
  const std::vector<int>& gpus1;
  const std::vector<int>& tasks0;
  const std::vector<int>& tasks1;
};

/// Scheduler-supplied evaluation of U(task, Py) (Algorithm 3, line 7).
class DrbCallbacks {
 public:
  virtual ~DrbCallbacks() = default;

  /// Called once at the top of each job bipartition, before any
  /// task_utility call against these side GPU sets. The GPU sets are fixed
  /// for the whole bipartition (only the routed task lists grow), so
  /// implementations can compute side aggregates here once instead of per
  /// task_utility call. The referenced vectors stay alive and unchanged
  /// until the next begin_bipartition. Default: no-op.
  virtual void begin_bipartition(const std::vector<int>& gpus0,
                                 const std::vector<int>& gpus1) const {
    (void)gpus0;
    (void)gpus1;
  }

  /// Utility (higher is better) of routing `task` to side `side` (0 or 1)
  /// of the current bipartition.
  virtual double task_utility(int task, int side,
                              const BipartitionView& view) const = 0;
};

/// How the job's tasks may span machines (Section 4.4: the algorithm
/// "preferentially places as many tasks as possible for a job in the same
/// node"; single-node and anti-collocation are job profile constraints).
enum class SpanMode {
  kPreferPack,    // keep tasks on one machine when capacity allows
  kSingleNode,    // tasks MUST share one machine; otherwise unplaceable
  kAntiCollocate, // every task on a distinct machine
};

struct DrbOptions {
  SpanMode span = SpanMode::kPreferPack;
};

struct DrbStats {
  int bipartitions = 0;   // physical bipartition invocations
  int fm_passes = 0;      // total FM passes across bipartitions
  int max_depth = 0;      // recursion depth reached
};

struct DrbResult {
  /// assignment[task] = global GPU id, or -1 when the task could not be
  /// mapped (capacity or constraint failure).
  std::vector<int> assignment;
  bool complete = false;
  DrbStats stats;

  /// GPU ids in task order; empty unless complete.
  std::vector<int> gpus() const;
};

/// Maps every task of `job` onto a distinct GPU from `available_gpus`.
/// `available_gpus` are global GPU indices into `topology` (the output of
/// the scheduler's host-filtering step, i.e. the graph P').
DrbResult drb_map(const jobgraph::JobGraph& job,
                  const std::vector<int>& available_gpus,
                  const topo::TopologyGraph& topology,
                  const DrbCallbacks& callbacks, const DrbOptions& options = {});

/// Bipartitions a GPU set by topology closeness: hierarchical initial split
/// (machines, then sockets, then halves) refined with FM. Exposed for tests
/// and the overhead bench. Returns side (0/1) per position in `gpus`.
std::vector<int> physical_bipartition(const std::vector<int>& gpus,
                                      const topo::TopologyGraph& topology,
                                      DrbStats* stats = nullptr);

}  // namespace gts::partition
