// Annotated synchronization primitives (DESIGN.md section 16).
//
// libstdc++'s std::mutex carries no thread-safety attributes, so Clang's
// analysis cannot reason about code that locks it directly. These wrappers
// add the capability annotations while staying zero-overhead: Mutex is
// layout-identical to std::mutex, MutexLock to std::lock_guard, and every
// method is a forwarding inline. Concurrent subsystems (runner thread
// pool, obs buffers/registry, svc, util logger) hold locks exclusively
// through these types.
//
// SerialCapability is the second, zero-size kind of capability: it models
// single-thread confinement instead of mutual exclusion. State that is
// only ever touched from one logical context (the svc reactor loop, one
// runner replica's scheduler instance) is declared
// GTS_GUARDED_BY(serial_), and the context entry point takes a
// SerialGuard. The analysis then proves no new code path reaches that
// state without going through the entry point — and when a future PR
// makes the context concurrent, swapping SerialCapability for Mutex turns
// every such access into a compile error until it is really locked.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace gts::util {

/// Annotated std::mutex. `native()` is the escape hatch for APIs that
/// need the raw mutex (e.g. CondVar); using it forfeits the analysis for
/// that access, so keep it out of application code.
class GTS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GTS_ACQUIRE() { mutex_.lock(); }
  void unlock() GTS_RELEASE() { mutex_.unlock(); }
  bool try_lock() GTS_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Annotated scoped lock (std::lock_guard shape: no unlock, no move).
class GTS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) GTS_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() GTS_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable usable with util::Mutex. wait() temporarily hands
/// the already-held Mutex to a std::unique_lock (adopt/release), so the
/// capability stays held across the call from the analysis's point of
/// view — which matches reality: wait() returns with the lock re-taken.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) GTS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate predicate) GTS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    cv_.wait(lock, std::move(predicate));
    lock.release();
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mutex,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate predicate) GTS_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.native(), std::adopt_lock);
    const bool satisfied = cv_.wait_for(lock, timeout, std::move(predicate));
    lock.release();
    return satisfied;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Zero-size capability modelling single-thread confinement (see file
/// comment). acquire()/release() are annotation-only no-ops.
class GTS_CAPABILITY("role") SerialCapability {
 public:
  SerialCapability() = default;
  SerialCapability(const SerialCapability&) = delete;
  SerialCapability& operator=(const SerialCapability&) = delete;

  void acquire() GTS_ACQUIRE() {}
  void release() GTS_RELEASE() {}
};

/// Scoped entry into a serial context. Purely a compile-time artifact.
class GTS_SCOPED_CAPABILITY SerialGuard {
 public:
  explicit SerialGuard(SerialCapability& role) GTS_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~SerialGuard() GTS_RELEASE() { role_.release(); }

  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;

 private:
  SerialCapability& role_;
};

}  // namespace gts::util
