#include "util/log.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/strings.hpp"

namespace gts::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Expected<LogLevel> parse_log_level(std::string_view text) {
  const std::string lower = to_lower(trim(text));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return Error{"unknown log level '" + std::string(text) + "'"};
}

Logger::Logger() {
  if (const char* spec = std::getenv("GTS_LOG");
      spec != nullptr && spec[0] != '\0') {
    if (const Status status = configure_from_spec(spec); !status) {
      std::fprintf(stderr, "[WARN] log: ignoring GTS_LOG: %s\n",
                   status.error().message.c_str());
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

bool Logger::enabled(LogLevel level, std::string_view component) const {
  if (!has_overrides_.load(std::memory_order_relaxed)) return enabled(level);
  MutexLock lock(mutex_);
  if (const auto it = component_levels_.find(component);
      it != component_levels_.end()) {
    return static_cast<int>(level) >= static_cast<int>(it->second);
  }
  return enabled(level);
}

void Logger::set_component_level(std::string_view component, LogLevel level) {
  MutexLock lock(mutex_);
  component_levels_.insert_or_assign(std::string(component), level);
  has_overrides_.store(true, std::memory_order_relaxed);
}

void Logger::clear_component_levels() {
  MutexLock lock(mutex_);
  component_levels_.clear();
  has_overrides_.store(false, std::memory_order_relaxed);
}

Status Logger::configure_from_spec(std::string_view spec) {
  // Parse fully before applying so a bad token leaves the logger unchanged.
  std::optional<LogLevel> global;
  std::vector<std::pair<std::string, LogLevel>> overrides;
  for (const std::string& token : split(spec, ',')) {
    const std::string_view trimmed = trim(token);
    if (trimmed.empty()) continue;
    const size_t eq = trimmed.find('=');
    if (eq == std::string_view::npos) {
      const auto level = parse_log_level(trimmed);
      if (!level) return level.error();
      global = *level;
      continue;
    }
    const std::string_view component = trim(trimmed.substr(0, eq));
    if (component.empty()) {
      return Error{"log spec: empty component in '" + std::string(trimmed) +
                   "'"};
    }
    const auto level = parse_log_level(trimmed.substr(eq + 1));
    if (!level) return level.error();
    overrides.emplace_back(std::string(component), *level);
  }
  if (global) set_level(*global);
  for (const auto& [component, level] : overrides) {
    set_component_level(component, level);
  }
  return Status::ok();
}

void Logger::set_sink(LogSink sink) {
  MutexLock lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::write_stderr(LogLevel level, std::string_view component,
                          std::string_view message) {
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  MutexLock lock(mutex_);
  if (sink_) {
    sink_(level, component, message);
  } else {
    write_stderr(level, component, message);
  }
}

}  // namespace gts::util
