#include "util/log.hpp"

#include <cstdio>

namespace gts::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace gts::util
