// Fixed-size thread pool for embarrassingly parallel fan-out.
//
// Deliberately minimal: submit() enqueues a task, wait_idle() blocks until
// every submitted task has finished. No futures, no work stealing — every
// user writes each task's result into a pre-sized slot indexed by task
// number (the sweep runner per replica, the parallel candidate scorer per
// candidate chunk), so completion order never influences output order and
// results stay byte-identical regardless of thread count.
//
// Lived in src/runner/ until the scheduler grew parallel candidate
// scoring; gts_sched cannot link gts_runner (the dependency arrow points
// the other way), so the pool moved down to util. runner/thread_pool.hpp
// remains as a forwarding alias for existing includes.
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace gts::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; <= 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding tasks (wait_idle) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks must not throw — wrap fallible work and stash
  /// the error (the sweep runner records an exception slot per replica).
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no worker is mid-task.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  std::deque<std::function<void()>> tasks_ GTS_GUARDED_BY(mutex_);
  util::CondVar work_cv_;  // workers wait for tasks
  util::CondVar idle_cv_;  // wait_idle waits for quiescence
  int active_ GTS_GUARDED_BY(mutex_) = 0;
  bool stop_ GTS_GUARDED_BY(mutex_) = false;
};

/// Runs fn(0..count-1) across the pool and waits for all of them.
void parallel_for(ThreadPool& pool, int count,
                  const std::function<void(int)>& fn);

}  // namespace gts::util
