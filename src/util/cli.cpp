#include "util/cli.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace gts::util {

void CliParser::add_option(const std::string& name, const std::string& help,
                           std::optional<std::string> default_value) {
  specs_[name] = Spec{help, std::move(default_value), /*is_flag=*/false};
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, std::nullopt, /*is_flag=*/true};
}

Status CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      return Error{fmt("unknown option --{}", name)};
    }
    if (it->second.is_flag) {
      if (has_inline_value) {
        return Error{fmt("flag --{} does not take a value", name)};
      }
      values_[name] = "true";
      continue;
    }
    if (!has_inline_value) {
      if (i + 1 >= argc) {
        return Error{fmt("option --{} requires a value", name)};
      }
      value = argv[++i];
    }
    values_[name] = std::move(value);
  }
  return Status::ok();
}

bool CliParser::has(const std::string& name) const {
  if (values_.count(name) > 0) return true;
  const auto it = specs_.find(name);
  return it != specs_.end() && it->second.default_value.has_value();
}

std::string CliParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  if (const auto it = specs_.find(name);
      it != specs_.end() && it->second.default_value) {
    return *it->second.default_value;
  }
  return {};
}

long long CliParser::get_int(const std::string& name) const {
  return parse_int(get(name)).value_or(0);
}

double CliParser::get_double(const std::string& name) const {
  return parse_double(get(name)).value_or(0.0);
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "  " << spec.help;
    if (spec.default_value) os << " (default: " << *spec.default_value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace gts::util
