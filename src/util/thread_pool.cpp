#include "util/thread_pool.hpp"

#include <algorithm>

namespace gts::util {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  util::MutexLock lock(mutex_);
  while (!tasks_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) work_cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      util::MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, int count,
                  const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    pool.submit([&fn, i]() { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace gts::util
