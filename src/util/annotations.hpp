// Compile-time thread-safety capability annotations (DESIGN.md section 16).
//
// Thin GTS_* wrappers around Clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under
// `clang++ -Wthread-safety` (the `thread-safety` CMake preset and the
// static-analysis CI job) the analysis proves, per translation unit, that
// every access to a `GTS_GUARDED_BY(mu)` member happens with `mu` held and
// that lock/unlock pairs balance. Under GCC — the default dev-container
// compiler — every macro expands to nothing, so annotated code carries
// zero cost and zero semantic change.
//
// The annotated primitives that make the analysis useful live in
// util/sync.hpp (util::Mutex, util::MutexLock, util::CondVar,
// util::SerialCapability); std::mutex itself is not annotated under
// libstdc++, so annotated code must hold locks through those wrappers.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define GTS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GTS_THREAD_ANNOTATION
#define GTS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (lockable). The string names the
/// capability kind in diagnostics, e.g. GTS_CAPABILITY("mutex").
#define GTS_CAPABILITY(x) GTS_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases
/// a capability (lock guards).
#define GTS_SCOPED_CAPABILITY GTS_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define GTS_GUARDED_BY(x) GTS_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability
/// (the pointer itself may be read freely).
#define GTS_PT_GUARDED_BY(x) GTS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations on capability members.
#define GTS_ACQUIRED_BEFORE(...) \
  GTS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GTS_ACQUIRED_AFTER(...) \
  GTS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held (exclusively / shared) on entry,
/// and does not release it.
#define GTS_REQUIRES(...) \
  GTS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GTS_REQUIRES_SHARED(...) \
  GTS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define GTS_ACQUIRE(...) \
  GTS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GTS_ACQUIRE_SHARED(...) \
  GTS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define GTS_RELEASE(...) \
  GTS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GTS_RELEASE_SHARED(...) \
  GTS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire the capability; first argument is the return
/// value that means success, e.g. GTS_TRY_ACQUIRE(true).
#define GTS_TRY_ACQUIRE(...) \
  GTS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (deadlock guard
/// for functions that acquire it internally).
#define GTS_EXCLUDES(...) GTS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread already holds the capability
/// (tells the analysis to trust it from here on).
#define GTS_ASSERT_CAPABILITY(x) \
  GTS_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability (accessors that
/// expose a member mutex).
#define GTS_RETURN_CAPABILITY(x) GTS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the analysis cannot see the invariant.
#define GTS_NO_THREAD_SAFETY_ANALYSIS \
  GTS_THREAD_ANNOTATION(no_thread_safety_analysis)
