#include "util/rng.hpp"

#include <cmath>

namespace gts::util {

std::uint64_t Rng::uniform_int(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double lambda) noexcept {
  // Inversion; 1 - uniform() is in (0, 1], so log() is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

int Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 60.0) {
    // Knuth's product-of-uniforms method.
    const double threshold = std::exp(-mean);
    int count = 0;
    double product = uniform();
    while (product > threshold) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double sample = normal(mean, std::sqrt(mean));
  return sample < 0.0 ? 0 : static_cast<int>(sample + 0.5);
}

int Rng::binomial(int n, double p) noexcept {
  if (p <= 0.0 || n <= 0) return 0;
  if (p >= 1.0) return n;
  int count = 0;
  for (int i = 0; i < n; ++i) {
    if (uniform() < p) ++count;
  }
  return count;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; always consumes exactly two uniforms.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * radius * std::cos(angle);
}

}  // namespace gts::util
