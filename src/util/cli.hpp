// Small command-line parser used by the examples and bench binaries.
//
// Supports "--name value", "--name=value", and boolean flags "--name".
// Unknown options are an error; positional arguments are collected in order.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace gts::util {

class CliParser {
 public:
  /// Declares an option. `help` is shown by usage(); `default_value` (if
  /// any) is returned when the option is absent.
  void add_option(const std::string& name, const std::string& help,
                  std::optional<std::string> default_value = std::nullopt);

  /// Declares a boolean flag (present -> true).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On success the accessors below become valid.
  Status parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }

  /// Usage text listing all declared options.
  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string help;
    std::optional<std::string> default_value;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gts::util
