#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace gts::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<long long> parse_int(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace gts::util
