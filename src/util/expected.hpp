// A small Expected<T> / Error pair used across the library for fallible
// operations (parsing, discovery, manifest loading). Kept deliberately
// simpler than std::expected (not available in GCC 12's libstdc++): the
// error type is always gts::util::Error.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "check/check.hpp"

namespace gts::util {

/// Error carried by Expected. `context` is a human-readable chain like
/// "manifest.json: line 4: expected ':'".
struct Error {
  std::string message;

  /// Returns a copy with `prefix + ": "` prepended; used to add context as
  /// errors propagate outward.
  Error with_context(const std::string& prefix) const {
    return Error{prefix + ": " + message};
  }
};

/// Thrown by Expected::value() on a disengaged Expected.
class BadExpectedAccess : public std::runtime_error {
 public:
  explicit BadExpectedAccess(const std::string& what)
      : std::runtime_error(what) {}
};

template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT implicit
  Expected(Error error) : data_(std::move(error)) {}  // NOLINT implicit

  bool has_value() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return has_value(); }

  const T& value() const& {
    if (!has_value()) throw BadExpectedAccess(error().message);
    return std::get<T>(data_);
  }
  T& value() & {
    if (!has_value()) throw BadExpectedAccess(error().message);
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!has_value()) throw BadExpectedAccess(error().message);
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    GTS_CHECK(!has_value(), "error() on an engaged Expected");
    return std::get<Error>(data_);
  }

  T value_or(T fallback) const& {
    return has_value() ? std::get<T>(data_) : std::move(fallback);
  }

  /// Maps the contained value through `f`, propagating errors unchanged.
  template <typename F>
  auto map(F&& f) const& -> Expected<decltype(f(std::declval<const T&>()))> {
    if (!has_value()) return error();
    return f(std::get<T>(data_));
  }

 private:
  std::variant<T, Error> data_;
};

/// Expected<void> analogue: success or error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT implicit

  static Status ok() { return Status(); }

  bool is_ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  const Error& error() const {
    GTS_CHECK(!is_ok(), "error() on an OK Status");
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace gts::util
