// String helpers shared across modules: splitting, trimming, case folding,
// number parsing, and a tiny printf-like formatter with "{}" placeholders.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gts::util {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits `text` on runs of whitespace, dropping empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Strict parse of a decimal integer; nullopt on any trailing garbage.
std::optional<long long> parse_int(std::string_view text);

/// Strict parse of a floating-point number; nullopt on any trailing garbage.
std::optional<double> parse_double(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

namespace detail {
inline void format_impl(std::ostringstream& os, std::string_view fmt) {
  os << fmt;
}
template <typename T, typename... Rest>
void format_impl(std::ostringstream& os, std::string_view fmt, const T& value,
                 const Rest&... rest) {
  const size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;
    return;
  }
  os << fmt.substr(0, pos) << value;
  format_impl(os, fmt.substr(pos + 2), rest...);
}
}  // namespace detail

/// fmt("a={} b={}", 1, 2.5) -> "a=1 b=2.5". Extra arguments are ignored when
/// there are fewer "{}" than arguments; extra "{}" are printed literally.
template <typename... Args>
std::string fmt(std::string_view format, const Args&... args) {
  std::ostringstream os;
  detail::format_impl(os, format, args...);
  return os.str();
}

/// Fixed-precision double rendering ("1.30", precision 2).
std::string format_double(double value, int precision);

}  // namespace gts::util
