// Minimal leveled logger for the gpu-topo-sched library.
//
// The library is deterministic and single-threaded by design (the
// discrete-event simulator owns time), but the logger is still guarded by a
// mutex so that example programs may log from worker threads safely.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace gts::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the short uppercase tag for a level ("INFO", "WARN", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Global logger. Writes to stderr; level filter is process-wide.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Emit one line: "[LEVEL] component: message".
  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

/// Streams all arguments into one log line if `level` is enabled.
template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  logger.write(level, component, os.str());
}

#define GTS_LOG_TRACE(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kTrace, component, __VA_ARGS__)
#define GTS_LOG_DEBUG(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kDebug, component, __VA_ARGS__)
#define GTS_LOG_INFO(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kInfo, component, __VA_ARGS__)
#define GTS_LOG_WARN(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kWarn, component, __VA_ARGS__)
#define GTS_LOG_ERROR(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace gts::util
