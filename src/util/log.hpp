// Minimal leveled logger for the gpu-topo-sched library.
//
// The library is deterministic and single-threaded by design (the
// discrete-event simulator owns time), but the logger is still guarded by a
// mutex so that example programs may log from worker threads safely.
//
// Output is pluggable: set_sink() replaces the stderr writer (the obs layer
// uses this to mirror log lines into the trace timeline), and per-component
// level overrides allow e.g. GTS_LOG=sched=debug,fm=trace to open up two
// components without drowning in the rest. The GTS_LOG environment variable
// is applied on first use; its grammar is a comma list of either a bare
// level (the global threshold) or "<component>=<level>".
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <string_view>

#include "util/annotations.hpp"
#include "util/expected.hpp"
#include "util/sync.hpp"

namespace gts::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the short uppercase tag for a level ("INFO", "WARN", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Parses "trace" / "debug" / "info" / "warn" / "error" / "off".
Expected<LogLevel> parse_log_level(std::string_view text);

/// Receives every emitted line. Installed via Logger::set_sink.
using LogSink =
    std::function<void(LogLevel, std::string_view /*component*/,
                       std::string_view /*message*/)>;

/// Global logger. Writes to stderr by default; level filter is process-wide
/// with optional per-component overrides.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const noexcept {
    return level_.load(std::memory_order_relaxed);
  }

  /// Global-threshold check (cheap pre-filter; ignores overrides).
  bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

  /// Effective check for one component: the component's override wins over
  /// the global threshold when present.
  bool enabled(LogLevel level, std::string_view component) const;

  /// Per-component threshold override ("fm" at kTrace while the global
  /// level stays kWarn). An override may lower or raise the threshold.
  void set_component_level(std::string_view component, LogLevel level);
  void clear_component_levels();

  /// Applies a GTS_LOG-style spec: comma-separated tokens, each either a
  /// bare level name (global threshold) or "<component>=<level>".
  /// "sched=debug,fm=trace" or "info,drb=trace".
  Status configure_from_spec(std::string_view spec);

  /// Replaces the output sink; an empty function restores the stderr
  /// default. The sink is called with the level filter already applied.
  void set_sink(LogSink sink);

  /// The default stderr writer: "[LEVEL] component: message".
  static void write_stderr(LogLevel level, std::string_view component,
                           std::string_view message);

  /// Emit one line through the current sink.
  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger();
  // level_/has_overrides_ are lock-free pre-filters read on every log
  // call site; the override table and sink swap under the mutex.
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<bool> has_overrides_{false};
  mutable Mutex mutex_;
  std::map<std::string, LogLevel, std::less<>> component_levels_
      GTS_GUARDED_BY(mutex_);
  LogSink sink_ GTS_GUARDED_BY(mutex_);
};

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

/// Streams all arguments into one log line if `level` is enabled for
/// `component`.
template <typename... Args>
void log(LogLevel level, std::string_view component, const Args&... args) {
  Logger& logger = Logger::instance();
  if (!logger.enabled(level, component)) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  logger.write(level, component, os.str());
}

#define GTS_LOG_TRACE(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kTrace, component, __VA_ARGS__)
#define GTS_LOG_DEBUG(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kDebug, component, __VA_ARGS__)
#define GTS_LOG_INFO(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kInfo, component, __VA_ARGS__)
#define GTS_LOG_WARN(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kWarn, component, __VA_ARGS__)
#define GTS_LOG_ERROR(component, ...) \
  ::gts::util::log(::gts::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace gts::util
