// Deterministic random number generation for the simulator and workload
// generator.
//
// All stochastic behaviour in the reproduction flows through Xoshiro256**
// seeded via SplitMix64, so a (seed, stream) pair fully determines every
// experiment. We deliberately avoid std::mt19937 + std::*_distribution:
// libstdc++'s distributions are not guaranteed to produce the same sequence
// across versions, which would make recorded experiment outputs
// non-reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace gts::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna). Fast, high quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  /// Derives an independent stream (used to decouple arrival sampling from
  /// configuration sampling so adding one draw does not shift the other).
  Rng fork(std::uint64_t stream) noexcept {
    SplitMix64 sm(next() ^ (0x853c49e6748fea9bULL * (stream + 1)));
    Rng child(sm.next());
    return child;
  }

  /// Pure (seed, stream) derivation: unlike fork(), does not consume state
  /// from any generator, so replica N of a sweep gets the same sequence no
  /// matter which worker thread runs it or in what order replicas start.
  /// This is the runner's determinism contract (DESIGN.md).
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
    SplitMix64 sm(seed ^ (0x853c49e6748fea9bULL * (stream + 1)));
    return Rng(sm.next());
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t uniform_int(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  long long uniform_int(long long lo, long long hi) noexcept {
    return lo + static_cast<long long>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponential with rate `lambda` (mean 1/lambda); inter-arrival times of
  /// a Poisson process.
  double exponential(double lambda) noexcept;

  /// Poisson-distributed count with mean `mean` (Knuth for small means,
  /// normal approximation above 60).
  int poisson(double mean) noexcept;

  /// Binomial(n, p) by direct Bernoulli summation (n is small everywhere we
  /// use it: the paper draws batch-size and NN-type classes from
  /// Binomial(3, .) and Binomial(2, .)).
  int binomial(int n, double p) noexcept;

  /// Standard normal via Box-Muller (cached second value discarded to keep
  /// the draw count per call deterministic at 2).
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gts::util
