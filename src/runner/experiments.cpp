#include "runner/experiments.hpp"

#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "perf/model.hpp"
#include "topo/builders.hpp"
#include "util/strings.hpp"

namespace gts::runner {

namespace {

/// Deterministic scheduler-internal counters (cache + DRB); lives outside
/// the "timing" subtree on purpose — the counters are pure functions of
/// the decision sequence.
json::Value scheduler_stats_json(const exp::SchedulerStats& stats) {
  json::Object o;
  o["has_cache"] = stats.has_cache;
  if (stats.has_cache) {
    json::Object cache;
    cache["lookups"] = stats.cache.lookups;
    cache["hits"] = stats.cache.hits;
    cache["invalidations"] = stats.cache.invalidations;
    cache["hit_rate"] = stats.cache.hit_rate();
    o["cache"] = std::move(cache);
    json::Object drb;
    drb["bipartitions"] = stats.drb.bipartitions;
    drb["fm_passes"] = stats.drb.fm_passes;
    drb["max_depth"] = stats.drb.max_depth;
    o["drb"] = std::move(drb);
  }
  return o;
}

json::Value policy_entry_json(const exp::PolicyComparison::Entry& entry,
                              bool include_curves) {
  const metrics::Summary qos = metrics::summarize(entry.qos_slowdowns);
  const metrics::Summary wait = metrics::summarize(entry.qos_wait_slowdowns);
  json::Object o;
  o["makespan_s"] = entry.makespan;
  o["slo_violations"] = entry.slo_violations;
  o["qos_mean"] = qos.mean;
  o["qos_p95"] = qos.p95;
  o["qos_max"] = qos.max;
  o["qos_wait_mean"] = wait.mean;
  o["qos_wait_p95"] = wait.p95;
  o["mean_wait_s"] = entry.mean_waiting;
  o["sched_stats"] = scheduler_stats_json(entry.sched_stats);
  // Wall-clock measurement: reserved "timing" subtree, excluded from the
  // determinism contract (see runner::kTimingKey).
  json::Object timing;
  timing["mean_decision_us"] = entry.mean_decision_us;
  timing["decision_latency_us"] = entry.decision_latency_us.to_json();
  o[kTimingKey] = std::move(timing);
  if (include_curves) {
    json::Array qos_curve;
    for (const double v : entry.qos_slowdowns) qos_curve.push_back(v);
    o["qos_curve"] = std::move(qos_curve);
    json::Array wait_curve;
    for (const double v : entry.qos_wait_slowdowns) wait_curve.push_back(v);
    o["qos_wait_curve"] = std::move(wait_curve);
  }
  return o;
}

}  // namespace

json::Value policy_comparison_payload(const exp::PolicyComparison& comparison,
                                      bool include_curves) {
  json::Object payload;
  double events = 0.0;
  json::Object policies;
  for (const exp::PolicyComparison::Entry& entry : comparison.entries) {
    events += static_cast<double>(entry.events);
    policies[entry.name] = policy_entry_json(entry, include_curves);
  }
  payload["events"] = events;
  payload["policies"] = std::move(policies);
  return payload;
}

json::Value large_scale_payload(const exp::LargeScaleOptions& options,
                                bool include_curves) {
  return policy_comparison_payload(exp::run_large_scale(options),
                                   include_curves);
}

SweepResult run_large_scale_sweep(const LargeScaleSweepConfig& config) {
  SweepOptions options;
  options.name = config.name;
  options.scenarios = {"minsky-" + std::to_string(config.machines) + "m-" +
                       std::to_string(config.jobs) + "j"};
  options.seeds = config.seeds;
  options.threads = config.threads;
  options.metadata["experiment"] = "large_scale";
  options.metadata["machines"] = config.machines;
  options.metadata["jobs"] = config.jobs;
  options.metadata["iterations"] = config.iterations;
  options.metadata["policies"] = json::Array{
      json::Value("BF"), json::Value("FCFS"), json::Value("TOPO-AWARE"),
      json::Value("TOPO-AWARE-P")};

  const bool include_curves = config.include_curves;
  const int machines = config.machines;
  const int jobs = config.jobs;
  const long long iterations = config.iterations;
  return run_sweep(options, [=](const ReplicaContext& context) {
    exp::LargeScaleOptions replica;
    replica.machines = machines;
    replica.jobs = jobs;
    replica.iterations = iterations;
    replica.seed = context.seed;
    return large_scale_payload(replica, include_curves);
  });
}

metrics::Summary find_aggregate(const SweepResult& result,
                                const std::string& scenario,
                                const std::string& metric) {
  for (const MetricAggregate& aggregate : result.aggregates) {
    if (aggregate.scenario == scenario && aggregate.metric == metric) {
      return aggregate.summary;
    }
  }
  return metrics::Summary{};
}

std::string render_large_scale_table(const SweepResult& result) {
  const int seeds = static_cast<int>(result.options.seeds.size());
  const bool show_ci = seeds > 1;
  metrics::Table table({"scenario", "policy", "SLO violations",
                        show_ci ? "QoS mean +-CI95" : "QoS mean", "QoS p95",
                        show_ci ? "QoS+wait mean +-CI95" : "QoS+wait mean",
                        "mean wait(s)", "mean decision(us)"});
  const auto cell = [&](const metrics::Summary& s, int precision) {
    std::string text = util::format_double(s.mean, precision);
    if (show_ci) text += " +-" + util::format_double(s.ci95_half, precision);
    return text;
  };
  for (const std::string& scenario : result.options.scenarios) {
    for (const char* policy : {"BF", "FCFS", "TOPO-AWARE", "TOPO-AWARE-P"}) {
      const std::string prefix = std::string("policies.") + policy + ".";
      table.add_row(
          {scenario, policy,
           cell(find_aggregate(result, scenario, prefix + "slo_violations"), 1),
           cell(find_aggregate(result, scenario, prefix + "qos_mean"), 3),
           cell(find_aggregate(result, scenario, prefix + "qos_p95"), 3),
           cell(find_aggregate(result, scenario, prefix + "qos_wait_mean"), 3),
           cell(find_aggregate(result, scenario, prefix + "mean_wait_s"), 1),
           cell(find_aggregate(result, scenario,
                               prefix + "timing.mean_decision_us"),
                1)});
    }
  }
  return table.render();
}

json::Value fig8_payload() {
  const topo::TopologyGraph minsky = topo::builders::power8_minsky();
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());
  const std::vector<jobgraph::JobRequest> jobs =
      exp::table1_jobs(model, minsky);

  json::Object policies;
  for (const sched::Policy policy :
       {sched::Policy::kBestFit, sched::Policy::kFcfs,
        sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
    exp::SchedulerStats stats;
    const sched::DriverReport report =
        exp::run_policy(policy, jobs, minsky, model, {},
                        /*record_series=*/true, &stats);
    json::Object entry;
    entry["cumulative_time_s"] = report.recorder.makespan();
    entry["slo_violations"] = report.recorder.slo_violations();
    entry["mean_wait_s"] = report.recorder.mean_waiting_time();
    entry["sched_stats"] = scheduler_stats_json(stats);
    json::Array job_array;
    for (const cluster::JobRecord& record : report.recorder.records()) {
      json::Object job;
      job["id"] = record.id;
      job["start_s"] = record.start;
      job["end_s"] = record.end;
      json::Array gpus;
      for (const int gpu : record.gpus) gpus.push_back(gpu);
      job["gpus"] = std::move(gpus);
      job["utility"] = record.placement_utility;
      job["p2p"] = record.p2p;
      job["qos_slowdown"] = record.qos_slowdown();
      job["qos_wait_slowdown"] = record.qos_wait_slowdown();
      job_array.push_back(std::move(job));
    }
    entry["jobs"] = std::move(job_array);
    policies[std::string(sched::to_string(policy))] = std::move(entry);
  }

  json::Object doc;
  doc["schema_version"] = kBenchSchemaVersion;
  doc["experiment"] = "fig8_prototype";
  doc["policies"] = std::move(policies);
  return doc;
}

}  // namespace gts::runner
