#include "runner/sweep.hpp"

#include <chrono>
#include <exception>
#include <map>
#include <utility>

#include "check/check.hpp"
#include "obs/trace.hpp"
#include "runner/thread_pool.hpp"
#include "util/strings.hpp"

namespace gts::runner {

namespace {

struct FlatMetric {
  std::string path;
  double value = 0.0;
  bool timing = false;  // under a "timing" subtree somewhere along the path
};

/// Collects every numeric leaf of `value` under dotted paths, recursing
/// into objects only (arrays are payload-only data, not metrics). Leaves
/// below a member named kTimingKey are tagged as timing metrics.
void flatten_numeric(const json::Value& value, const std::string& prefix,
                     bool in_timing, std::vector<FlatMetric>* out) {
  if (value.is_number()) {
    if (!prefix.empty()) out->push_back({prefix, value.as_number(), in_timing});
    return;
  }
  if (!value.is_object()) return;
  for (const auto& [key, member] : value.as_object()) {
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    flatten_numeric(member, path, in_timing || key == kTimingKey, out);
  }
}

json::Value summary_to_json(const metrics::Summary& s) {
  json::Object o;
  o["count"] = s.count;
  o["mean"] = s.mean;
  o["stddev"] = s.stddev;
  o["min"] = s.min;
  o["p50"] = s.p50;
  o["p95"] = s.p95;
  o["max"] = s.max;
  o["ci95_half"] = s.ci95_half;
  return o;
}

}  // namespace

json::Value strip_timing(const json::Value& value) {
  if (value.is_object()) {
    json::Object out;
    for (const auto& [key, member] : value.as_object()) {
      if (key == kTimingKey) continue;
      out[key] = strip_timing(member);
    }
    return out;
  }
  if (value.is_array()) {
    json::Array out;
    for (const json::Value& member : value.as_array()) {
      out.push_back(strip_timing(member));
    }
    return out;
  }
  return value;
}

const Replica& SweepResult::replica(int scenario_index,
                                    std::uint64_t seed) const {
  for (const Replica& r : replicas) {
    if (r.scenario_index == scenario_index && r.seed == seed) return r;
  }
  GTS_CHECK(false, "no replica for scenario ", scenario_index, " seed ", seed);
  return replicas.front();  // unreachable
}

SweepResult run_sweep(const SweepOptions& options, const ReplicaFn& fn) {
  GTS_CHECK(!options.scenarios.empty(), "sweep needs at least one scenario");
  GTS_CHECK(!options.seeds.empty(), "sweep needs at least one seed");

  const int scenario_count = static_cast<int>(options.scenarios.size());
  const int seed_count = static_cast<int>(options.seeds.size());
  const int replica_count = scenario_count * seed_count;

  SweepResult result;
  result.options = options;
  result.replicas.resize(static_cast<size_t>(replica_count));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(replica_count));

  const auto t0 = std::chrono::steady_clock::now();
  {
    ThreadPool pool(options.threads);
    parallel_for(pool, replica_count, [&](int index) {
      const int scenario_index = index / seed_count;
      const int seed_index = index % seed_count;
      ReplicaContext context;
      context.scenario_index = scenario_index;
      context.scenario = options.scenarios[static_cast<size_t>(scenario_index)];
      context.seed = options.seeds[static_cast<size_t>(seed_index)];
      context.seed_index = seed_index;
      context.replica_index = index;
      context.rng = util::Rng::for_stream(
          context.seed, static_cast<std::uint64_t>(scenario_index));
      Replica& slot = result.replicas[static_cast<size_t>(index)];
      slot.scenario_index = scenario_index;
      slot.seed = context.seed;
      obs::SpanGuard replica_span(obs::kRunner, "runner.replica");
      replica_span.arg("scenario", scenario_index)
          .arg("seed", static_cast<double>(context.seed))
          .arg("replica", index);
      try {
        slot.payload = fn(context);
      } catch (...) {
        errors[static_cast<size_t>(index)] = std::current_exception();
      }
    });
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  // Aggregate every numeric payload field per scenario, in first-seen
  // order within the first replica of the scenario (deterministic: slots
  // are walked seed-minor).
  for (int s = 0; s < scenario_count; ++s) {
    std::vector<std::string> order;
    std::map<std::string, std::vector<double>> by_metric;
    std::map<std::string, bool> is_timing;
    for (int k = 0; k < seed_count; ++k) {
      const Replica& r =
          result.replicas[static_cast<size_t>(s * seed_count + k)];
      std::vector<FlatMetric> flat;
      flatten_numeric(r.payload, "", /*in_timing=*/false, &flat);
      for (const FlatMetric& m : flat) {
        auto [it, inserted] = by_metric.try_emplace(m.path);
        if (inserted) order.push_back(m.path);
        it->second.push_back(m.value);
        is_timing[m.path] = m.timing;
        if (m.path == "events") result.total_events += m.value;
      }
    }
    for (const std::string& metric : order) {
      MetricAggregate aggregate;
      aggregate.scenario = options.scenarios[static_cast<size_t>(s)];
      aggregate.metric = metric;
      aggregate.summary = metrics::summarize(by_metric[metric]);
      aggregate.timing = is_timing[metric];
      result.aggregates.push_back(std::move(aggregate));
    }
  }
  return result;
}

json::Value SweepResult::to_json(bool include_timing) const {
  json::Object doc;
  doc["schema_version"] = kBenchSchemaVersion;
  doc["generator"] = "gpu-topo-sched";
  doc["name"] = options.name;

  json::Array scenario_array;
  for (const std::string& scenario : options.scenarios) {
    scenario_array.push_back(scenario);
  }
  doc["scenarios"] = std::move(scenario_array);

  json::Array seed_array;
  for (const std::uint64_t seed : options.seeds) {
    seed_array.push_back(static_cast<long long>(seed));
  }
  doc["seeds"] = std::move(seed_array);
  doc["threads"] = options.threads;
  doc["metadata"] = options.metadata;

  json::Array replica_array;
  for (const Replica& r : replicas) {
    json::Object entry;
    entry["scenario"] =
        options.scenarios[static_cast<size_t>(r.scenario_index)];
    entry["seed"] = static_cast<long long>(r.seed);
    entry["payload"] = include_timing ? r.payload : strip_timing(r.payload);
    replica_array.push_back(std::move(entry));
  }
  doc["replicas"] = std::move(replica_array);

  // aggregates: { "<scenario>": { "<metric>": {count, mean, ...} } }.
  // Wall-clock-derived metrics ("timing" subtrees) go into the separate
  // timing_aggregates block so "aggregates" stays deterministic.
  json::Object aggregate_doc;
  json::Object timing_doc;
  for (const MetricAggregate& aggregate : aggregates) {
    json::Object& dest = aggregate.timing ? timing_doc : aggregate_doc;
    dest[aggregate.scenario].set(aggregate.metric,
                                 summary_to_json(aggregate.summary));
  }
  doc["aggregates"] = std::move(aggregate_doc);

  if (include_timing) {
    if (!timing_doc.empty()) doc["timing_aggregates"] = std::move(timing_doc);
    json::Object run;
    run["wall_seconds"] = wall_seconds;
    run["events"] = total_events;
    run["events_per_second"] = events_per_second();
    doc["run"] = std::move(run);
  }
  return doc;
}

util::Expected<std::vector<std::uint64_t>> parse_seed_spec(
    const std::string& spec) {
  if (spec.empty()) return util::Error{"--seeds: empty spec"};
  const auto parse_one =
      [](const std::string& token) -> util::Expected<std::uint64_t> {
    if (token.empty() || token.find_first_not_of("0123456789") !=
                             std::string::npos) {
      return util::Error{"--seeds: '" + token + "' is not a number"};
    }
    return static_cast<std::uint64_t>(std::stoull(token));
  };
  if (spec.find(',') == std::string::npos) {
    // A replica count: N -> seeds 1..N.
    const auto count = parse_one(spec);
    if (!count) return count.error();
    if (*count == 0) return util::Error{"--seeds: count must be >= 1"};
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t s = 1; s <= *count; ++s) seeds.push_back(s);
    return seeds;
  }
  std::vector<std::uint64_t> seeds;
  for (const std::string& token : util::split(spec, ',')) {
    if (token.empty()) continue;  // tolerate the "42," explicit-list form
    const auto seed = parse_one(token);
    if (!seed) return seed.error();
    seeds.push_back(*seed);
  }
  if (seeds.empty()) return util::Error{"--seeds: no seeds in list"};
  return seeds;
}

util::Status write_bench_json(const SweepResult& result,
                              const std::string& path) {
  json::WriteOptions options;
  options.indent = 2;
  return json::write_file(result.to_json(), path, options);
}

util::Status validate_bench_json(const json::Value& doc) {
  if (!doc.is_object()) return util::Error{"BENCH: document is not an object"};
  if (doc.at("schema_version").as_int(-1) != kBenchSchemaVersion) {
    return util::Error{"BENCH: schema_version missing or unsupported"};
  }
  if (!doc.at("name").is_string() || doc.at("name").as_string().empty()) {
    return util::Error{"BENCH: missing name"};
  }
  for (const char* key : {"scenarios", "seeds", "replicas"}) {
    if (!doc.at(key).is_array() || doc.at(key).as_array().empty()) {
      return util::Error{std::string("BENCH: missing or empty ") + key};
    }
  }
  const size_t expected = doc.at("scenarios").as_array().size() *
                          doc.at("seeds").as_array().size();
  if (doc.at("replicas").as_array().size() != expected) {
    return util::Error{"BENCH: replica count does not match scenarios x seeds"};
  }
  for (const json::Value& replica : doc.at("replicas").as_array()) {
    if (!replica.contains("scenario") || !replica.contains("seed") ||
        !replica.contains("payload")) {
      return util::Error{"BENCH: replica missing scenario/seed/payload"};
    }
  }
  if (!doc.at("aggregates").is_object()) {
    return util::Error{"BENCH: missing aggregates"};
  }
  return util::Status::ok();
}

}  // namespace gts::runner
