// Parallel (scenario x seed) sweep runner with versioned BENCH JSON output.
//
// The paper's headline results (Figs. 8-11) rest on repeated trace-driven
// simulations; this runner fans the replicas out over a fixed-size thread
// pool and aggregates their metrics. Determinism contract:
//
//   * one replica == one (scenario, seed) cell; the replica function must
//     build everything it touches (sim::Engine, ClusterState, topology,
//     model) locally — replicas share no mutable state;
//   * a replica's util::Rng comes from util::Rng::for_stream(seed, stream)
//     where stream is the scenario index, a pure derivation independent of
//     worker thread and start order;
//   * results land in slots indexed by replica number, and aggregation
//     walks those slots in order — so every section of the emitted JSON
//     except the wall-clock-derived ones ("run", "timing_aggregates", and
//     "timing" payload subtrees) is byte-identical for any --threads
//     value.
//
// The emitted document ("BENCH_<name>.json", schema_version 1) carries run
// metadata (scenarios, seeds, threads, policy tags), the raw per-replica
// payloads, and per-scenario aggregates (mean / stddev / p50 / p95 /
// min / max / 95% CI) of every numeric field found in the payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "metrics/stats.hpp"
#include "util/expected.hpp"
#include "util/rng.hpp"

namespace gts::runner {

inline constexpr int kBenchSchemaVersion = 1;

/// Reserved payload key: an object member named "timing" (at any depth)
/// holds wall-clock-derived measurements (e.g. the Section 5.5.3
/// per-decision overhead). Timing subtrees are aggregated into a separate
/// "timing_aggregates" block and excluded from the determinism contract —
/// everything else in the document is byte-identical for any thread count.
inline constexpr const char* kTimingKey = "timing";

/// Deep copy of `value` with every object member named "timing" removed:
/// the deterministic view of a payload.
json::Value strip_timing(const json::Value& value);

/// Everything a replica may depend on. The rng is ready to draw from; a
/// replica needing several independent streams should fork() it locally.
struct ReplicaContext {
  int scenario_index = 0;
  std::string scenario;       // label from SweepOptions::scenarios
  std::uint64_t seed = 0;
  int seed_index = 0;
  int replica_index = 0;      // scenario-major, seed-minor
  util::Rng rng;              // util::Rng::for_stream(seed, scenario_index)
};

/// Runs one replica and returns its payload: a JSON object whose numeric
/// fields (top level or nested in sub-objects, dotted paths) are
/// aggregated across the seeds of the same scenario. Arrays are carried
/// through verbatim but not aggregated. A payload field named "events" is
/// additionally summed into the run's events/sec throughput figure.
using ReplicaFn = std::function<json::Value(const ReplicaContext&)>;

struct SweepOptions {
  std::string name;                              // "fig10" -> BENCH_fig10.json
  std::vector<std::string> scenarios = {"default"};
  std::vector<std::uint64_t> seeds = {1};
  int threads = 1;                               // <= 0: hardware concurrency
  /// Extra run metadata echoed into the document (policy, cluster size...).
  json::Object metadata;
};

struct Replica {
  int scenario_index = 0;
  std::uint64_t seed = 0;
  json::Value payload;
};

struct MetricAggregate {
  std::string scenario;
  std::string metric;        // dotted path into the payload
  metrics::Summary summary;  // across the scenario's seeds
  bool timing = false;       // lives under a "timing" subtree
};

struct SweepResult {
  SweepOptions options;
  std::vector<Replica> replicas;          // scenario-major, seed-minor
  std::vector<MetricAggregate> aggregates;
  double wall_seconds = 0.0;
  double total_events = 0.0;              // sum of payload "events" fields

  double events_per_second() const {
    return wall_seconds > 0.0 ? total_events / wall_seconds : 0.0;
  }

  const Replica& replica(int scenario_index, std::uint64_t seed) const;

  /// The BENCH document. `include_timing` keeps the nondeterministic
  /// sections: the "run" block (wall clock, events/sec), the
  /// "timing_aggregates" block, and the "timing" subtrees of replica
  /// payloads. to_json(false) is the fully deterministic view.
  json::Value to_json(bool include_timing = true) const;
};

/// Fans the (scenario x seed) matrix out over a thread pool and aggregates.
/// Replica exceptions are rethrown (first in replica order) after the pool
/// drains. Deterministic: see the header comment.
SweepResult run_sweep(const SweepOptions& options, const ReplicaFn& fn);

/// Seed-spec grammar shared by the bench binaries' --seeds flag:
///   "8"      -> {1, 2, ..., 8}        (a replica count)
///   "42,"    -> {42}                  (explicit list, trailing comma ok)
///   "3,5,9"  -> {3, 5, 9}
util::Expected<std::vector<std::uint64_t>> parse_seed_spec(
    const std::string& spec);

/// Serializes result.to_json() (pretty, indent 2) to `path`.
util::Status write_bench_json(const SweepResult& result,
                              const std::string& path);

/// Structural check of a BENCH document: schema_version, name, seeds,
/// scenarios, replicas and aggregates present and well-formed.
util::Status validate_bench_json(const json::Value& doc);

}  // namespace gts::runner
