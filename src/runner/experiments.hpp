// Sweep adapters for the paper's experiment scenarios: the replica
// payloads behind BENCH_fig10.json / BENCH_fig11.json and the Fig. 8
// golden-file metrics, shared by the bench binaries and the tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenarios.hpp"
#include "runner/sweep.hpp"

namespace gts::runner {

/// One large-scale replica (Section 5.5): runs exp::run_large_scale for
/// `seed` and flattens the four-policy comparison into a payload object:
///   { "events": N,
///     "policies": { "<policy>": { "makespan_s", "slo_violations",
///         "qos_mean", "qos_p95", "qos_max", "qos_wait_mean",
///         "qos_wait_p95", "mean_wait_s",
///         "timing": { "mean_decision_us" } } } }
/// With `include_curves`, each policy also carries the sorted slowdown
/// arrays ("qos_curve", "qos_wait_curve") the Fig. 10 charts plot.
json::Value large_scale_payload(const exp::LargeScaleOptions& options,
                                bool include_curves = false);

/// Flattens a finished four-policy comparison into the standard payload
/// object described above: per-policy QoS metrics, deterministic
/// "sched_stats" (cache + DRB counters), and a "timing" subtree carrying
/// the mean decision latency plus the full per-decision histogram.
json::Value policy_comparison_payload(const exp::PolicyComparison& comparison,
                                      bool include_curves = false);

struct LargeScaleSweepConfig {
  std::string name = "fig10";   // BENCH_<name>.json
  int machines = 5;
  int jobs = 100;
  long long iterations = 250;
  std::vector<std::uint64_t> seeds = {1};
  int threads = 1;
  bool include_curves = false;
};

/// Fans the (single scenario x seeds) replicas of a large-scale experiment
/// across the pool. The scenario label encodes the cluster size, e.g.
/// "minsky-5m-100j".
SweepResult run_large_scale_sweep(const LargeScaleSweepConfig& config);

/// Renders the per-policy aggregate table of a large-scale sweep (mean
/// over seeds with 95% CI half-widths where more than one seed ran).
std::string render_large_scale_table(const SweepResult& result);

/// Looks up one aggregated metric ("policies.TOPO-AWARE-P.qos_mean") of
/// `scenario`; returns an empty summary (count 0) when absent.
metrics::Summary find_aggregate(const SweepResult& result,
                                const std::string& scenario,
                                const std::string& metric);

/// The Fig. 8 prototype metrics document (tests/golden/fig8.json): the
/// Table 1 workload on one Minsky machine under all four policies, with
/// per-policy makespan / SLO / waiting summaries and per-job placement
/// records (start, end, GPUs, utility, QoS slowdowns). Fully
/// deterministic. Regenerate the golden file with:
///   build-release/bench/bench_fig8_prototype --golden-out tests/golden/fig8.json
json::Value fig8_payload();

}  // namespace gts::runner
