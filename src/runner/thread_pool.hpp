// Forwarding header: the thread pool moved to util/thread_pool.hpp when
// the scheduler grew parallel candidate scoring (gts_sched cannot link
// gts_runner, so the pool lives below both). Existing runner-side users
// keep their spelling via these aliases.
#pragma once

#include "util/thread_pool.hpp"

namespace gts::runner {

using ThreadPool = util::ThreadPool;
using util::parallel_for;

}  // namespace gts::runner
