// Performance prediction for unknown jobs (Section 4.2).
//
// The paper's profiles come from historical runs; for configurations
// never profiled it points to prediction models ("decision tree [14, 37]
// or statistical clustering [8, 22, 28]") fed by previous executions, and
// notes that "because of the cloud's high variability, our model does not
// need to be optimal; high-quality decisions will be accurate enough".
//
// ProfilePredictor implements that: it stores profiled observations and
// answers queries for unseen (NN, batch, GPUs, placement) configurations
// by piecewise log-linear interpolation over batch size within the most
// similar profiled group — a transparent nearest-neighbour scheme in the
// spirit of the cited statistical approaches.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "jobgraph/workload.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"

namespace gts::perf {

/// One historical measurement: a configuration and what it cost.
struct ProfileObservation {
  jobgraph::NeuralNet nn = jobgraph::NeuralNet::kAlexNet;
  int batch_size = 1;
  int num_gpus = 1;
  bool packed = true;  // pack vs spread placement
  double iteration_time_s = 0.0;
  /// Fractional slowdown when collocated with one job per batch class.
  std::array<double, jobgraph::kBatchClassCount> collocation_slowdown{};
};

class ProfilePredictor {
 public:
  /// Records one historical execution.
  void observe(ProfileObservation observation);
  int observation_count() const {
    return static_cast<int>(observations_.size());
  }

  /// Bootstraps the predictor from a coarse sweep over `model` — the
  /// paper's "injecting artificial load / combinatorial collocation"
  /// profiling pass, run at the given batch sizes only.
  static ProfilePredictor from_model_sweep(
      const DlWorkloadModel& model, const topo::TopologyGraph& topology,
      std::vector<int> batch_sizes = {1, 8, 64});

  /// Predicted solo iteration time for a configuration (seconds).
  /// Interpolates log-linearly in batch size among observations of the
  /// same (nn, gpus, packed) group; degrades to the nearest group when no
  /// exact group exists. Returns nullopt only when nothing was observed.
  std::optional<double> predict_iteration_time(jobgraph::NeuralNet nn,
                                               int batch_size, int num_gpus,
                                               bool packed) const;

  /// Predicted collocation-slowdown row for a configuration.
  std::optional<std::array<double, jobgraph::kBatchClassCount>>
  predict_collocation(jobgraph::NeuralNet nn, int batch_size) const;

  /// Mean absolute relative error of iteration-time predictions against a
  /// ground-truth model over a validation sweep; used by tests and the
  /// profiler example to report predictor quality.
  double validation_error(const DlWorkloadModel& model,
                          const topo::TopologyGraph& topology) const;

 private:
  /// Observations of the best-matching group for a query, sorted by batch.
  std::vector<const ProfileObservation*> best_group(jobgraph::NeuralNet nn,
                                                    int num_gpus,
                                                    bool packed) const;

  std::vector<ProfileObservation> observations_;
};

}  // namespace gts::perf
