#include "perf/model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/check.hpp"

namespace gts::perf {

namespace {

const NnParams& nn_params(const CalibrationParams& params,
                          jobgraph::NeuralNet nn) {
  return params.nn[static_cast<size_t>(nn)];
}

/// Multiplicity of `link` in a sorted FlowDelta, 0 when absent.
int excluded_count(FlowDelta exclude_flows, topo::LinkId link) {
  const auto it = std::lower_bound(
      exclude_flows.begin(), exclude_flows.end(), link,
      [](const std::pair<topo::LinkId, int>& entry, topo::LinkId key) {
        return entry.first < key;
      });
  return (it != exclude_flows.end() && it->first == link) ? it->second : 0;
}

}  // namespace

double DlWorkloadModel::compute_time(jobgraph::NeuralNet nn,
                                     int batch_size) const {
  const NnParams& p = nn_params(params_, nn);
  return params_.compute_scale *
         (p.compute_base_s + p.compute_per_sample_s * batch_size);
}

PathClass DlWorkloadModel::classify_path(const topo::TopologyGraph& topology,
                                         int gpu_a, int gpu_b) const {
  const topo::GpuPath& path = topology.gpu_path(gpu_a, gpu_b);
  if (path.peer_to_peer) return PathClass::kPeerToPeer;
  if (!topology.same_machine(gpu_a, gpu_b)) return PathClass::kCrossMachine;
  if (topology.same_socket(gpu_a, gpu_b)) return PathClass::kSameSocketHost;
  // Cross-socket within a machine: NVLink-host machines stage via NVLink
  // H2D legs, PCI-e machines via PCI-e legs. Inspect the GPU-adjacent link.
  for (const topo::LinkId link_id : path.links) {
    const topo::Link& link = topology.link(link_id);
    const bool touches_gpu =
        topology.node(link.a).kind == topo::NodeKind::kGpu ||
        topology.node(link.b).kind == topo::NodeKind::kGpu;
    if (touches_gpu) {
      return link.kind == topo::LinkKind::kNvlink
                 ? PathClass::kCrossSocketNvlinkHost
                 : PathClass::kCrossSocketPcieHost;
    }
  }
  return PathClass::kCrossSocketPcieHost;
}

double DlWorkloadModel::effective_bandwidth(
    const topo::TopologyGraph& topology, int gpu_a, int gpu_b,
    const LinkFlows* extra_flows, FlowDelta exclude_flows) const {
  const topo::GpuPath& path = topology.gpu_path(gpu_a, gpu_b);
  if (path.links.empty()) return 0.0;

  // Bottleneck bandwidth under fair link sharing with foreign flows.
  double bottleneck = path.bottleneck_gbps;
  if (extra_flows != nullptr) {
    bottleneck = std::numeric_limits<double>::infinity();
    for (const topo::LinkId link_id : path.links) {
      int foreign =
          link_id < static_cast<int>(extra_flows->size())
              ? (*extra_flows)[static_cast<size_t>(link_id)]
              : 0;
      if (!exclude_flows.empty()) {
        foreign -= excluded_count(exclude_flows, link_id);
      }
      const double share = topology.link(link_id).bandwidth_gbps /
                           static_cast<double>(foreign + 1);
      bottleneck = std::min(bottleneck, share);
    }
  }

  double efficiency = 1.0;
  switch (classify_path(topology, gpu_a, gpu_b)) {
    case PathClass::kPeerToPeer:
      efficiency = params_.efficiency.peer_to_peer;
      break;
    case PathClass::kSameSocketHost:
      efficiency = params_.efficiency.same_socket_host;
      break;
    case PathClass::kCrossSocketNvlinkHost:
      efficiency = params_.efficiency.cross_socket_nvlink_host;
      break;
    case PathClass::kCrossSocketPcieHost:
      efficiency = params_.efficiency.cross_socket_pcie_host;
      break;
    case PathClass::kCrossMachine:
      efficiency = params_.efficiency.cross_machine;
      break;
  }
  return bottleneck * efficiency;
}

double DlWorkloadModel::interference_factor(
    jobgraph::BatchClass mine, std::span<const CoRunner> others) const {
  double factor = 1.0;
  for (const CoRunner& other : others) {
    double slowdown = params_.interference[static_cast<size_t>(mine)]
                                          [static_cast<size_t>(other.batch)];
    if (other.same_socket) slowdown *= params_.socket_interference_boost;
    factor *= 1.0 + slowdown;
  }
  return factor;
}

IterationBreakdown DlWorkloadModel::iteration(
    const jobgraph::JobRequest& job, std::span<const int> gpus,
    const topo::TopologyGraph& topology, const LinkFlows* extra_flows,
    std::span<const CoRunner> co_runners, FlowDelta exclude_flows) const {
  GTS_DCHECK_EQ(static_cast<int>(gpus.size()), job.comm_graph.task_count());

  IterationBreakdown out;
  out.compute_s = compute_time(job.profile.nn, job.profile.batch_size);

  // Synchronous step: every communicating pair exchanges its share of the
  // model's traffic volume and the iteration blocks on the slowest pair.
  // Edge weights denote communication volume (Section 4.1.1): a pair
  // whose weight exceeds the job's nominal class weight moves
  // proportionally more data — data-parallel graphs have uniform weights
  // (ratio 1), model-parallel graphs can skew per stage.
  const NnParams& nn = nn_params(params_, job.profile.nn);
  const double reference_weight =
      job.profile.comm_weight > 0.0 ? job.profile.comm_weight : 1.0;
  double worst_time = 0.0;
  out.effective_bw_gbps = std::numeric_limits<double>::infinity();
  for (const jobgraph::CommEdge& edge : job.comm_graph.edges()) {
    const int gpu_a = gpus[static_cast<size_t>(edge.a)];
    const int gpu_b = gpus[static_cast<size_t>(edge.b)];
    const double bw =
        effective_bandwidth(topology, gpu_a, gpu_b, extra_flows, exclude_flows);
    if (bw <= 0.0) continue;
    const double volume_gb =
        nn.grad_volume_gb * (edge.weight / reference_weight);
    const double pair_time = volume_gb / bw;
    if (pair_time > worst_time) {
      worst_time = pair_time;
      out.worst_path = classify_path(topology, gpu_a, gpu_b);
      out.effective_bw_gbps = bw;
    }
    if (!topology.gpu_path(gpu_a, gpu_b).peer_to_peer) {
      out.all_pairs_p2p = false;
    }
  }
  if (job.comm_graph.edge_count() == 0) {
    out.effective_bw_gbps = 0.0;
  }
  out.comm_s = worst_time;

  out.interference_factor = interference_factor(job.profile.batch, co_runners);
  out.total_s = (out.compute_s + out.comm_s) * out.interference_factor;
  return out;
}

double DlWorkloadModel::completion_time(
    const jobgraph::JobRequest& job, std::span<const int> gpus,
    const topo::TopologyGraph& topology, const LinkFlows* extra_flows,
    std::span<const CoRunner> co_runners) const {
  const IterationBreakdown step =
      iteration(job, gpus, topology, extra_flows, co_runners);
  return step.total_s * static_cast<double>(job.iterations);
}

double DlWorkloadModel::bytes_per_iteration_gb(
    const jobgraph::JobRequest& job) const {
  const NnParams& nn = nn_params(params_, job.profile.nn);
  const double grad =
      job.comm_graph.edge_count() > 0 ? nn.grad_volume_gb : 0.0;
  return grad + nn.h2d_per_sample_gb * job.profile.batch_size;
}

double DlWorkloadModel::average_link_bandwidth(
    const jobgraph::JobRequest& job, std::span<const int> gpus,
    const topo::TopologyGraph& topology) const {
  const IterationBreakdown step = iteration(job, gpus, topology);
  if (step.total_s <= 0.0) return 0.0;
  return bytes_per_iteration_gb(job) / step.total_s;
}

}  // namespace gts::perf
