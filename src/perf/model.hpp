// DL workload performance model: the simulated substitute for running
// Caffe on the physical machines (see params.hpp for the calibration).
//
// The model answers, for a job placed on a set of GPUs:
//   * per-iteration compute and communication time,
//   * total completion time for N iterations,
//   * how those numbers change under link sharing (flows from other jobs
//     on the same physical links) and machine-level interference
//     (the Fig. 6 slowdown matrix),
//   * the link bandwidth counters a tool like nvidia-smi would report
//     (Fig. 5's time series).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "perf/params.hpp"
#include "topo/topology.hpp"

namespace gts::perf {

/// Number of foreign traffic flows per link id; used to split link
/// bandwidth fairly between jobs. Empty means "no contention".
using LinkFlows = std::vector<int>;

/// Per-link flow counts to subtract from a LinkFlows table on read:
/// sorted-by-link (link, multiplicity) pairs, typically one running job's
/// own contribution (RunningJob::flow_link_counts). Passing the global
/// flow table plus this delta is bitwise-equivalent to materializing a
/// "flows excluding me" copy — the subtraction happens in integers before
/// any division — without the O(links) copy per query.
using FlowDelta = std::span<const std::pair<topo::LinkId, int>>;

/// A job sharing machine resources with the one under evaluation.
struct CoRunner {
  jobgraph::BatchClass batch = jobgraph::BatchClass::kTiny;
  /// True when the co-runner occupies a GPU on one of the same CPU sockets
  /// (closer contention: memory bus and host links).
  bool same_socket = false;
};

/// What the model reports for one placement under given conditions.
struct IterationBreakdown {
  double compute_s = 0.0;  // GPU compute per iteration
  double comm_s = 0.0;     // blocking gradient exchange per iteration
  double interference_factor = 1.0;  // multiplicative co-runner slowdown
  double total_s = 0.0;    // (compute + comm) * interference_factor
  PathClass worst_path = PathClass::kPeerToPeer;  // slowest comm pair class
  double effective_bw_gbps = 0.0;  // bandwidth of the bottleneck pair
  bool all_pairs_p2p = true;       // every communicating pair has P2P
};

class DlWorkloadModel {
 public:
  explicit DlWorkloadModel(CalibrationParams params)
      : params_(std::move(params)) {}

  const CalibrationParams& params() const noexcept { return params_; }

  /// GPU compute time per iteration (seconds).
  double compute_time(jobgraph::NeuralNet nn, int batch_size) const;

  /// Classifies the routing path between two GPUs.
  PathClass classify_path(const topo::TopologyGraph& topology, int gpu_a,
                          int gpu_b) const;

  /// Effective bandwidth of the pair path: bottleneck x efficiency class,
  /// divided further when links on the path carry `extra_flows` foreign
  /// flows (fair sharing: a link with f foreign flows gives 1/(f+1)).
  /// `exclude_flows` is subtracted from `extra_flows` on read (see
  /// FlowDelta) so callers can pass a total-flows table together with the
  /// evaluated job's own contribution instead of copying the table.
  double effective_bandwidth(const topo::TopologyGraph& topology, int gpu_a,
                             int gpu_b, const LinkFlows* extra_flows,
                             FlowDelta exclude_flows = {}) const;

  /// Full per-iteration breakdown for `job` on `gpus` (global GPU ids, one
  /// per task). `co_runner_batches` lists the batch classes of other jobs
  /// sharing any machine with this placement. `extra_flows` carries
  /// foreign per-link flow counts, or nullptr for a solo machine;
  /// `exclude_flows` is subtracted from it on read (FlowDelta).
  IterationBreakdown iteration(const jobgraph::JobRequest& job,
                               std::span<const int> gpus,
                               const topo::TopologyGraph& topology,
                               const LinkFlows* extra_flows = nullptr,
                               std::span<const CoRunner> co_runners = {},
                               FlowDelta exclude_flows = {}) const;

  /// Completion time for the job's full iteration count under fixed
  /// conditions (the simulator integrates piecewise when conditions vary).
  double completion_time(const jobgraph::JobRequest& job,
                         std::span<const int> gpus,
                         const topo::TopologyGraph& topology,
                         const LinkFlows* extra_flows = nullptr,
                         std::span<const CoRunner> co_runners = {}) const;

  /// Multiplicative slowdown factor for a job of class `mine` sharing
  /// machines with `others` (Fig. 6 composition; same-socket co-runners
  /// are boosted by socket_interference_boost).
  double interference_factor(jobgraph::BatchClass mine,
                             std::span<const CoRunner> others) const;

  /// Average NVLink/PCIe byte-counter bandwidth (GB/s) the job drives over
  /// its busiest link: (gradient volume + input H2D volume) / iteration
  /// time. This is what Fig. 5 plots.
  double average_link_bandwidth(const jobgraph::JobRequest& job,
                                std::span<const int> gpus,
                                const topo::TopologyGraph& topology) const;

  /// Total bytes (GB) per iteration the job moves over links (gradients +
  /// H2D input); used by metric recorders.
  double bytes_per_iteration_gb(const jobgraph::JobRequest& job) const;

 private:
  CalibrationParams params_;
};

}  // namespace gts::perf
