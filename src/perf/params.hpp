// Calibration parameters of the DL workload performance model.
//
// This module is the substitution for the paper's physical testbed (IBM
// Power8 "Minsky" + Tesla P100 + Caffe/NCCL). Every constant below is
// fitted against numbers the paper reports:
//
//   * Fig. 3: AlexNet 40-iteration compute time ~1 s at batch 1 and ~66 s
//     at batch 128; communication time ~2 s regardless of batch size.
//   * Fig. 4: pack-vs-spread speedup ~1.30x at batch 1-2 decaying to ~1.0
//     from batch 16; GoogLeNet nearly flat (its Inception modules shrink
//     inter-GPU traffic).
//   * Fig. 5: NVLink bandwidth bursts ~40 GB/s at batch 1 vs ~6 GB/s at
//     batch 128.
//   * Fig. 6: collocation slowdown matrix (tiny+tiny ~30%, tiny vs big
//     ~24%, small vs big ~21%, big+big ~0).
//   * Section 3.2 prose: on the PCI-e Gen3 + K80 machine the speedups are
//     1.24x/1.21x/1.1x at batch 1/2/8 (vs 1.27x/1.30x/1.20x with NVLink).
//
// The model form: per-iteration time = compute(nn, batch)
//                                    + gradient_volume / effective_bw(path)
// with effective bandwidth = path bottleneck x an efficiency class factor,
// and a multiplicative interference factor for machine-shared co-runners.
#pragma once

#include <array>
#include <string_view>

#include "jobgraph/workload.hpp"

namespace gts::perf {

/// Per-NN compute & traffic constants.
struct NnParams {
  /// Per-iteration GPU compute time: base + per_sample * batch (seconds).
  double compute_base_s = 0.0;
  double compute_per_sample_s = 0.0;
  /// Effective inter-GPU gradient exchange volume per iteration (GB). This
  /// is an *effective* volume: it folds NCCL rounds, staging copies and
  /// launch overheads into one number fitted to Fig. 3's ~2 s / 40 iters.
  double grad_volume_gb = 0.0;
  /// Host-to-device input traffic per sample (GB); it overlaps compute (no
  /// time cost) but shows up in link byte counters (Fig. 5).
  double h2d_per_sample_gb = 0.0;
};

/// Effective-bandwidth multiplier per routing-path class. P2P paths run at
/// the link bottleneck; host-routed paths pay staging copies.
struct PathEfficiency {
  double peer_to_peer = 1.0;
  double same_socket_host = 0.90;        // via one socket root (PCI-e PHB)
  double cross_socket_nvlink_host = 0.86;  // NVLink H2D legs + SMP bus
  double cross_socket_pcie_host = 0.70;    // PCI-e H2D legs + SMP bus
  double cross_machine = 0.50;             // network + both hosts
};

/// Routing-path classes distinguished by the model.
enum class PathClass {
  kPeerToPeer,
  kSameSocketHost,
  kCrossSocketNvlinkHost,
  kCrossSocketPcieHost,
  kCrossMachine,
};
std::string_view to_string(PathClass path_class) noexcept;

struct CalibrationParams {
  std::array<NnParams, jobgraph::kNeuralNetCount> nn{};

  PathEfficiency efficiency{};

  /// interference[mine][other]: fractional slowdown a job with batch class
  /// `mine` suffers when one job with batch class `other` shares the
  /// machine (the Fig. 6 matrix). Multiple co-runners compose
  /// multiplicatively: factor = prod(1 + s).
  std::array<std::array<double, jobgraph::kBatchClassCount>,
             jobgraph::kBatchClassCount>
      interference{};

  /// Extra multiplier on the matrix slowdown when two jobs share a CPU
  /// socket (they contend on the socket's memory bus and host links, not
  /// just machine-wide resources). 1.0 disables the distinction.
  double socket_interference_boost = 1.25;

  /// GPU compute-time multiplier for the machine generation (1.0 = P100;
  /// the K80 comparison machine is ~2x slower).
  double compute_scale = 1.0;

  /// Host memory-bandwidth capacity per machine (GB/s), for the Section
  /// 4.3 capacity constraint t_bw <= p_bw (two Power8 sockets with 256 GB
  /// DRAM each sustain roughly 115 GB/s per socket).
  double host_bw_capacity_gbps = 230.0;

  /// Calibrated to the paper's NVLink Minsky + P100 testbed.
  static CalibrationParams paper_minsky();
  /// Calibrated to the PCI-e Gen3 + K80 comparison machine (Section 3.2).
  static CalibrationParams paper_k80();
};

}  // namespace gts::perf
