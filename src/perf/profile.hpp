// Job profile generation (Section 4.2 / 5.1).
//
// The paper builds per-workload profiles experimentally: the 95th
// percentile completion time of five runs under the best (pack) and a
// sub-optimal (spread) allocation, solo and collocated. Our profiles come
// from the same performance model the simulator executes, which mirrors
// the paper's situation (their profiles were measured on the same machine
// the scheduler controlled).
#pragma once

#include "jobgraph/jobgraph.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"

namespace gts::perf {

/// Reference placements on a machine of `topology` (machine 0):
/// pack = fill sockets in order; spread = round-robin across sockets.
std::vector<int> pack_placement(const topo::TopologyGraph& topology,
                                int num_gpus);
std::vector<int> spread_placement(const topo::TopologyGraph& topology,
                                  int num_gpus);

/// Fills the profile's solo-time anchors and collocation-slowdown row for
/// `request` (in place) using `model` on the reference `topology`.
void fill_profile(jobgraph::JobRequest& request,
                  const DlWorkloadModel& model,
                  const topo::TopologyGraph& topology);

/// Convenience: a fully profiled DL job request.
jobgraph::JobRequest make_profiled_dl(int id, double arrival_time,
                                      jobgraph::NeuralNet nn, int batch_size,
                                      int num_gpus, double min_utility,
                                      const DlWorkloadModel& model,
                                      const topo::TopologyGraph& topology,
                                      long long iterations = 4000);

}  // namespace gts::perf
