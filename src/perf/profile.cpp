#include "perf/profile.hpp"

#include <algorithm>

namespace gts::perf {

std::vector<int> pack_placement(const topo::TopologyGraph& topology,
                                int num_gpus) {
  // Fill socket 0 of machine 0, then socket 1, ... then machine 1.
  std::vector<int> gpus;
  for (int machine = 0; machine < topology.machine_count() &&
                        static_cast<int>(gpus.size()) < num_gpus;
       ++machine) {
    const int sockets = topology.sockets_of_machine(machine);
    for (int socket = 0; socket < sockets &&
                         static_cast<int>(gpus.size()) < num_gpus;
         ++socket) {
      for (const int gpu : topology.gpus_of_socket(machine, socket)) {
        if (static_cast<int>(gpus.size()) >= num_gpus) break;
        gpus.push_back(gpu);
      }
    }
  }
  return gpus;
}

std::vector<int> spread_placement(const topo::TopologyGraph& topology,
                                  int num_gpus) {
  // Round-robin across the sockets of machine 0 (then machine 1, ...).
  std::vector<int> gpus;
  std::vector<std::vector<int>> pools;
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    const int sockets = topology.sockets_of_machine(machine);
    for (int socket = 0; socket < sockets; ++socket) {
      pools.push_back(topology.gpus_of_socket(machine, socket));
    }
  }
  size_t cursor = 0;
  while (static_cast<int>(gpus.size()) < num_gpus) {
    bool progressed = false;
    for (std::vector<int>& pool : pools) {
      if (static_cast<int>(gpus.size()) >= num_gpus) break;
      if (cursor < pool.size()) {
        gpus.push_back(pool[cursor]);
        progressed = true;
      }
    }
    ++cursor;
    if (!progressed) break;  // fewer GPUs than requested exist
  }
  return gpus;
}

void fill_profile(jobgraph::JobRequest& request, const DlWorkloadModel& model,
                  const topo::TopologyGraph& topology) {
  const std::vector<int> pack = pack_placement(topology, request.num_gpus);
  const std::vector<int> spread = spread_placement(topology, request.num_gpus);
  if (static_cast<int>(pack.size()) == request.num_gpus) {
    request.profile.solo_time_pack =
        model.completion_time(request, pack, topology);
  }
  if (static_cast<int>(spread.size()) == request.num_gpus) {
    request.profile.solo_time_spread =
        model.completion_time(request, spread, topology);
  }
  for (int other = 0; other < jobgraph::kBatchClassCount; ++other) {
    request.profile.collocation_slowdown[static_cast<size_t>(other)] =
        model.params()
            .interference[static_cast<size_t>(request.profile.batch)]
                         [static_cast<size_t>(other)];
  }
  if (static_cast<int>(pack.size()) == request.num_gpus) {
    request.profile.host_bw_demand_gbps =
        model.average_link_bandwidth(request, pack, topology);
  }
}

jobgraph::JobRequest make_profiled_dl(int id, double arrival_time,
                                      jobgraph::NeuralNet nn, int batch_size,
                                      int num_gpus, double min_utility,
                                      const DlWorkloadModel& model,
                                      const topo::TopologyGraph& topology,
                                      long long iterations) {
  jobgraph::JobRequest request = jobgraph::JobRequest::make_dl(
      id, arrival_time, nn, batch_size, num_gpus, min_utility, iterations);
  fill_profile(request, model, topology);
  return request;
}

}  // namespace gts::perf
