#include "perf/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "perf/profile.hpp"

namespace gts::perf {

void ProfilePredictor::observe(ProfileObservation observation) {
  observations_.push_back(std::move(observation));
}

ProfilePredictor ProfilePredictor::from_model_sweep(
    const DlWorkloadModel& model, const topo::TopologyGraph& topology,
    std::vector<int> batch_sizes) {
  ProfilePredictor predictor;
  for (int n = 0; n < jobgraph::kNeuralNetCount; ++n) {
    const auto nn = static_cast<jobgraph::NeuralNet>(n);
    for (const int batch : batch_sizes) {
      for (const int gpus : {1, 2}) {
        for (const bool packed : {true, false}) {
          if (gpus == 1 && !packed) continue;  // meaningless for one GPU
          const std::vector<int> placement =
              packed ? pack_placement(topology, gpus)
                     : spread_placement(topology, gpus);
          if (static_cast<int>(placement.size()) != gpus) continue;
          const jobgraph::JobRequest job = jobgraph::JobRequest::make_dl(
              0, 0.0, nn, batch, gpus, 0.0, 1);
          ProfileObservation observation;
          observation.nn = nn;
          observation.batch_size = batch;
          observation.num_gpus = gpus;
          observation.packed = packed;
          observation.iteration_time_s =
              model.iteration(job, placement, topology).total_s;
          const auto batch_class = jobgraph::classify_batch_size(batch);
          for (int other = 0; other < jobgraph::kBatchClassCount; ++other) {
            observation.collocation_slowdown[static_cast<size_t>(other)] =
                model.params()
                    .interference[static_cast<size_t>(batch_class)]
                                 [static_cast<size_t>(other)];
          }
          predictor.observe(std::move(observation));
        }
      }
    }
  }
  return predictor;
}

std::vector<const ProfileObservation*> ProfilePredictor::best_group(
    jobgraph::NeuralNet nn, int num_gpus, bool packed) const {
  // Group distance: NN mismatch is worst (different compute/traffic
  // regime), then GPU-count mismatch, then placement mismatch.
  long long best_distance = std::numeric_limits<long long>::max();
  for (const ProfileObservation& o : observations_) {
    const long long distance =
        (o.nn != nn ? 100 : 0) + std::abs(o.num_gpus - num_gpus) * 10 +
        (o.packed != packed ? 1 : 0);
    best_distance = std::min(best_distance, distance);
  }
  std::vector<const ProfileObservation*> group;
  for (const ProfileObservation& o : observations_) {
    const long long distance =
        (o.nn != nn ? 100 : 0) + std::abs(o.num_gpus - num_gpus) * 10 +
        (o.packed != packed ? 1 : 0);
    if (distance == best_distance) group.push_back(&o);
  }
  std::sort(group.begin(), group.end(),
            [](const ProfileObservation* a, const ProfileObservation* b) {
              return a->batch_size < b->batch_size;
            });
  return group;
}

std::optional<double> ProfilePredictor::predict_iteration_time(
    jobgraph::NeuralNet nn, int batch_size, int num_gpus,
    bool packed) const {
  if (observations_.empty()) return std::nullopt;
  const auto group = best_group(nn, num_gpus, packed);
  if (group.empty()) return std::nullopt;
  if (group.size() == 1) return group.front()->iteration_time_s;

  // Piecewise linear interpolation in batch size (iteration time is
  // affine in batch for these workloads, so plain linear interpolation is
  // exact between observed points and the edge slope extrapolates).
  const auto below = std::partition_point(
      group.begin(), group.end(), [&](const ProfileObservation* o) {
        return o->batch_size <= batch_size;
      });
  const ProfileObservation* lo;
  const ProfileObservation* hi;
  if (below == group.begin()) {
    lo = group[0];
    hi = group[1];
  } else if (below == group.end()) {
    lo = group[group.size() - 2];
    hi = group[group.size() - 1];
  } else {
    lo = *(below - 1);
    hi = *below;
  }
  if (hi->batch_size == lo->batch_size) return lo->iteration_time_s;
  const double slope = (hi->iteration_time_s - lo->iteration_time_s) /
                       static_cast<double>(hi->batch_size - lo->batch_size);
  return lo->iteration_time_s +
         slope * static_cast<double>(batch_size - lo->batch_size);
}

std::optional<std::array<double, jobgraph::kBatchClassCount>>
ProfilePredictor::predict_collocation(jobgraph::NeuralNet nn,
                                      int batch_size) const {
  if (observations_.empty()) return std::nullopt;
  // Nearest observation by (nn, |log batch distance|).
  const ProfileObservation* best = nullptr;
  double best_distance = std::numeric_limits<double>::infinity();
  for (const ProfileObservation& o : observations_) {
    const double distance =
        (o.nn != nn ? 100.0 : 0.0) +
        std::fabs(std::log2(static_cast<double>(o.batch_size)) -
                  std::log2(static_cast<double>(std::max(1, batch_size))));
    if (distance < best_distance) {
      best_distance = distance;
      best = &o;
    }
  }
  return best->collocation_slowdown;
}

double ProfilePredictor::validation_error(
    const DlWorkloadModel& model, const topo::TopologyGraph& topology) const {
  double total_error = 0.0;
  int count = 0;
  for (int n = 0; n < jobgraph::kNeuralNetCount; ++n) {
    const auto nn = static_cast<jobgraph::NeuralNet>(n);
    for (const int batch : jobgraph::kBatchSweep) {
      for (const bool packed : {true, false}) {
        const std::vector<int> placement =
            packed ? pack_placement(topology, 2)
                   : spread_placement(topology, 2);
        const jobgraph::JobRequest job =
            jobgraph::JobRequest::make_dl(0, 0.0, nn, batch, 2, 0.0, 1);
        const double truth =
            model.iteration(job, placement, topology).total_s;
        const auto predicted =
            predict_iteration_time(nn, batch, 2, packed);
        if (!predicted || truth <= 0.0) continue;
        total_error += std::fabs(*predicted - truth) / truth;
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : total_error / count;
}

}  // namespace gts::perf
