#include "perf/params.hpp"

namespace gts::perf {

std::string_view to_string(PathClass path_class) noexcept {
  switch (path_class) {
    case PathClass::kPeerToPeer:
      return "p2p";
    case PathClass::kSameSocketHost:
      return "same-socket-host";
    case PathClass::kCrossSocketNvlinkHost:
      return "cross-socket-nvlink";
    case PathClass::kCrossSocketPcieHost:
      return "cross-socket-pcie";
    case PathClass::kCrossMachine:
      return "cross-machine";
  }
  return "?";
}

namespace {

CalibrationParams base_params() {
  CalibrationParams p;

  // AlexNet: Fig. 3 anchors. compute(1) = 25 ms, compute(128) = 1.65 s per
  // iteration; gradient exchange 50 ms per iteration at 40 GB/s pack.
  auto& alexnet = p.nn[static_cast<size_t>(jobgraph::NeuralNet::kAlexNet)];
  alexnet.compute_base_s = 0.0122;
  alexnet.compute_per_sample_s = 0.0128;
  alexnet.grad_volume_gb = 2.0;
  alexnet.h2d_per_sample_gb = 0.075;

  // CaffeRef is AlexNet-derived: slightly heavier compute, slightly less
  // traffic (Fig. 4 shows a marginally lower speedup curve).
  auto& cafferef = p.nn[static_cast<size_t>(jobgraph::NeuralNet::kCaffeRef)];
  cafferef.compute_base_s = 0.0140;
  cafferef.compute_per_sample_s = 0.0150;
  cafferef.grad_volume_gb = 1.70;
  cafferef.h2d_per_sample_gb = 0.075;

  // GoogLeNet: Inception modules cut inter-GPU traffic by an order of
  // magnitude; compute per sample is heavier (22 layers).
  auto& googlenet =
      p.nn[static_cast<size_t>(jobgraph::NeuralNet::kGoogLeNet)];
  googlenet.compute_base_s = 0.0300;
  googlenet.compute_per_sample_s = 0.0310;
  googlenet.grad_volume_gb = 0.20;
  googlenet.h2d_per_sample_gb = 0.075;

  // Fig. 6 matrix: interference[mine][other]. Rows/cols ordered
  // tiny, small, medium, big. Anchors: tiny|tiny=0.30, tiny|big=0.24,
  // small|big=0.21, big|big~0. Intermediate cells interpolated.
  p.interference = {{
      {{0.30, 0.28, 0.26, 0.24}},  // tiny suffers
      {{0.26, 0.24, 0.22, 0.21}},  // small suffers
      {{0.12, 0.10, 0.08, 0.06}},  // medium suffers
      {{0.03, 0.02, 0.01, 0.00}},  // big suffers
  }};
  return p;
}

}  // namespace

CalibrationParams CalibrationParams::paper_minsky() {
  CalibrationParams p = base_params();
  p.compute_scale = 1.0;
  return p;
}

CalibrationParams CalibrationParams::paper_k80() {
  CalibrationParams p = base_params();
  // K80-era GPUs are roughly half the throughput of P100.
  p.compute_scale = 2.0;
  return p;
}

}  // namespace gts::perf
