// Data producers for the characterization figures (Section 3): one
// function per figure, returning plain rows the benches render and the
// tests assert on.
#pragma once

#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"

namespace gts::exp {

/// Fig. 3: execution-time breakdown of a 2-GPU job, pack vs spread.
struct BreakdownRow {
  jobgraph::NeuralNet nn;
  jobgraph::BatchClass batch;
  bool pack = true;
  double compute_s = 0.0;  // per 40 iterations, matching the paper's prose
  double comm_s = 0.0;
  double compute_fraction = 0.0;
  double comm_fraction = 0.0;
};
std::vector<BreakdownRow> fig3_breakdown(const perf::DlWorkloadModel& model,
                                         const topo::TopologyGraph& topology,
                                         long long iterations = 40);

/// Fig. 4 / Section 3.2: pack-vs-spread speedup per batch size.
struct SpeedupRow {
  jobgraph::NeuralNet nn;
  int batch_size = 1;
  double pack_time = 0.0;
  double spread_time = 0.0;
  double speedup = 0.0;  // spread / pack; > 1 means pack wins
};
std::vector<SpeedupRow> fig4_pack_vs_spread(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology);

/// Fig. 5: NVLink bandwidth usage over time for AlexNet with a given batch
/// size; instantaneous link-counter samples every `dt` seconds.
struct BandwidthPoint {
  double t = 0.0;
  double gbps = 0.0;
};
std::vector<BandwidthPoint> fig5_bandwidth_series(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    int batch_size, double duration_s = 250.0, double dt = 1.0);

/// Fig. 6: collocation slowdown of job A (2-GPU AlexNet, batch class a)
/// when a second 2-GPU AlexNet with batch class b shares the machine,
/// each packed on its own socket. Returns the fractional slowdown of A.
double fig6_collocation_slowdown(const perf::DlWorkloadModel& model,
                                 const topo::TopologyGraph& topology,
                                 jobgraph::BatchClass mine,
                                 jobgraph::BatchClass other);

}  // namespace gts::exp
