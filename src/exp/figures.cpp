#include "exp/figures.hpp"

#include <cmath>

#include "perf/profile.hpp"

namespace gts::exp {

namespace {

jobgraph::JobRequest two_gpu_job(jobgraph::NeuralNet nn, int batch_size,
                                 long long iterations = 4000) {
  return jobgraph::JobRequest::make_dl(/*id=*/0, /*arrival=*/0.0, nn,
                                       batch_size, /*num_gpus=*/2,
                                       /*min_utility=*/0.0, iterations);
}

}  // namespace

std::vector<BreakdownRow> fig3_breakdown(const perf::DlWorkloadModel& model,
                                         const topo::TopologyGraph& topology,
                                         long long iterations) {
  std::vector<BreakdownRow> rows;
  const std::vector<int> pack = perf::pack_placement(topology, 2);
  const std::vector<int> spread = perf::spread_placement(topology, 2);
  for (int n = 0; n < jobgraph::kNeuralNetCount; ++n) {
    const auto nn = static_cast<jobgraph::NeuralNet>(n);
    for (int b = 0; b < jobgraph::kBatchClassCount; ++b) {
      const auto batch = static_cast<jobgraph::BatchClass>(b);
      const jobgraph::JobRequest job = two_gpu_job(
          nn, jobgraph::representative_batch_size(batch), iterations);
      for (const bool is_pack : {true, false}) {
        const perf::IterationBreakdown step =
            model.iteration(job, is_pack ? pack : spread, topology);
        BreakdownRow row;
        row.nn = nn;
        row.batch = batch;
        row.pack = is_pack;
        row.compute_s = step.compute_s * static_cast<double>(iterations);
        row.comm_s = step.comm_s * static_cast<double>(iterations);
        const double total = row.compute_s + row.comm_s;
        row.compute_fraction = total > 0.0 ? row.compute_s / total : 0.0;
        row.comm_fraction = total > 0.0 ? row.comm_s / total : 0.0;
        rows.push_back(row);
      }
    }
  }
  return rows;
}

std::vector<SpeedupRow> fig4_pack_vs_spread(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology) {
  std::vector<SpeedupRow> rows;
  const std::vector<int> pack = perf::pack_placement(topology, 2);
  const std::vector<int> spread = perf::spread_placement(topology, 2);
  for (int n = 0; n < jobgraph::kNeuralNetCount; ++n) {
    const auto nn = static_cast<jobgraph::NeuralNet>(n);
    for (const int batch_size : jobgraph::kBatchSweep) {
      const jobgraph::JobRequest job = two_gpu_job(nn, batch_size);
      SpeedupRow row;
      row.nn = nn;
      row.batch_size = batch_size;
      row.pack_time = model.completion_time(job, pack, topology);
      row.spread_time = model.completion_time(job, spread, topology);
      row.speedup = row.pack_time > 0.0 ? row.spread_time / row.pack_time : 0.0;
      rows.push_back(row);
    }
  }
  return rows;
}

std::vector<BandwidthPoint> fig5_bandwidth_series(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    int batch_size, double duration_s, double dt) {
  // Instantaneous NVLink counter samples: during the blocking gradient
  // exchange the link runs at the pair's effective bandwidth; during
  // compute only the (overlapped) H2D input stream flows.
  const std::vector<int> pack = perf::pack_placement(topology, 2);
  const jobgraph::JobRequest job =
      two_gpu_job(jobgraph::NeuralNet::kAlexNet, batch_size);
  const perf::IterationBreakdown step = model.iteration(job, pack, topology);
  const double iter = step.total_s;
  const double grad_gbps = step.effective_bw_gbps;
  const double h2d_gb = model.bytes_per_iteration_gb(job) -
                        model.params()
                            .nn[static_cast<size_t>(jobgraph::NeuralNet::kAlexNet)]
                            .grad_volume_gb;
  const double h2d_gbps =
      step.compute_s > 0.0 ? h2d_gb / step.compute_s : 0.0;

  std::vector<BandwidthPoint> series;
  for (double t = 0.0; t < duration_s; t += dt) {
    const double phase = std::fmod(t, iter);
    const double gbps = phase < step.comm_s ? grad_gbps : h2d_gbps;
    series.push_back({t, gbps});
  }
  return series;
}

double fig6_collocation_slowdown(const perf::DlWorkloadModel& model,
                                 const topo::TopologyGraph& topology,
                                 jobgraph::BatchClass mine,
                                 jobgraph::BatchClass other) {
  // Two 2-GPU AlexNet jobs, each packed on its own socket (the canonical
  // collocation the machine admits); job A's slowdown vs running solo.
  const std::vector<int> gpus_a = topology.gpus_of_socket(0, 0);
  const jobgraph::JobRequest job_a = two_gpu_job(
      jobgraph::NeuralNet::kAlexNet,
      jobgraph::representative_batch_size(mine));
  const double solo = model.iteration(job_a, gpus_a, topology).total_s;

  const perf::CoRunner co[] = {{other, /*same_socket=*/false}};
  const double colloc =
      model.iteration(job_a, gpus_a, topology, nullptr, co).total_s;
  return solo > 0.0 ? colloc / solo - 1.0 : 0.0;
}

}  // namespace gts::exp
