// Shared experiment scenarios: the exact workloads and policy-comparison
// harnesses the paper's evaluation uses, reused by benches and tests.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "partition/drb.hpp"
#include "perf/model.hpp"
#include "sched/driver.hpp"
#include "sched/scheduler.hpp"
#include "sched/topo_aware.hpp"
#include "topo/topology.hpp"

namespace gts::exp {

/// The Table 1 job set: six DL jobs on the Power8 prototype machine.
///   Job   0        1         2        3        4        5
///   NN    AlexNet  GoogLeNet AlexNet  AlexNet  AlexNet  CaffeRef
///   batch 1        4         1        4        1        1
///   GPUs  1        1         1        2        2        2
///   minU  0.3      0.3       0.3      0.5      0.5      0.5
///   t     0.51s    15.03s    24.36s   25.33s   29.33s   29.89s
/// The paper trains 4000 iterations on the real machine; `iterations`
/// scales the scenario (the default reproduces the ~530 s horizon of
/// Fig. 8 with the calibrated model).
std::vector<jobgraph::JobRequest> table1_jobs(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    long long iterations = 700);

/// Internal scheduler counters surfaced into BENCH documents: the
/// placement-cache counters and DRB statistics of topology-aware runs.
/// Both are deterministic (decision-sequence functions), so they live
/// outside the "timing" subtree.
struct SchedulerStats {
  bool has_cache = false;  // true for TOPO-AWARE / TOPO-AWARE-P runs
  sched::PlacementCacheStats cache;
  partition::DrbStats drb;
};

/// Runs one policy over a workload and returns the full report. `stats`,
/// when given, receives the scheduler's internal counters after the run.
sched::DriverReport run_policy(sched::Policy policy,
                               std::vector<jobgraph::JobRequest> jobs,
                               const topo::TopologyGraph& topology,
                               const perf::DlWorkloadModel& model,
                               sched::UtilityWeights weights = {},
                               bool record_series = true,
                               SchedulerStats* stats = nullptr);

/// Comparison across the four policies of one workload.
struct PolicyComparison {
  struct Entry {
    sched::Policy policy;
    std::string name;
    double makespan = 0.0;
    int slo_violations = 0;
    double mean_waiting = 0.0;
    double mean_decision_us = 0.0;
    std::uint64_t events = 0;  // engine events fired during this run
    std::vector<double> qos_slowdowns;       // sorted descending
    std::vector<double> qos_wait_slowdowns;  // sorted descending
    SchedulerStats sched_stats;
    /// Per-decision latency distribution of this run (microseconds).
    obs::HistogramData decision_latency_us;
  };
  std::vector<Entry> entries;

  const Entry& entry(sched::Policy policy) const;
};

PolicyComparison compare_policies(const std::vector<jobgraph::JobRequest>& jobs,
                                  const topo::TopologyGraph& topology,
                                  const perf::DlWorkloadModel& model,
                                  sched::UtilityWeights weights = {},
                                  bool record_series = true);

/// The two large-scale simulation scenarios (Section 5.5): clusters of
/// Minsky machines with the Section 5.3 generator.
struct LargeScaleOptions {
  int machines = 5;
  int jobs = 100;
  std::uint64_t seed = 42;
  /// Iterations per job. 250 puts the cluster at the paper's moderate
  /// load: under full saturation every work-conserving policy is forced
  /// into identical placements and the comparison degenerates.
  long long iterations = 250;
};
PolicyComparison run_large_scale(const LargeScaleOptions& options);

}  // namespace gts::exp
