#include "exp/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "perf/profile.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"

namespace gts::exp {

std::vector<jobgraph::JobRequest> table1_jobs(
    const perf::DlWorkloadModel& model, const topo::TopologyGraph& topology,
    long long iterations) {
  using jobgraph::NeuralNet;
  struct Spec {
    NeuralNet nn;
    int batch;
    int gpus;
    double min_utility;
    double arrival;
    double solo_seconds;  // target solo pack duration (Fig. 8 horizons)
  };
  // Arrival times are Table 1's; solo durations approximate the Fig. 8
  // timelines so the scenario's resource dynamics match (J0..J2 still
  // running when the 2-GPU jobs arrive, J0 freeing a GPU around t~70s).
  const Spec specs[] = {
      {NeuralNet::kAlexNet, 1, 1, 0.3, 0.51, 70.0},    // Job 0
      {NeuralNet::kGoogLeNet, 4, 1, 0.3, 15.03, 150.0},  // Job 1
      {NeuralNet::kAlexNet, 1, 1, 0.3, 24.36, 100.0},  // Job 2
      {NeuralNet::kAlexNet, 4, 2, 0.5, 25.33, 60.0},   // Job 3
      {NeuralNet::kAlexNet, 1, 2, 0.5, 29.33, 80.0},   // Job 4
      {NeuralNet::kCaffeRef, 1, 2, 0.5, 29.89, 90.0},  // Job 5
  };

  std::vector<jobgraph::JobRequest> jobs;
  int id = 0;
  for (const Spec& spec : specs) {
    // Derive the iteration count that yields the target solo duration on a
    // pack placement; `iterations` rescales the whole scenario (<=0 keeps
    // the Fig. 8 horizon).
    jobgraph::JobRequest probe = jobgraph::JobRequest::make_dl(
        id, spec.arrival, spec.nn, spec.batch, spec.gpus, spec.min_utility, 1);
    const std::vector<int> pack =
        perf::pack_placement(topology, spec.gpus);
    const double iter_time =
        model.iteration(probe, pack, topology).total_s;
    long long count =
        std::max<long long>(1, std::llround(spec.solo_seconds / iter_time));
    if (iterations > 0) {
      // Interpret `iterations` as a scenario scale: 700 = paper horizon.
      count = std::max<long long>(
          1, std::llround(static_cast<double>(count) *
                          static_cast<double>(iterations) / 700.0));
    }
    jobs.push_back(perf::make_profiled_dl(id, spec.arrival, spec.nn,
                                          spec.batch, spec.gpus,
                                          spec.min_utility, model, topology,
                                          count));
    ++id;
  }
  return jobs;
}

sched::DriverReport run_policy(sched::Policy policy,
                               std::vector<jobgraph::JobRequest> jobs,
                               const topo::TopologyGraph& topology,
                               const perf::DlWorkloadModel& model,
                               sched::UtilityWeights weights,
                               bool record_series, SchedulerStats* stats) {
  const std::unique_ptr<sched::Scheduler> scheduler =
      sched::make_scheduler(policy, weights);
  sched::DriverOptions options;
  options.utility_weights = weights;
  options.record_series = record_series;
  sched::Driver driver(topology, model, *scheduler, options);
  sched::DriverReport report = driver.run(std::move(jobs));
  if (stats != nullptr) {
    *stats = SchedulerStats{};
    if (const auto* topo_aware =
            dynamic_cast<const sched::TopoAwareScheduler*>(scheduler.get())) {
      stats->has_cache = true;
      stats->cache = topo_aware->cache_stats();
      stats->drb = topo_aware->drb_stats();
    }
  }
  return report;
}

const PolicyComparison::Entry& PolicyComparison::entry(
    sched::Policy policy) const {
  for (const Entry& e : entries) {
    if (e.policy == policy) return e;
  }
  throw std::out_of_range("policy not present in comparison");
}

PolicyComparison compare_policies(const std::vector<jobgraph::JobRequest>& jobs,
                                  const topo::TopologyGraph& topology,
                                  const perf::DlWorkloadModel& model,
                                  sched::UtilityWeights weights,
                                  bool record_series) {
  PolicyComparison comparison;
  for (const sched::Policy policy :
       {sched::Policy::kBestFit, sched::Policy::kFcfs,
        sched::Policy::kTopoAware, sched::Policy::kTopoAwareP}) {
    SchedulerStats stats;
    sched::DriverReport report = run_policy(policy, jobs, topology, model,
                                            weights, record_series, &stats);
    PolicyComparison::Entry entry;
    entry.policy = policy;
    entry.name = std::string(sched::to_string(policy));
    entry.makespan = report.recorder.makespan();
    entry.slo_violations = report.recorder.slo_violations();
    entry.mean_waiting = report.recorder.mean_waiting_time();
    entry.mean_decision_us = report.mean_decision_seconds() * 1e6;
    entry.events = report.events;
    entry.qos_slowdowns = report.recorder.sorted_qos_slowdowns();
    entry.qos_wait_slowdowns = report.recorder.sorted_qos_wait_slowdowns();
    entry.sched_stats = stats;
    entry.decision_latency_us = std::move(report.decision_latency_us);
    comparison.entries.push_back(std::move(entry));
  }
  return comparison;
}

PolicyComparison run_large_scale(const LargeScaleOptions& options) {
  const topo::TopologyGraph topology = topo::builders::cluster(
      options.machines, topo::builders::MachineShape::kPower8Minsky);
  const perf::DlWorkloadModel model(perf::CalibrationParams::paper_minsky());

  trace::GeneratorOptions gen;
  gen.job_count = options.jobs;
  gen.seed = options.seed;
  gen.iterations = options.iterations;
  // Keep the per-machine offered load of the 5-machine scenario: with a
  // fixed lambda a 1000-machine cluster would be idle and every policy
  // would coincide trivially.
  gen.arrival_rate_per_minute =
      10.0 * static_cast<double>(options.machines) / 5.0;
  const std::vector<jobgraph::JobRequest> jobs =
      trace::generate_workload(gen, model, topology);

  return compare_policies(jobs, topology, model, {},
                          /*record_series=*/options.machines <= 16);
}

}  // namespace gts::exp
