// JSON manifest (de)serialization for job requests.
//
// The paper's prototype "continuously loads JSON files containing the
// necessary information about the submitted jobs" and builds a manifest per
// job (Section 5.1). This module defines that manifest format:
//
// {
//   "id": 3,
//   "arrival_time": 25.33,
//   "nn": "AlexNet",
//   "batch_size": 4,
//   "num_gpus": 2,
//   "min_utility": 0.5,
//   "iterations": 4000,
//   "single_node": true,
//   "anti_collocate": false,
//   "comm_graph": {"pattern": "all_to_all"}           // or explicit edges:
//   "comm_graph": {"edges": [[0,1,4.0], [1,2,4.0]]}
// }
#pragma once

#include <string>
#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "json/json.hpp"
#include "util/expected.hpp"

namespace gts::jobgraph {

/// Serializes a request into its manifest JSON value.
json::Value to_manifest(const JobRequest& request);

/// Parses one manifest object.
util::Expected<JobRequest> from_manifest(const json::Value& value);

/// Parses a manifest file holding either one job object or an array of
/// job objects (a whole workload).
util::Expected<std::vector<JobRequest>> load_manifest_file(
    const std::string& path);

/// Writes a workload as a JSON array manifest.
util::Status save_manifest_file(const std::vector<JobRequest>& jobs,
                                const std::string& path);

}  // namespace gts::jobgraph
