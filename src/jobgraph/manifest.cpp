#include "jobgraph/manifest.hpp"

#include "util/strings.hpp"

namespace gts::jobgraph {

namespace {

json::Value comm_graph_to_json(const JobRequest& request) {
  // If the graph matches the canonical all-to-all with the profile weight,
  // keep the manifest compact; otherwise list edges explicitly.
  const JobGraph canonical = JobGraph::all_to_all(
      request.num_gpus, request.profile.comm_weight);
  bool is_canonical =
      canonical.edge_count() == request.comm_graph.edge_count();
  if (is_canonical) {
    for (const CommEdge& edge : request.comm_graph.edges()) {
      if (edge.weight != request.profile.comm_weight) {
        is_canonical = false;
        break;
      }
    }
  }
  json::Value graph;
  if (is_canonical) {
    graph.set("pattern", "all_to_all");
    return graph;
  }
  json::Array edges;
  for (const CommEdge& edge : request.comm_graph.edges()) {
    edges.push_back(json::Array{edge.a, edge.b, edge.weight});
  }
  graph.set("edges", std::move(edges));
  return graph;
}

}  // namespace

json::Value to_manifest(const JobRequest& request) {
  json::Value value;
  value.set("id", request.id);
  value.set("arrival_time", request.arrival_time);
  value.set("nn", std::string(to_string(request.profile.nn)));
  value.set("batch_size", request.profile.batch_size);
  value.set("num_gpus", request.num_gpus);
  value.set("min_utility", request.min_utility);
  value.set("iterations", request.iterations);
  value.set("single_node", request.profile.single_node);
  value.set("anti_collocate", request.profile.anti_collocate);
  value.set("comm_graph", comm_graph_to_json(request));
  return value;
}

util::Expected<JobRequest> from_manifest(const json::Value& value) {
  if (!value.is_object()) return util::Error{"manifest: job is not an object"};
  const auto nn = neural_net_from_string(value.at("nn").as_string());
  if (!nn) {
    return util::Error{
        util::fmt("manifest: unknown nn '{}'", value.at("nn").as_string())};
  }
  const int batch_size = static_cast<int>(value.at("batch_size").as_int(1));
  if (batch_size < 1) return util::Error{"manifest: batch_size must be >= 1"};
  const int num_gpus = static_cast<int>(value.at("num_gpus").as_int(1));
  if (num_gpus < 1) return util::Error{"manifest: num_gpus must be >= 1"};

  JobRequest request = JobRequest::make_dl(
      static_cast<int>(value.at("id").as_int()),
      value.at("arrival_time").as_number(), *nn, batch_size, num_gpus,
      value.at("min_utility").as_number(),
      value.at("iterations").as_int(4000));
  request.profile.single_node = value.at("single_node").as_bool(true);
  request.profile.anti_collocate = value.at("anti_collocate").as_bool(false);

  const json::Value& graph = value.at("comm_graph");
  if (graph.contains("edges")) {
    JobGraph explicit_graph(num_gpus);
    for (const json::Value& edge : graph.at("edges").as_array()) {
      const json::Array& triple = edge.as_array();
      if (triple.size() != 3) {
        return util::Error{"manifest: comm_graph edge must be [a, b, weight]"};
      }
      const int a = static_cast<int>(triple[0].as_int());
      const int b = static_cast<int>(triple[1].as_int());
      if (a < 0 || a >= num_gpus || b < 0 || b >= num_gpus || a == b) {
        return util::Error{"manifest: comm_graph edge endpoints out of range"};
      }
      explicit_graph.add_edge(a, b, triple[2].as_number());
    }
    request.comm_graph = std::move(explicit_graph);
  }
  return request;
}

util::Expected<std::vector<JobRequest>> load_manifest_file(
    const std::string& path) {
  auto document = json::parse_file(path);
  if (!document) return document.error();
  std::vector<JobRequest> jobs;
  if (document->is_array()) {
    for (const json::Value& entry : document->as_array()) {
      auto job = from_manifest(entry);
      if (!job) return job.error().with_context(path);
      jobs.push_back(std::move(*job));
    }
  } else {
    auto job = from_manifest(*document);
    if (!job) return job.error().with_context(path);
    jobs.push_back(std::move(*job));
  }
  return jobs;
}

util::Status save_manifest_file(const std::vector<JobRequest>& jobs,
                                const std::string& path) {
  json::Array array;
  for (const JobRequest& job : jobs) array.push_back(to_manifest(job));
  return json::write_file(json::Value(std::move(array)), path, {.indent = 2});
}

}  // namespace gts::jobgraph
