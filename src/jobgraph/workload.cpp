#include "jobgraph/workload.hpp"

#include "util/strings.hpp"

namespace gts::jobgraph {

std::string_view to_string(NeuralNet nn) noexcept {
  switch (nn) {
    case NeuralNet::kAlexNet:
      return "AlexNet";
    case NeuralNet::kCaffeRef:
      return "CaffeRef";
    case NeuralNet::kGoogLeNet:
      return "GoogLeNet";
  }
  return "?";
}

std::string_view to_string(BatchClass batch) noexcept {
  switch (batch) {
    case BatchClass::kTiny:
      return "tiny";
    case BatchClass::kSmall:
      return "small";
    case BatchClass::kMedium:
      return "medium";
    case BatchClass::kBig:
      return "big";
  }
  return "?";
}

std::optional<NeuralNet> neural_net_from_string(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "alexnet" || lower == "a") return NeuralNet::kAlexNet;
  if (lower == "cafferef" || lower == "c") return NeuralNet::kCaffeRef;
  if (lower == "googlenet" || lower == "g") return NeuralNet::kGoogLeNet;
  return std::nullopt;
}

std::optional<BatchClass> batch_class_from_string(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "tiny") return BatchClass::kTiny;
  if (lower == "small") return BatchClass::kSmall;
  if (lower == "medium") return BatchClass::kMedium;
  if (lower == "big") return BatchClass::kBig;
  return std::nullopt;
}

int representative_batch_size(BatchClass batch) noexcept {
  switch (batch) {
    case BatchClass::kTiny:
      return 1;
    case BatchClass::kSmall:
      return 4;
    case BatchClass::kMedium:
      return 16;
    case BatchClass::kBig:
      return 64;
  }
  return 1;
}

BatchClass classify_batch_size(int batch_size) noexcept {
  if (batch_size <= 2) return BatchClass::kTiny;
  if (batch_size <= 8) return BatchClass::kSmall;
  if (batch_size <= 32) return BatchClass::kMedium;
  return BatchClass::kBig;
}

double comm_weight(BatchClass batch) noexcept {
  // Section 5.1: "for different batch sizes, different weights are used,
  // ranging from 4 to 1, where 4 represents the smallest batch size".
  return 4.0 - static_cast<double>(batch);
}

}  // namespace gts::jobgraph
