// Deep-learning workload taxonomy used across the reproduction (Section 2).
//
// The paper evaluates three Caffe NN models — AlexNet, CaffeRef and
// GoogLeNet — each at per-GPU batch sizes from 1 to 128, grouped into four
// qualitative classes (tiny, small, medium, big). The batch class drives
// the job's communication weight in the job graph: the prototype maps the
// smallest batch to weight 4 and the largest to weight 1 (Section 5.1).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace gts::jobgraph {

enum class NeuralNet : int { kAlexNet = 0, kCaffeRef = 1, kGoogLeNet = 2 };
inline constexpr int kNeuralNetCount = 3;

enum class BatchClass : int { kTiny = 0, kSmall = 1, kMedium = 2, kBig = 3 };
inline constexpr int kBatchClassCount = 4;

std::string_view to_string(NeuralNet nn) noexcept;
std::string_view to_string(BatchClass batch) noexcept;
std::optional<NeuralNet> neural_net_from_string(std::string_view name);
std::optional<BatchClass> batch_class_from_string(std::string_view name);

/// Representative per-GPU batch size for a class; Fig. 5 samples batch
/// sizes 1/4/64/128, and Fig. 4 shows pack == spread from ~16 upwards, so
/// the class boundaries are {1, 4, 16, 64}.
int representative_batch_size(BatchClass batch) noexcept;

/// Batch class of an arbitrary per-GPU batch size (1..128).
BatchClass classify_batch_size(int batch_size) noexcept;

/// Communication weight for the job graph edges (Section 5.1): 4 for the
/// smallest batch class down to 1 for the largest.
double comm_weight(BatchClass batch) noexcept;

/// All batch sizes swept by the characterization experiments (Fig. 4).
inline constexpr std::array<int, 8> kBatchSweep = {1, 2, 4, 8, 16, 32, 64, 128};

}  // namespace gts::jobgraph
