// Job communication graph and job profile (Sections 4.1.1 and 4.2).
//
// Vertices are the job's tasks (one per requested GPU); edges carry the
// expected communication volume between task pairs, normalized during
// mapping. Caffe's data-parallel model makes every GPU exchange gradients
// with every other, so DL jobs use all-to-all graphs with one weight per
// batch class, but the structure is general (model-parallel jobs can build
// arbitrary graphs).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "jobgraph/workload.hpp"

namespace gts::jobgraph {

struct CommEdge {
  int a = 0;
  int b = 0;
  double weight = 0.0;  // >0; average GPU-to-GPU bandwidth usage class
};

/// Undirected weighted communication graph over tasks 0..task_count-1.
class JobGraph {
 public:
  JobGraph() = default;
  explicit JobGraph(int task_count) : task_count_(task_count) {}

  /// Data-parallel pattern: every pair of tasks communicates with equal
  /// weight (Section 5.1). `weight` <= 0 yields an edgeless graph (a job
  /// whose GPUs do not talk to each other).
  static JobGraph all_to_all(int task_count, double weight);

  /// Ring pattern (ring all-reduce style model-parallel stages).
  static JobGraph ring(int task_count, double weight);

  int task_count() const noexcept { return task_count_; }
  const std::vector<CommEdge>& edges() const noexcept { return edges_; }
  int edge_count() const noexcept { return static_cast<int>(edges_.size()); }

  void add_edge(int a, int b, double weight);

  /// Weight between a pair (0 when not connected). O(edges).
  double edge_weight(int a, int b) const noexcept;

  /// Sum of all edge weights.
  double total_weight() const noexcept;

  /// Sum of weights from `task` to any task in `group`.
  double weight_to_group(int task, const std::vector<int>& group) const;

 private:
  int task_count_ = 0;
  std::vector<CommEdge> edges_;
};

/// Job profile (Section 4.2): what the scheduler knows about a workload
/// from historical profiling — its communication class and the expected
/// interference it suffers/causes when collocated with other classes.
struct JobProfile {
  NeuralNet nn = NeuralNet::kAlexNet;
  BatchClass batch = BatchClass::kTiny;
  int batch_size = 1;  // per-GPU batch size

  /// Job-graph edge weight (4=tiny .. 1=big per Section 5.1).
  double comm_weight = 4.0;

  /// Solo completion-time anchors from profiling (95th percentile in the
  /// prototype); filled by perf::build_profile(). Seconds for the job's
  /// full iteration count on its best (pack) and worst (spread) placement.
  double solo_time_pack = 0.0;
  double solo_time_spread = 0.0;

  /// Expected fractional slowdown (0 = none) when collocated with a job of
  /// each batch class on the same machine — the Fig. 6 matrix row.
  std::array<double, kBatchClassCount> collocation_slowdown{};

  /// Aggregate host-bandwidth demand (GB/s): link bytes per iteration over
  /// the solo iteration time. Consumed by the Section 4.3 capacity
  /// constraint t_bw <= p_bw during host filtering.
  double host_bw_demand_gbps = 0.0;

  /// Placement constraints (Section 4.4).
  bool single_node = true;       // job cannot span machines
  bool anti_collocate = false;   // tasks must land on distinct machines
};

/// A job submission: what arrives in the scheduler queue.
struct JobRequest {
  int id = 0;
  double arrival_time = 0.0;  // seconds
  int num_gpus = 1;
  long long iterations = 4000;  // training iterations (paper default)
  double min_utility = 0.0;     // SLO translated to a utility threshold
  JobProfile profile;
  JobGraph comm_graph;  // task_count == num_gpus

  /// Builds the canonical data-parallel request for a DL job.
  static JobRequest make_dl(int id, double arrival_time, NeuralNet nn,
                            int batch_size, int num_gpus, double min_utility,
                            long long iterations = 4000);
};

}  // namespace gts::jobgraph
