#include "jobgraph/jobgraph.hpp"

#include <algorithm>

#include "check/check.hpp"

namespace gts::jobgraph {

JobGraph JobGraph::all_to_all(int task_count, double weight) {
  JobGraph graph(task_count);
  if (weight <= 0.0) return graph;
  for (int a = 0; a < task_count; ++a) {
    for (int b = a + 1; b < task_count; ++b) {
      graph.add_edge(a, b, weight);
    }
  }
  return graph;
}

JobGraph JobGraph::ring(int task_count, double weight) {
  JobGraph graph(task_count);
  if (weight <= 0.0 || task_count < 2) return graph;
  for (int a = 0; a < task_count; ++a) {
    const int b = (a + 1) % task_count;
    if (task_count == 2 && a == 1) break;  // avoid duplicate 0-1 edge
    graph.add_edge(std::min(a, b), std::max(a, b), weight);
  }
  return graph;
}

void JobGraph::add_edge(int a, int b, double weight) {
  GTS_CHECK(a >= 0 && a < task_count_ && b >= 0 && b < task_count_ && a != b,
            "edge ", a, "-", b, " invalid for ", task_count_, " tasks");
  edges_.push_back({std::min(a, b), std::max(a, b), weight});
}

double JobGraph::edge_weight(int a, int b) const noexcept {
  const int lo = std::min(a, b);
  const int hi = std::max(a, b);
  for (const CommEdge& edge : edges_) {
    if (edge.a == lo && edge.b == hi) return edge.weight;
  }
  return 0.0;
}

double JobGraph::total_weight() const noexcept {
  double total = 0.0;
  for (const CommEdge& edge : edges_) total += edge.weight;
  return total;
}

double JobGraph::weight_to_group(int task,
                                 const std::vector<int>& group) const {
  double total = 0.0;
  for (const CommEdge& edge : edges_) {
    const int other = edge.a == task ? edge.b : (edge.b == task ? edge.a : -1);
    if (other < 0) continue;
    if (std::find(group.begin(), group.end(), other) != group.end()) {
      total += edge.weight;
    }
  }
  return total;
}

JobRequest JobRequest::make_dl(int id, double arrival_time, NeuralNet nn,
                               int batch_size, int num_gpus,
                               double min_utility, long long iterations) {
  JobRequest request;
  request.id = id;
  request.arrival_time = arrival_time;
  request.num_gpus = num_gpus;
  request.iterations = iterations;
  request.min_utility = min_utility;

  JobProfile& profile = request.profile;
  profile.nn = nn;
  profile.batch_size = batch_size;
  profile.batch = classify_batch_size(batch_size);
  profile.comm_weight = comm_weight(profile.batch);

  request.comm_graph = JobGraph::all_to_all(num_gpus, profile.comm_weight);
  return request;
}

}  // namespace gts::jobgraph
