#include "metrics/table.hpp"

#include <algorithm>
#include <sstream>

namespace gts::metrics {

std::string Table::render(const std::string& title) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace gts::metrics
