#include "metrics/chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/strings.hpp"

namespace gts::metrics {

namespace {
constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
}

std::string line_chart(std::span<const Series> series,
                       const ChartOptions& options) {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -y_min;
  for (const Series& s : series) {
    for (const auto& [x, y] : s.points) {
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (!(x_min <= x_max) || !(y_min <= y_max)) return "(empty chart)\n";
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;
  // A touch of headroom keeps the top row readable.
  y_max += (y_max - y_min) * 0.05;

  const int w = std::max(8, options.width);
  const int h = std::max(4, options.height);
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), ' '));

  for (size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& [x, y] : series[si].points) {
      const int col = static_cast<int>((x - x_min) / (x_max - x_min) * (w - 1));
      const int row = static_cast<int>((y - y_min) / (y_max - y_min) * (h - 1));
      const int r = h - 1 - std::clamp(row, 0, h - 1);
      grid[static_cast<size_t>(r)][static_cast<size_t>(std::clamp(col, 0, w - 1))] =
          glyph;
    }
  }

  std::ostringstream os;
  if (!options.y_label.empty()) os << options.y_label << "\n";
  os << util::format_double(y_max, 1) << " +"
     << std::string(static_cast<size_t>(w), '-') << "+\n";
  for (const std::string& row : grid) {
    os << std::string(util::format_double(y_max, 1).size(), ' ') << " |" << row
       << "|\n";
  }
  const std::string y_lo = util::format_double(y_min, 1);
  os << y_lo << std::string(util::format_double(y_max, 1).size() >= y_lo.size()
                                ? util::format_double(y_max, 1).size() - y_lo.size()
                                : 0,
                            ' ')
     << " +" << std::string(static_cast<size_t>(w), '-') << "+\n";
  os << "   x: [" << util::format_double(x_min, 1) << ", "
     << util::format_double(x_max, 1) << "]";
  if (!options.x_label.empty()) os << " " << options.x_label;
  os << "\n";
  for (size_t si = 0; si < series.size(); ++si) {
    os << "   '" << kGlyphs[si % sizeof(kGlyphs)] << "' " << series[si].name
       << "\n";
  }
  return os.str();
}

std::string bar_chart(std::span<const std::pair<std::string, double>> bars,
                      int width) {
  double max_v = 0.0;
  size_t label_width = 0;
  for (const auto& [label, value] : bars) {
    max_v = std::max(max_v, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, value] : bars) {
    const int len =
        max_v > 0.0
            ? static_cast<int>(std::round(value / max_v * width))
            : 0;
    os << label << std::string(label_width - label.size(), ' ') << " |"
       << std::string(static_cast<size_t>(std::max(0, len)), '#') << " "
       << util::format_double(value, 3) << "\n";
  }
  return os.str();
}

}  // namespace gts::metrics
