// Descriptive statistics used by the benches and tests.
#pragma once

#include <span>
#include <vector>

namespace gts::metrics {

double mean(std::span<const double> values);
double stddev(std::span<const double> values);  // sample stddev (n-1)
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> values, double p);

struct Summary {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};
Summary summarize(std::span<const double> values);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// values clamp into the edge buckets.
std::vector<int> histogram(std::span<const double> values, double lo,
                           double hi, int bins);

}  // namespace gts::metrics
