// Descriptive statistics used by the benches and tests.
#pragma once

#include <span>
#include <vector>

namespace gts::metrics {

double mean(std::span<const double> values);
double stddev(std::span<const double> values);  // sample stddev (n-1)
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> values, double p);

/// Half-width of the two-sided 95% confidence interval of the mean:
/// t_{0.975, n-1} * s / sqrt(n), with Student t quantiles tabulated up to
/// 30 degrees of freedom and the normal 1.96 beyond. 0 for n < 2.
double ci95_half_width(std::span<const double> values);

struct Summary {
  int count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  double ci95_half = 0.0;  // 95% CI of the mean is mean +- ci95_half
};
Summary summarize(std::span<const double> values);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; out-of-range
/// values clamp into the edge buckets.
std::vector<int> histogram(std::span<const double> values, double lo,
                           double hi, int bins);

}  // namespace gts::metrics
