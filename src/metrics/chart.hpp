// ASCII charts: line chart for time series (Fig. 5 style) and bar chart
// for ordered value lists (Fig. 8e/10/11 slowdown curves).
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace gts::metrics {

struct ChartOptions {
  int width = 72;   // plot columns
  int height = 16;  // plot rows
  std::string x_label;
  std::string y_label;
};

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Multi-series scatter/line chart; each series gets a distinct glyph.
std::string line_chart(std::span<const Series> series,
                       const ChartOptions& options = {});

/// Horizontal bar chart of labelled values.
std::string bar_chart(std::span<const std::pair<std::string, double>> bars,
                      int width = 50);

}  // namespace gts::metrics
