#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gts::metrics {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ci95_half_width(std::span<const double> values) {
  // Two-sided 97.5% Student t quantiles for df = 1..30.
  static constexpr double kT975[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t n = values.size();
  if (n < 2) return 0.0;
  const std::size_t df = n - 1;
  const double t = df <= 30 ? kT975[df - 1] : 1.960;
  return t * stddev(values) / std::sqrt(static_cast<double>(n));
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = static_cast<int>(values.size());
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = min_value(values);
  s.max = max_value(values);
  std::vector<double> copy(values.begin(), values.end());
  s.p50 = percentile(copy, 50.0);
  s.p95 = percentile(copy, 95.0);
  s.ci95_half = ci95_half_width(values);
  return s;
}

std::vector<int> histogram(std::span<const double> values, double lo,
                           double hi, int bins) {
  std::vector<int> counts(static_cast<size_t>(std::max(1, bins)), 0);
  if (values.empty() || hi <= lo) return counts;
  const double width = (hi - lo) / bins;
  for (const double v : values) {
    int bin = static_cast<int>((v - lo) / width);
    bin = std::clamp(bin, 0, bins - 1);
    ++counts[static_cast<size_t>(bin)];
  }
  return counts;
}

}  // namespace gts::metrics
