#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace gts::metrics {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double ss = 0.0;
  for (const double v : values) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = static_cast<int>(values.size());
  if (values.empty()) return s;
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = min_value(values);
  s.max = max_value(values);
  std::vector<double> copy(values.begin(), values.end());
  s.p50 = percentile(copy, 50.0);
  s.p95 = percentile(copy, 95.0);
  return s;
}

std::vector<int> histogram(std::span<const double> values, double lo,
                           double hi, int bins) {
  std::vector<int> counts(static_cast<size_t>(std::max(1, bins)), 0);
  if (values.empty() || hi <= lo) return counts;
  const double width = (hi - lo) / bins;
  for (const double v : values) {
    int bin = static_cast<int>((v - lo) / width);
    bin = std::clamp(bin, 0, bins - 1);
    ++counts[static_cast<size_t>(bin)];
  }
  return counts;
}

}  // namespace gts::metrics
