// ASCII table renderer for the bench binaries' paper-style outputs.
#pragma once

#include <string>
#include <vector>

namespace gts::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with aligned columns, a header separator, and `title` above.
  std::string render(const std::string& title = "") const;

  /// The same data as CSV (for offline plotting).
  std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gts::metrics
