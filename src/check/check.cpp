#include "check/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace gts::check {
namespace {

std::atomic<FailureMode> g_mode{FailureMode::kAbort};
std::atomic<std::uint64_t> g_failure_count{0};

// Handler + last-failure record share one mutex; check failures are rare
// and never on a hot path, so the lock is irrelevant for performance.
util::Mutex& state_mutex() {
  static util::Mutex mutex;
  return mutex;
}

FailureHandler& custom_handler() {
  static FailureHandler handler;
  return handler;
}

FailureInfo& last_failure_slot() {
  static FailureInfo info;
  return info;
}

}  // namespace

std::string FailureInfo::to_string() const {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << condition;
  if (!message.empty()) os << " (" << message << ')';
  return os.str();
}

CheckFailedError::CheckFailedError(FailureInfo info)
    : std::logic_error(info.to_string()), info_(std::move(info)) {}

FailureMode failure_mode() noexcept { return g_mode.load(); }
void set_failure_mode(FailureMode mode) noexcept { g_mode.store(mode); }

void set_failure_handler(FailureHandler handler) {
  const util::MutexLock lock(state_mutex());
  custom_handler() = std::move(handler);
}

std::uint64_t failure_count() noexcept { return g_failure_count.load(); }
void reset_failure_count() noexcept { g_failure_count.store(0); }

FailureInfo last_failure() {
  const util::MutexLock lock(state_mutex());
  return last_failure_slot();
}

ScopedFailureMode::ScopedFailureMode(FailureMode mode)
    : previous_(failure_mode()) {
  set_failure_handler(nullptr);
  set_failure_mode(mode);
}

ScopedFailureMode::~ScopedFailureMode() { set_failure_mode(previous_); }

namespace detail {

void fail(const char* condition, const char* file, int line,
          std::string message) {
  FailureInfo info{condition, file, line, std::move(message)};
  g_failure_count.fetch_add(1);

  FailureHandler handler;
  {
    const util::MutexLock lock(state_mutex());
    last_failure_slot() = info;
    handler = custom_handler();
  }
  if (handler) {
    handler(info);
    return;
  }
  switch (g_mode.load()) {
    case FailureMode::kThrow:
      throw CheckFailedError(std::move(info));
    case FailureMode::kLogAndCount:
      std::fprintf(stderr, "[CHECK] %s\n", info.to_string().c_str());
      return;
    case FailureMode::kAbort:
      break;
  }
  std::fprintf(stderr, "[CHECK] %s\n", info.to_string().c_str());
  std::abort();
}

}  // namespace detail
}  // namespace gts::check
