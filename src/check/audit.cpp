#include "check/audit.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "util/strings.hpp"

namespace gts::check {
namespace {

constexpr double kEps = 1e-6;

/// Deterministic GPU pair sample: exhaustive up to `dense_limit` GPUs,
/// otherwise consecutive pairs, mirrored pairs, and a strided fan from
/// GPU 0 — enough to cover intra-socket, intra-machine, and cross-machine
/// routes on every builder topology without O(G^2) blowup.
std::vector<std::pair<int, int>> sample_gpu_pairs(int gpu_count,
                                                  int dense_limit = 128) {
  std::vector<std::pair<int, int>> pairs;
  if (gpu_count <= dense_limit) {
    for (int a = 0; a < gpu_count; ++a) {
      for (int b = a + 1; b < gpu_count; ++b) pairs.emplace_back(a, b);
    }
    return pairs;
  }
  for (int a = 0; a + 1 < gpu_count; ++a) pairs.emplace_back(a, a + 1);
  for (int a = 0; a < gpu_count / 2; ++a) {
    if (a != gpu_count - 1 - a) pairs.emplace_back(a, gpu_count - 1 - a);
  }
  const int stride = std::max(1, gpu_count / 64);
  for (int b = stride; b < gpu_count; b += stride) pairs.emplace_back(0, b);
  return pairs;
}

}  // namespace

util::Status validate(const topo::TopologyGraph& topology) {
  if (const util::Status base = topology.validate(); !base.is_ok()) {
    return base;
  }
  const int gpus = topology.gpu_count();
  for (const auto& [a, b] : sample_gpu_pairs(gpus)) {
    const double forward = topology.gpu_distance(a, b);
    const double backward = topology.gpu_distance(b, a);
    if (std::abs(forward - backward) > kEps) {
      return util::Error{util::fmt(
          "topology: asymmetric distance {}<->{}: {} vs {}", a, b, forward,
          backward)};
    }
    const topo::GpuPath& cached = topology.gpu_path(a, b);
    if (std::abs(cached.distance - forward) > kEps) {
      return util::Error{util::fmt(
          "topology: path/distance mismatch {}<->{}: {} vs {}", a, b,
          cached.distance, forward)};
    }
    if (cached.links.empty()) {
      return util::Error{
          util::fmt("topology: empty route between GPUs {} and {}", a, b)};
    }
    if (cached.bottleneck_gbps <= 0.0) {
      return util::Error{util::fmt(
          "topology: non-positive bottleneck bandwidth {}<->{}", a, b)};
    }
    // Distance-matrix consistency: the cached table must agree with a
    // fresh Dijkstra run over the raw graph.
    const topo::GpuPath fresh =
        topology.shortest_path(topology.gpu_node(a), topology.gpu_node(b));
    if (std::abs(fresh.distance - forward) > kEps) {
      return util::Error{util::fmt(
          "topology: cached distance {}<->{} is {} but Dijkstra says {}", a,
          b, forward, fresh.distance)};
    }
  }
  return util::Status::ok();
}

util::Status validate(const jobgraph::JobGraph& graph) {
  const int tasks = graph.task_count();
  if (tasks < 0) {
    return util::Error{util::fmt("jobgraph: negative task count {}", tasks)};
  }
  std::set<std::pair<int, int>> seen;
  for (const jobgraph::CommEdge& edge : graph.edges()) {
    if (edge.a < 0 || edge.a >= tasks || edge.b < 0 || edge.b >= tasks) {
      return util::Error{util::fmt(
          "jobgraph: edge {}-{} out of bounds for {} tasks", edge.a, edge.b,
          tasks)};
    }
    if (edge.a == edge.b) {
      return util::Error{util::fmt("jobgraph: self-loop on task {}", edge.a)};
    }
    if (edge.a > edge.b) {
      return util::Error{util::fmt(
          "jobgraph: edge {}-{} not normalized (a < b)", edge.a, edge.b)};
    }
    if (edge.weight <= 0.0) {
      return util::Error{util::fmt(
          "jobgraph: non-positive weight {} on edge {}-{}", edge.weight,
          edge.a, edge.b)};
    }
    if (!seen.insert({edge.a, edge.b}).second) {
      return util::Error{
          util::fmt("jobgraph: duplicate edge {}-{}", edge.a, edge.b)};
    }
  }
  return util::Status::ok();
}

util::Status validate(const cluster::ClusterState& state) {
  const topo::TopologyGraph& topology = state.topology();
  const int gpu_count = topology.gpu_count();

  // Ownership: every running job's GPUs must be valid, unique across jobs
  // (no double allocation), and agree with the ownership table.
  std::map<int, int> claimed;  // gpu -> job id
  for (const auto& [id, job] : state.running_jobs()) {
    if (static_cast<int>(job.gpus.size()) != job.request.num_gpus) {
      return util::Error{util::fmt(
          "cluster: job {} holds {} GPUs but requested {}", id,
          job.gpus.size(), job.request.num_gpus)};
    }
    if (job.request.comm_graph.task_count() != job.request.num_gpus) {
      return util::Error{util::fmt(
          "cluster: job {} comm graph has {} tasks for {} GPUs", id,
          job.request.comm_graph.task_count(), job.request.num_gpus)};
    }
    if (const util::Status graph = validate(job.request.comm_graph);
        !graph.is_ok()) {
      return graph.error().with_context(util::fmt("cluster: job {}", id));
    }
    for (const int gpu : job.gpus) {
      if (gpu < 0 || gpu >= gpu_count) {
        return util::Error{
            util::fmt("cluster: job {} holds invalid GPU {}", id, gpu)};
      }
      const auto [it, inserted] = claimed.emplace(gpu, id);
      if (!inserted) {
        return util::Error{util::fmt(
            "cluster: GPU {} double-allocated to jobs {} and {}", gpu,
            it->second, id)};
      }
      if (state.gpu_owner(gpu) != id) {
        return util::Error{util::fmt(
            "cluster: GPU {} owner table says {} but job {} holds it", gpu,
            state.gpu_owner(gpu), id)};
      }
    }
    if (job.progress_iterations < -kEps ||
        job.progress_iterations >
            static_cast<double>(job.request.iterations) + kEps) {
      return util::Error{util::fmt(
          "cluster: job {} progress {} outside [0, {}]", id,
          job.progress_iterations, job.request.iterations)};
    }
    if (job.rate < 0.0 || job.noise_factor <= 0.0) {
      return util::Error{util::fmt(
          "cluster: job {} has rate {} / noise factor {}", id, job.rate,
          job.noise_factor)};
    }
  }
  for (int gpu = 0; gpu < gpu_count; ++gpu) {
    const int owner = state.gpu_owner(gpu);
    const auto it = claimed.find(gpu);
    if (owner < 0 && it != claimed.end()) {
      return util::Error{util::fmt(
          "cluster: GPU {} marked free but held by job {}", gpu,
          it->second)};
    }
    if (owner >= 0 && it == claimed.end()) {
      return util::Error{util::fmt(
          "cluster: GPU {} owned by job {} but no running job holds it",
          gpu, owner)};
    }
  }
  const int expected_free = gpu_count - static_cast<int>(claimed.size());
  if (state.free_gpu_count() != expected_free) {
    return util::Error{util::fmt(
        "cluster: free-GPU count {} but ownership implies {}",
        state.free_gpu_count(), expected_free)};
  }

  // Link flows must equal a replay of every running job's routes.
  perf::LinkFlows replayed(static_cast<size_t>(topology.link_count()), 0);
  for (const auto& [id, job] : state.running_jobs()) {
    for (const jobgraph::CommEdge& edge : job.request.comm_graph.edges()) {
      const int gpu_a = job.gpus[static_cast<size_t>(edge.a)];
      const int gpu_b = job.gpus[static_cast<size_t>(edge.b)];
      for (const topo::LinkId link : topology.gpu_path(gpu_a, gpu_b).links) {
        ++replayed[static_cast<size_t>(link)];
      }
    }
  }
  const perf::LinkFlows& flows = state.link_flows();
  if (flows.size() != replayed.size()) {
    return util::Error{util::fmt(
        "cluster: flow table has {} links, topology has {}", flows.size(),
        replayed.size())};
  }
  for (size_t link = 0; link < flows.size(); ++link) {
    if (flows[link] != replayed[link]) {
      return util::Error{util::fmt(
          "cluster: link {} flow count {} but replay gives {}", link,
          flows[link], replayed[link])};
    }
  }

  // Per-machine indices and the Section 4.3 host-bandwidth accounting.
  const int machines = topology.machine_count();
  std::vector<std::vector<int>> by_machine(static_cast<size_t>(machines));
  std::vector<double> bw_used(static_cast<size_t>(machines), 0.0);
  for (const auto& [id, job] : state.running_jobs()) {
    const std::vector<int> touched = state.machines_of(job.gpus);
    const double share = job.request.profile.host_bw_demand_gbps /
                         static_cast<double>(touched.size());
    for (const int machine : touched) {
      by_machine[static_cast<size_t>(machine)].push_back(id);
      bw_used[static_cast<size_t>(machine)] += share;
    }
  }
  for (int machine = 0; machine < machines; ++machine) {
    std::vector<int>& expected = by_machine[static_cast<size_t>(machine)];
    std::sort(expected.begin(), expected.end());
    if (state.jobs_of_machine(machine) != expected) {
      return util::Error{util::fmt(
          "cluster: machine {} job index out of sync ({} vs {} jobs)",
          machine, state.jobs_of_machine(machine).size(), expected.size())};
    }
    if (std::abs(state.host_bw_used(machine) -
                 bw_used[static_cast<size_t>(machine)]) > kEps) {
      return util::Error{util::fmt(
          "cluster: machine {} host-bw accounting {} but replay gives {}",
          machine, state.host_bw_used(machine),
          bw_used[static_cast<size_t>(machine)])};
    }
  }

  // Occupancy counters: the fragmented-machine count is maintained
  // incrementally, so replay it from ownership.
  {
    int fragmented = 0;
    for (int machine = 0; machine < machines; ++machine) {
      const std::vector<int>& gpus = topology.gpus_of_machine(machine);
      int machine_free = 0;
      for (const int gpu : gpus) {
        if (state.gpu_free(gpu)) ++machine_free;
      }
      if (machine_free > 0 && machine_free < static_cast<int>(gpus.size())) {
        ++fragmented;
      }
    }
    if (state.fragmented_machine_count() != fragmented) {
      return util::Error{util::fmt(
          "cluster: fragmented-machine count {} but replay gives {}",
          state.fragmented_machine_count(), fragmented)};
    }
  }

  // Link -> jobs interference index and each job's condensed flow counts
  // must equal a replay of the flattened flow links.
  std::vector<std::vector<int>> by_link(
      static_cast<size_t>(topology.link_count()));
  for (const auto& [id, job] : state.running_jobs()) {
    std::vector<topo::LinkId> sorted_links = job.flow_links;
    std::sort(sorted_links.begin(), sorted_links.end());
    size_t entry = 0;
    for (size_t i = 0; i < sorted_links.size();) {
      size_t j = i;
      while (j < sorted_links.size() && sorted_links[j] == sorted_links[i]) {
        ++j;
      }
      if (entry >= job.flow_link_counts.size() ||
          job.flow_link_counts[entry] !=
              std::pair<topo::LinkId, int>{sorted_links[i],
                                           static_cast<int>(j - i)}) {
        return util::Error{util::fmt(
            "cluster: job {} flow_link_counts out of sync with flow_links "
            "at link {}",
            id, sorted_links[i])};
      }
      by_link[static_cast<size_t>(sorted_links[i])].push_back(id);
      ++entry;
      i = j;
    }
    if (entry != job.flow_link_counts.size()) {
      return util::Error{util::fmt(
          "cluster: job {} flow_link_counts has {} entries, replay gives {}",
          id, job.flow_link_counts.size(), entry)};
    }
  }
  for (int link = 0; link < topology.link_count(); ++link) {
    // Replay lists are sorted already: running_jobs iterates id-ascending.
    if (state.jobs_of_link(link) != by_link[static_cast<size_t>(link)]) {
      return util::Error{util::fmt(
          "cluster: link {} job index out of sync ({} vs {} jobs)", link,
          state.jobs_of_link(link).size(),
          by_link[static_cast<size_t>(link)].size())};
    }
  }

  // Finish-time heap: exactly the positive-rate jobs, back-pointers and
  // stored times consistent, and min-heap ordered by (time, id).
  {
    const std::span<const cluster::ClusterState::FinishEntry> heap =
        state.finish_heap();
    size_t expected_slots = 0;
    for (const auto& [id, job] : state.running_jobs()) {
      if (job.rate > 0.0) {
        ++expected_slots;
        if (job.heap_pos < 0 ||
            job.heap_pos >= static_cast<int>(heap.size())) {
          return util::Error{util::fmt(
              "cluster: job {} has rate {} but heap_pos {}", id, job.rate,
              job.heap_pos)};
        }
        const cluster::ClusterState::FinishEntry& slot =
            heap[static_cast<size_t>(job.heap_pos)];
        if (slot.id != id || slot.time != job.finish_time) {
          return util::Error{util::fmt(
              "cluster: job {} heap slot holds (job {}, t={}) but job says "
              "t={}",
              id, slot.id, slot.time, job.finish_time)};
        }
      } else if (job.heap_pos != -1) {
        return util::Error{util::fmt(
            "cluster: zero-rate job {} still holds heap slot {}", id,
            job.heap_pos)};
      }
    }
    if (heap.size() != expected_slots) {
      return util::Error{util::fmt(
          "cluster: finish heap has {} slots for {} positive-rate jobs",
          heap.size(), expected_slots)};
    }
    for (size_t i = 1; i < heap.size(); ++i) {
      const cluster::ClusterState::FinishEntry& parent = heap[(i - 1) / 2];
      const cluster::ClusterState::FinishEntry& child = heap[i];
      if (child.time < parent.time ||
          (child.time == parent.time && child.id < parent.id)) {
        return util::Error{util::fmt(
            "cluster: finish heap violated at slot {}: ({}, {}) under "
            "({}, {})",
            i, child.time, child.id, parent.time, parent.id)};
      }
    }
  }
  return util::Status::ok();
}

util::Status audit_placement(const jobgraph::JobRequest& request,
                             std::span<const int> gpus,
                             const cluster::ClusterState& state) {
  const topo::TopologyGraph& topology = state.topology();
  if (static_cast<int>(gpus.size()) != request.num_gpus) {
    return util::Error{util::fmt(
        "placement: job {} offered {} GPUs for {} tasks", request.id,
        gpus.size(), request.num_gpus)};
  }
  if (request.comm_graph.task_count() != request.num_gpus) {
    return util::Error{util::fmt(
        "placement: job {} comm graph has {} tasks for {} GPUs", request.id,
        request.comm_graph.task_count(), request.num_gpus)};
  }
  if (const util::Status graph = validate(request.comm_graph);
      !graph.is_ok()) {
    return graph.error().with_context(
        util::fmt("placement: job {}", request.id));
  }
  std::set<int> distinct;
  for (const int gpu : gpus) {
    if (gpu < 0 || gpu >= topology.gpu_count()) {
      return util::Error{util::fmt(
          "placement: job {} offered invalid GPU {}", request.id, gpu)};
    }
    if (!distinct.insert(gpu).second) {
      return util::Error{util::fmt(
          "placement: job {} offered GPU {} twice", request.id, gpu)};
    }
    if (!state.gpu_free(gpu)) {
      return util::Error{util::fmt(
          "placement: job {} offered GPU {} already allocated to job {}",
          request.id, gpu, state.gpu_owner(gpu))};
    }
  }
  const std::vector<int> machines = state.machines_of(gpus);
  if (request.profile.single_node && machines.size() > 1) {
    return util::Error{util::fmt(
        "placement: single-node job {} spans {} machines", request.id,
        machines.size())};
  }
  if (request.profile.anti_collocate && machines.size() != gpus.size()) {
    return util::Error{util::fmt(
        "placement: anti-collocated job {} shares a machine ({} machines "
        "for {} tasks)",
        request.id, machines.size(), gpus.size())};
  }
  const double share = request.profile.host_bw_demand_gbps /
                       static_cast<double>(machines.size());
  for (const int machine : machines) {
    if (!state.host_bw_available(machine, share)) {
      return util::Error{util::fmt(
          "placement: job {} overcommits host bandwidth on machine {} "
          "({} + {} GB/s over capacity)",
          request.id, machine, state.host_bw_used(machine), share)};
    }
  }
  return util::Status::ok();
}

}  // namespace gts::check
