// GTS_CHECK / GTS_DCHECK: the repo's invariant-check macro family.
//
// Unlike bare assert(), these survive NDEBUG builds (GTS_CHECK always
// fires, GTS_DCHECK compiles out unless debug or GTS_FORCE_DCHECKS),
// produce formatted failure messages, and route failures through a
// pluggable process-wide handler:
//
//   * kAbort       — print to stderr and abort() (default; tests, tools);
//   * kThrow       — throw CheckFailedError (unit-testing the checks);
//   * kLogAndCount — print, bump a counter, continue (production mode:
//                    a scheduler serving traffic prefers a counted,
//                    alarmed inconsistency over a crashed process).
//
// A custom handler, when installed, replaces the mode-based behaviour
// entirely; if it returns, execution continues past the failed check.
//
// This header deliberately depends on nothing else in the repo so every
// library (including src/util headers) can use it without cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gts::check {

enum class FailureMode { kAbort, kThrow, kLogAndCount };

/// Everything known about one failed check.
struct FailureInfo {
  const char* condition = "";  // stringified condition text
  const char* file = "";
  int line = 0;
  std::string message;  // caller-supplied formatted context ("" if none)

  /// "file:line: check failed: cond (message)".
  std::string to_string() const;
};

/// Thrown by failed checks under FailureMode::kThrow.
class CheckFailedError : public std::logic_error {
 public:
  explicit CheckFailedError(FailureInfo info);
  const FailureInfo& info() const noexcept { return info_; }

 private:
  FailureInfo info_;
};

using FailureHandler = std::function<void(const FailureInfo&)>;

FailureMode failure_mode() noexcept;
void set_failure_mode(FailureMode mode) noexcept;

/// Installs `handler` for every subsequent failure; pass nullptr to
/// restore the mode-based behaviour.
void set_failure_handler(FailureHandler handler);

/// Number of check failures observed since start / last reset (counted in
/// every mode, including failures that aborted a forked test).
std::uint64_t failure_count() noexcept;
void reset_failure_count() noexcept;

/// Copy of the most recent failure (empty FailureInfo if none yet).
FailureInfo last_failure();

/// RAII helper for tests: switches the failure mode (and clears any
/// custom handler) for the current scope, restoring both on exit.
class ScopedFailureMode {
 public:
  explicit ScopedFailureMode(FailureMode mode);
  ~ScopedFailureMode();
  ScopedFailureMode(const ScopedFailureMode&) = delete;
  ScopedFailureMode& operator=(const ScopedFailureMode&) = delete;

 private:
  FailureMode previous_;
};

namespace detail {

/// Records and dispatches one failure according to the installed
/// handler/mode. Returns normally only in continuing modes.
void fail(const char* condition, const char* file, int line,
          std::string message);

inline std::string format_message() { return {}; }

template <typename... Args>
std::string format_message(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace detail
}  // namespace gts::check

/// Always-on invariant check. Extra arguments are streamed into the
/// failure message: GTS_CHECK(x > 0, "x=", x).
#define GTS_CHECK(condition, ...)                                           \
  (static_cast<bool>(condition)                                             \
       ? static_cast<void>(0)                                               \
       : ::gts::check::detail::fail(                                        \
             #condition, __FILE__, __LINE__,                                \
             ::gts::check::detail::format_message(__VA_ARGS__)))

/// Binary-comparison checks that report both operands on failure. The
/// operands are re-evaluated on the failure path only.
#define GTS_CHECK_OP(op, lhs, rhs)                                          \
  (((lhs)op(rhs)) ? static_cast<void>(0)                                    \
                  : ::gts::check::detail::fail(                             \
                        #lhs " " #op " " #rhs, __FILE__, __LINE__,          \
                        ::gts::check::detail::format_message(               \
                            "lhs=", (lhs), " rhs=", (rhs))))
#define GTS_CHECK_EQ(lhs, rhs) GTS_CHECK_OP(==, lhs, rhs)
#define GTS_CHECK_NE(lhs, rhs) GTS_CHECK_OP(!=, lhs, rhs)
#define GTS_CHECK_GE(lhs, rhs) GTS_CHECK_OP(>=, lhs, rhs)
#define GTS_CHECK_GT(lhs, rhs) GTS_CHECK_OP(>, lhs, rhs)
#define GTS_CHECK_LE(lhs, rhs) GTS_CHECK_OP(<=, lhs, rhs)
#define GTS_CHECK_LT(lhs, rhs) GTS_CHECK_OP(<, lhs, rhs)

// Debug-only variants: full checks in debug builds (or when
// GTS_FORCE_DCHECKS is defined, as the sanitizer presets do), compiled to
// nothing in optimized builds while still type-checking their arguments.
#if !defined(NDEBUG) || defined(GTS_FORCE_DCHECKS)
#define GTS_DCHECKS_ENABLED 1
#define GTS_DCHECK(condition, ...) GTS_CHECK(condition, ##__VA_ARGS__)
#define GTS_DCHECK_EQ(lhs, rhs) GTS_CHECK_EQ(lhs, rhs)
#define GTS_DCHECK_GE(lhs, rhs) GTS_CHECK_GE(lhs, rhs)
#else
#define GTS_DCHECKS_ENABLED 0
#define GTS_DCHECK(condition, ...) \
  (true ? static_cast<void>(0) : GTS_CHECK(condition, ##__VA_ARGS__))
#define GTS_DCHECK_EQ(lhs, rhs) \
  (true ? static_cast<void>(0) : GTS_CHECK_EQ(lhs, rhs))
#define GTS_DCHECK_GE(lhs, rhs) \
  (true ? static_cast<void>(0) : GTS_CHECK_GE(lhs, rhs))
#endif
