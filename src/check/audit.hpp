// Deep structural validators for the invariant-bearing data structures,
// and the scheduler placement audit.
//
// Each validator walks the public API of its subject and cross-checks the
// redundant bookkeeping it keeps (caches, counters, indices) against a
// from-scratch recomputation. They return util::Status rather than firing
// GTS_CHECK themselves so callers choose the failure policy: the Driver's
// self-audit turns a bad status into a GTS_CHECK failure, while tests
// simply inspect the message.
//
// Costs: validate(JobGraph) is O(E); validate(ClusterState) is
// O(running jobs × comm edges); validate(TopologyGraph) re-runs Dijkstra
// on a bounded pair sample, so all are cheap enough to run per simulated
// event on test-sized clusters (the Driver's self_audit flag).
#pragma once

#include <span>

#include "cluster/state.hpp"
#include "jobgraph/jobgraph.hpp"
#include "topo/topology.hpp"
#include "util/expected.hpp"

namespace gts::check {

/// Topology invariants beyond TopologyGraph::validate(): connectivity and
/// link sanity (delegated), plus distance-matrix consistency — symmetric
/// GPU distances, zero self-distance, agreement between the cached
/// gpu_path() table and a fresh Dijkstra run, and positive bottleneck
/// bandwidth on every cached path. Pairs are sampled (all pairs up to
/// 128 GPUs, a deterministic cross-section above) to bound cost.
util::Status validate(const topo::TopologyGraph& topology);

/// Job-graph invariants: endpoints in [0, task_count), no self-loops,
/// normalized edge order (a < b), positive weights, no duplicate edges.
util::Status validate(const jobgraph::JobGraph& graph);

/// Cluster-state audit: GPU ownership table and job table agree in both
/// directions (in particular, no GPU is claimed by two jobs), free-GPU
/// accounting matches, per-link flow counts equal a replay of every
/// running job's communication paths, per-machine job indices and
/// host-bandwidth accounting match a recomputation, and every job's
/// progress/rate is within bounds.
util::Status validate(const cluster::ClusterState& state);

/// Replays a proposed placement of `request` on `gpus` against the
/// topology and current state to confirm feasibility: GPU ids valid,
/// distinct, and free; task count matches; single-node / anti-collocation
/// constraints hold; the Section 4.3 host-bandwidth capacity t_bw <= p_bw
/// is respected on every touched machine; the communication graph itself
/// validates. A corrupted state (e.g. a double-allocated GPU) makes any
/// placement touching the damage fail the audit.
util::Status audit_placement(const jobgraph::JobRequest& request,
                             std::span<const int> gpus,
                             const cluster::ClusterState& state);

}  // namespace gts::check
