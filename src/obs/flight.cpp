#include "obs/flight.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "obs/trace.hpp"
#include "util/expected.hpp"

namespace gts::obs {

namespace detail {
std::atomic<bool> flight_on{false};
}  // namespace detail

namespace {

constexpr std::size_t kDetailWords = 6;
constexpr std::size_t kDetailBytes = kDetailWords * sizeof(std::uint64_t);

/// Crash-handler state: plain ints/pointers set once at install time so
/// the signal handler touches nothing that allocates or locks.
std::atomic<int> g_crash_fd{-1};

// --- async-signal-safe formatting -----------------------------------------
// The crash path may not call snprintf/malloc; these append into a caller
// stack buffer and return the new length (clamped to the buffer).

std::size_t append_text(char* buffer, std::size_t len, std::size_t cap,
                        const char* text) noexcept {
  while (*text != '\0' && len + 1 < cap) buffer[len++] = *text++;
  return len;
}

std::size_t append_ll(char* buffer, std::size_t len, std::size_t cap,
                      long long value) noexcept {
  char digits[24];
  std::size_t n = 0;
  unsigned long long magnitude;
  if (value < 0) {
    if (len + 1 < cap) buffer[len++] = '-';
    magnitude = static_cast<unsigned long long>(-(value + 1)) + 1ull;
  } else {
    magnitude = static_cast<unsigned long long>(value);
  }
  do {
    digits[n++] = static_cast<char>('0' + magnitude % 10ull);
    magnitude /= 10ull;
  } while (magnitude > 0 && n < sizeof(digits));
  while (n > 0 && len + 1 < cap) buffer[len++] = digits[--n];
  return len;
}

/// Fixed-point with 6 fractional digits — enough for latencies in us and
/// simulated seconds, and computable with integer arithmetic only.
std::size_t append_fixed(char* buffer, std::size_t len, std::size_t cap,
                         double value) noexcept {
  if (value != value) return append_text(buffer, len, cap, "0");  // NaN
  if (value < 0) {
    if (len + 1 < cap) buffer[len++] = '-';
    value = -value;
  }
  if (value > 9.2e12) value = 9.2e12;  // keep the integer math in range
  const long long scaled = static_cast<long long>(value * 1e6 + 0.5);
  len = append_ll(buffer, len, cap, scaled / 1000000);
  if (len + 1 < cap) buffer[len++] = '.';
  long long frac = scaled % 1000000;
  for (long long divisor = 100000; divisor >= 1; divisor /= 10) {
    if (len + 1 < cap) {
      buffer[len++] = static_cast<char>('0' + (frac / divisor) % 10);
    }
  }
  return len;
}

/// Formats one event as a JSONL line into `buffer`; returns the length.
/// Async-signal-safe (used by both the crash handler and dump_jsonl, so
/// every dump path emits byte-identical records).
std::size_t format_event(const FlightEvent& event, char* buffer,
                         std::size_t cap) noexcept {
  std::size_t len = 0;
  len = append_text(buffer, len, cap, "{\"kind\":\"flight\",\"seq\":");
  len = append_ll(buffer, len, cap, static_cast<long long>(event.seq));
  len = append_text(buffer, len, cap, ",\"event\":\"");
  len = append_text(buffer, len, cap, to_string(event.kind));
  len = append_text(buffer, len, cap, "\",\"wall_us\":");
  len = append_ll(buffer, len, cap, event.wall_us);
  len = append_text(buffer, len, cap, ",\"sim_s\":");
  len = append_fixed(buffer, len, cap, event.sim_s);
  len = append_text(buffer, len, cap, ",\"job\":");
  len = append_ll(buffer, len, cap, event.job);
  len = append_text(buffer, len, cap, ",\"a\":");
  len = append_fixed(buffer, len, cap, event.a);
  len = append_text(buffer, len, cap, ",\"b\":");
  len = append_fixed(buffer, len, cap, event.b);
  len = append_text(buffer, len, cap, ",\"detail\":\"");
  len = append_text(buffer, len, cap, event.detail);
  len = append_text(buffer, len, cap, "\"}\n");
  return len;
}

void write_all(int fd, const char* data, std::size_t size) noexcept {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    written += static_cast<std::size_t>(n);
  }
}

extern "C" void flight_crash_handler(int signo) {
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    FlightRecorder::instance().dump_to_fd(fd);
    ::fsync(fd);
  }
  // Re-raise with the default disposition (handlers were installed with
  // SA_RESETHAND) so the process still dies with the original signal.
  ::raise(signo);
}

}  // namespace

const char* to_string(FlightKind kind) noexcept {
  switch (kind) {
    case FlightKind::kAdmission: return "admission";
    case FlightKind::kDecision: return "decision";
    case FlightKind::kPostponement: return "postponement";
    case FlightKind::kBatch: return "batch";
    case FlightKind::kBackpressure: return "backpressure";
    case FlightKind::kSnapshot: return "snapshot";
    case FlightKind::kError: return "error";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::enable(std::size_t capacity) {
  capacity = std::max<std::size_t>(capacity, 16);
  if (ring_.load(std::memory_order_acquire) == nullptr ||
      capacity_.load(std::memory_order_relaxed) != capacity) {
    // Rings are leaked on reallocation rather than freed: a concurrent
    // late recorder (or the crash handler) may still hold the old
    // pointer, and enable() is a rare configuration-time call.
    ring_.store(new Slot[capacity], std::memory_order_release);
    capacity_.store(capacity, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
  }
  detail::flight_on.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() noexcept {
  detail::flight_on.store(false, std::memory_order_relaxed);
}

void FlightRecorder::clear() noexcept {
  disable();
  Slot* ring = ring_.load(std::memory_order_acquire);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity; ++i) {
    ring[i].commit.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

std::size_t FlightRecorder::capacity() const noexcept {
  return capacity_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::recorded() const noexcept {
  return next_.load(std::memory_order_relaxed);
}

void FlightRecorder::record(FlightKind kind, int job, double a, double b,
                            const char* detail, double sim_s) noexcept {
  Slot* ring = ring_.load(std::memory_order_acquire);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (ring == nullptr || capacity == 0) return;
  const std::uint64_t seq =
      next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring[seq % capacity];
  slot.commit.store(0, std::memory_order_release);  // writer owns the slot
  slot.wall_us.store(wall_now_us(), std::memory_order_relaxed);
  slot.sim_s.store(sim_s, std::memory_order_relaxed);
  slot.kind.store(static_cast<int>(kind), std::memory_order_relaxed);
  slot.job.store(job, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  // Sanitize + pack the detail text into whole words (crash-time reads
  // then cannot observe a torn string).
  char text[kDetailBytes] = {0};
  if (detail != nullptr) {
    std::size_t n = 0;
    for (; n + 1 < kDetailBytes && detail[n] != '\0'; ++n) {
      const char c = detail[n];
      text[n] = (c >= 0x20 && c < 0x7f && c != '"' && c != '\\') ? c : '_';
    }
  }
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, text + w * sizeof(word), sizeof(word));
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.commit.store(seq + 1, std::memory_order_release);
}

bool FlightRecorder::read_slot(std::uint64_t seq,
                               FlightEvent& out) const noexcept {
  const Slot* ring = ring_.load(std::memory_order_acquire);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  if (ring == nullptr || capacity == 0) return false;
  const Slot& slot = ring[seq % capacity];
  if (slot.commit.load(std::memory_order_acquire) != seq + 1) return false;
  out.seq = seq;
  out.wall_us = slot.wall_us.load(std::memory_order_relaxed);
  out.sim_s = slot.sim_s.load(std::memory_order_relaxed);
  out.kind = static_cast<FlightKind>(slot.kind.load(std::memory_order_relaxed));
  out.job = slot.job.load(std::memory_order_relaxed);
  out.a = slot.a.load(std::memory_order_relaxed);
  out.b = slot.b.load(std::memory_order_relaxed);
  for (std::size_t w = 0; w < kDetailWords; ++w) {
    const std::uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
    std::memcpy(out.detail + w * sizeof(word), &word, sizeof(word));
  }
  out.detail[sizeof(out.detail) - 1] = '\0';
  // A writer may have started reusing the slot while the fields were
  // copied; the second stamp read catches that.
  return slot.commit.load(std::memory_order_acquire) == seq + 1;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  const std::uint64_t next = next_.load(std::memory_order_relaxed);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  const std::uint64_t first =
      next > capacity ? next - capacity : 0;
  std::vector<FlightEvent> events;
  events.reserve(static_cast<std::size_t>(next - first));
  for (std::uint64_t seq = first; seq < next; ++seq) {
    FlightEvent event;
    if (read_slot(seq, event)) events.push_back(event);
  }
  return events;
}

std::string FlightRecorder::dump_jsonl() const {
  std::string out;
  char line[512];
  for (const FlightEvent& event : snapshot()) {
    out.append(line, format_event(event, line, sizeof(line)));
  }
  return out;
}

util::Status FlightRecorder::dump_to_file(const std::string& path) const {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Error{"flight dump: cannot open " + path + ": " +
                       std::strerror(errno)};
  }
  dump_to_fd(fd);
  ::close(fd);
  return util::Status::ok();
}

void FlightRecorder::dump_to_fd(int fd) const noexcept {
  const std::uint64_t next = next_.load(std::memory_order_relaxed);
  const std::size_t capacity = capacity_.load(std::memory_order_relaxed);
  const std::uint64_t first = next > capacity ? next - capacity : 0;
  char line[512];
  for (std::uint64_t seq = first; seq < next; ++seq) {
    FlightEvent event;
    if (!read_slot(seq, event)) continue;
    write_all(fd, line, format_event(event, line, sizeof(line)));
  }
}

util::Status FlightRecorder::install_crash_handler(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Error{"flight crash handler: cannot open " + path + ": " +
                       std::strerror(errno)};
  }
  const int previous = g_crash_fd.exchange(fd, std::memory_order_relaxed);
  if (previous >= 0) ::close(previous);
  struct sigaction action {};
  action.sa_handler = flight_crash_handler;
  ::sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the handler runs once, then raise(signo) re-enters the
  // default disposition so the crash still terminates the process.
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS}) {
    if (::sigaction(signo, &action, nullptr) != 0) {
      return util::Error{std::string("flight crash handler: sigaction: ") +
                         std::strerror(errno)};
    }
  }
  return util::Status::ok();
}

}  // namespace gts::obs
