// Crash-safe flight recorder: a fixed-size lock-free ring of the most
// recent structured scheduler events, for postmortems of a live
// gts_schedd (DESIGN.md section 18.3).
//
// Events (admission, decision, postponement, batch, backpressure,
// snapshot, error) are written on the decision thread — the same
// SerialCapability-confined paths PR 6 annotated — but the ring itself
// is safe for any thread: every slot field is a relaxed atomic and a
// per-slot commit stamp lets readers detect and skip torn slots, so
// concurrent record/snapshot is TSan-clean and the write path stays
// wait-free (one fetch_add + a handful of relaxed stores).
//
// Three dump paths share one format (JSONL, one event per line,
// "kind":"flight"):
//   * the `dump` service verb / FlightRecorder::dump_jsonl();
//   * SIGSEGV/SIGABRT via install_crash_handler(path) — the fd is opened
//     at install time and the handler only formats into stack buffers
//     and write(2)s, keeping it async-signal-safe;
//   * GTS_CHECK failure via the handler configure() installs when the
//     recorder has a dump path (the failure is recorded as a kError
//     event first, then the configured FailureMode behaviour replays).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.hpp"

namespace gts::obs {

enum class FlightKind : int {
  kAdmission = 0,
  kDecision = 1,
  kPostponement = 2,
  kBatch = 3,
  kBackpressure = 4,
  kSnapshot = 5,
  kError = 6,
};
const char* to_string(FlightKind kind) noexcept;

/// Value-type copy of one committed ring slot.
struct FlightEvent {
  std::uint64_t seq = 0;
  std::int64_t wall_us = 0;  // obs::wall_now_us() at record time
  double sim_s = -1.0;       // simulated seconds; < 0 = none supplied
  FlightKind kind = FlightKind::kError;
  int job = -1;     // job id; -1 = not job-scoped
  double a = 0.0;   // kind-specific payload (latency, depth, size, ...)
  double b = 0.0;
  char detail[48] = {0};  // NUL-terminated, sanitized at record time
};

namespace detail {
extern std::atomic<bool> flight_on;
}  // namespace detail

inline bool flight_enabled() noexcept {
  return detail::flight_on.load(std::memory_order_relaxed);
}

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Allocates (or reuses) the ring and enables recording. Capacity is
  /// rounded up to at least 16 events; re-enabling with a different
  /// capacity reallocates and drops buffered events.
  void enable(std::size_t capacity);
  /// Stops recording; buffered events stay dumpable.
  void disable() noexcept;
  /// disable() + clear the ring and sequence counter (obs::reset()).
  void clear() noexcept;

  std::size_t capacity() const noexcept;
  /// Events recorded since the last clear (may exceed capacity; the ring
  /// keeps the most recent `capacity()`).
  std::uint64_t recorded() const noexcept;

  /// Appends one event. Wait-free, lock-free, callable from any thread;
  /// a no-op while disabled. `detail` is truncated to fit the slot and
  /// sanitized to JSON-safe ASCII.
  void record(FlightKind kind, int job, double a, double b,
              const char* detail, double sim_s = -1.0) noexcept;

  /// Copies the committed events, oldest first. Slots being overwritten
  /// concurrently are skipped (their commit stamp mismatches).
  std::vector<FlightEvent> snapshot() const;

  /// JSONL, one `{"kind":"flight","seq":...}` object per line.
  std::string dump_jsonl() const;
  util::Status dump_to_file(const std::string& path) const;

  /// Async-signal-safe dump: stack-buffer formatting + write(2) only.
  void dump_to_fd(int fd) const noexcept;

  /// Pre-opens `path` (O_CREAT|O_TRUNC) and installs SIGSEGV/SIGABRT
  /// handlers that dump the ring to the kept fd and re-raise with the
  /// default disposition. Call once per process, after enable().
  util::Status install_crash_handler(const std::string& path);

 private:
  struct Slot {
    /// seq + 1 once the slot's fields are fully written; 0 while a
    /// writer owns it. Readers re-check after copying the fields.
    std::atomic<std::uint64_t> commit{0};
    std::atomic<std::int64_t> wall_us{0};
    std::atomic<double> sim_s{-1.0};
    std::atomic<int> kind{0};
    std::atomic<int> job{-1};
    std::atomic<double> a{0.0};
    std::atomic<double> b{0.0};
    /// `detail` packed little-endian into words so crash-time reads stay
    /// atomic (no torn strings in a SIGSEGV dump).
    std::atomic<std::uint64_t> detail[6] = {};
  };

  FlightRecorder() = default;
  bool read_slot(std::uint64_t seq, FlightEvent& out) const noexcept;

  std::atomic<Slot*> ring_{nullptr};
  std::atomic<std::size_t> capacity_{0};
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace gts::obs

/// Hot-path macros: one relaxed load + branch while the recorder is
/// disabled. GTS_FLIGHT_AT additionally stamps the simulated clock.
#define GTS_FLIGHT(kind, job, a, b, detail_text)                          \
  do {                                                                    \
    if (::gts::obs::flight_enabled()) {                                   \
      ::gts::obs::FlightRecorder::instance().record(kind, job, a, b,      \
                                                    detail_text);         \
    }                                                                     \
  } while (0)

#define GTS_FLIGHT_AT(kind, job, a, b, detail_text, sim_seconds)          \
  do {                                                                    \
    if (::gts::obs::flight_enabled()) {                                   \
      ::gts::obs::FlightRecorder::instance().record(kind, job, a, b,      \
                                                    detail_text,          \
                                                    sim_seconds);         \
    }                                                                     \
  } while (0)
