// Sliding-window aggregates: ring-of-buckets time windows over the PR 3
// metrics registry, giving rolling rates and windowed quantile estimates
// (p50/p95/p99 over the last 10 s / 1 min / 5 min) for live operation of
// the scheduler daemon (DESIGN.md section 18.1).
//
// Each windowed instrument keeps, per window span, a fixed ring of
// bucket slots; a slot covers one epoch (span / slots seconds) and holds
// a small atomic histogram. record() stamps the sample into the slot of
// the current epoch, lazily reclaiming slots whose epoch fell out of the
// window — there is no advancing thread. All state is relaxed atomics:
// recording is lock-free, wait-free, and a disabled site costs exactly
// one relaxed load + branch (GTS_METRIC_WINDOW), matching the DESIGN.md
// section 13 zero-cost discipline. Recording never influences decisions
// (tests/livetelemetry_test.cpp extends the obs-on/off identity
// regression over this layer).
//
// The window clock is wall time (obs::wall_now_us) by default; tests and
// sim-driven harnesses install a manual clock (set_window_clock_us) to
// make advancement and expiry deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace gts::obs {

/// One configured window span. All instruments share the same ladder
/// (window_spans()); labels name the span in snapshots/exposition.
struct WindowSpec {
  double span_s = 10.0;
  int slots = 10;
  const char* label = "10s";
};

/// The 10 s / 1 min / 5 min ladder.
std::span<const WindowSpec> window_spans();

namespace detail {
extern std::atomic<bool> windows_on;
/// Manual clock in microseconds; < 0 = use the wall clock.
extern std::atomic<std::int64_t> window_clock_us;
}  // namespace detail

inline bool windows_enabled() noexcept {
  return detail::windows_on.load(std::memory_order_relaxed);
}

/// Current window-clock reading (manual clock when installed, else the
/// wall clock shared with the trace timeline).
std::int64_t window_now_us() noexcept;

/// Installs a manual window clock at `now_us` (deterministic tests /
/// sim-driven advancement). Pass a negative value to return to the wall
/// clock. The clock must never move backwards while instruments record.
void set_window_clock_us(std::int64_t now_us) noexcept;

/// Windowed statistics over one metric: for every window span, the
/// sample count, rolling rate (count / span) and merged histogram of the
/// samples that fell inside the window.
class WindowedStats {
 public:
  /// `bounds` follow the registry histogram convention (ascending
  /// inclusive upper edges, implicit overflow bucket); empty = latency
  /// ladder.
  explicit WindowedStats(std::span<const double> bounds);

  /// Records one sample at the current window clock. Lock-free; callable
  /// from any thread.
  void record(double value) noexcept;

  struct SpanSnapshot {
    std::string label;
    double span_s = 0.0;
    long long count = 0;
    double rate_per_s = 0.0;  // count / span
    HistogramData histogram;  // merged over the window's live slots
  };
  /// Merges the live slots of every span at the current clock. Slots
  /// whose epoch expired are excluded (their counts are dropped, not
  /// carried).
  std::vector<SpanSnapshot> snapshot() const;

  /// Zeroes every slot (registry reset semantics; the instrument and the
  /// references to it stay valid).
  void reset() noexcept;

 private:
  struct Slot {
    /// Epoch this slot's counts belong to; -1 = empty. A recorder that
    /// finds a stale epoch claims the slot with a CAS and zeroes it;
    /// samples racing a reclaim may be dropped (telemetry tolerance).
    std::atomic<std::int64_t> epoch{-1};
    std::vector<std::atomic<long long>> counts;  // bounds + overflow
    std::atomic<long long> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
  };
  struct Window {
    WindowSpec spec;
    std::int64_t epoch_us = 0;  // slot width
    std::vector<Slot> slots;
  };

  void record_into(Window& window, std::int64_t now_us, double value) noexcept;

  std::vector<double> bounds_;
  std::vector<Window> windows_;
};

/// Process-wide registry of windowed instruments, mirroring
/// obs::Registry: lookup registers on first use, references stay valid
/// for the process lifetime, reset() zeroes values only.
class WindowRegistry {
 public:
  static WindowRegistry& instance();

  /// `bounds` applies on first registration only (empty = latency
  /// ladder), like Registry::histogram.
  WindowedStats& stats(const std::string& name,
                       std::span<const double> bounds = {});

  void reset();
  std::size_t instrument_count() const;

  /// {"windows": {name: [{"span","span_s","count","rate_per_s",
  ///   "mean","min","max","p50","p95","p99"}, ...]}}.
  json::Value snapshot_json() const;

 private:
  WindowRegistry() = default;
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<WindowedStats>> stats_
      GTS_GUARDED_BY(mutex_);
};

}  // namespace gts::obs

/// Hot-path macro: one relaxed load + branch when windows are disabled;
/// instrument lookup happens once per call site.
#define GTS_METRIC_WINDOW(name, value, bounds)                           \
  do {                                                                   \
    if (::gts::obs::windows_enabled()) {                                 \
      static ::gts::obs::WindowedStats& gts_obs_window =                 \
          ::gts::obs::WindowRegistry::instance().stats(name, bounds);    \
      gts_obs_window.record(value);                                      \
    }                                                                    \
  } while (0)
