// Prometheus text-format exposition (version 0.0.4) of the metrics
// registry and the windowed aggregates (DESIGN.md section 18.2).
//
// Counters and gauges render as single samples; registry histograms
// render with the Prometheus cumulative-bucket contract (`_bucket{le=}`
// monotone non-decreasing, terminated by `le="+Inf"` equal to `_count`),
// converted from the registry's per-bucket counts. Windowed aggregates
// render as one `gts_window{metric=,span=,stat=}` gauge family plus a
// `gts_window_rate{metric=,span=}` family — flat label sets that a
// scraper (or gts_top) can select without knowing the metric names up
// front. Metric names are sanitized to the Prometheus grammar and
// prefixed "gts_" ("sched.decision_latency_us" ->
// "gts_sched_decision_latency_us").
#pragma once

#include <string>

namespace gts::obs {

/// Sanitizes one metric name to [a-zA-Z_:][a-zA-Z0-9_:]* with the
/// "gts_" prefix.
std::string prometheus_name(const std::string& name);

/// Renders the full exposition: every registry counter/gauge/histogram
/// plus every windowed instrument, with # HELP / # TYPE lines. Safe to
/// call with metrics or windows disabled (renders whatever has been
/// registered so far).
std::string prometheus_text();

/// Appends one externally computed gauge sample (`# TYPE` emitted on
/// first use of the family) — the service front-end adds live gauges
/// (queue depth, fragmentation) the registry does not own.
void append_prometheus_gauge(std::string& out, const std::string& name,
                             const std::string& help, double value);

/// Labeled variant: one sample of a gauge family with a caller-built
/// label body (e.g. `shard="3"`) — per-shard live gauges use this.
void append_prometheus_gauge_labeled(std::string& out,
                                     const std::string& name,
                                     const std::string& help,
                                     const std::string& labels, double value);

}  // namespace gts::obs
