#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace gts::obs {

namespace {

/// Per-thread event buffer. Buffers are owned by the global registry (so
/// export can see finished threads' events) and capped to keep runaway
/// instrumented loops from exhausting memory.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
  std::size_t dropped = 0;
};

struct BufferRegistry {
  util::Mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers GTS_GUARDED_BY(mutex);
  std::uint32_t next_tid GTS_GUARDED_BY(mutex) = 1;
};

BufferRegistry& registry() {
  static BufferRegistry* instance = new BufferRegistry();
  return *instance;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto created = std::make_shared<ThreadBuffer>();
    BufferRegistry& reg = registry();
    util::MutexLock lock(reg.mutex);
    created->tid = reg.next_tid++;
    reg.buffers.push_back(created);
    return created;
  }();
  return *buffer;
}

/// Trace epoch: first use of the clock. steady_clock keeps durations
/// monotonic; the exported ts values are relative microseconds.
std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

namespace detail {

const double*& sim_clock() noexcept {
  thread_local const double* clock = nullptr;
  return clock;
}

std::int64_t now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

}  // namespace detail

std::int64_t wall_now_us() noexcept { return detail::now_us(); }

namespace detail {

void emit(const TraceEvent& event) {
  ThreadBuffer& buffer = thread_buffer();
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(event);
}

}  // namespace detail

namespace {

void emit_point(Category category, const char* name,
                TraceEvent::Phase phase) noexcept {
  if (!tracing_enabled(category)) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = phase;
  event.ts_us = detail::now_us();
  event.sim_s = detail::sim_clock() != nullptr ? *detail::sim_clock() : -1.0;
  detail::emit(event);
}

}  // namespace

void trace_begin(Category category, const char* name) noexcept {
  emit_point(category, name, TraceEvent::Phase::kBegin);
}

void trace_end(Category category, const char* name) noexcept {
  emit_point(category, name, TraceEvent::Phase::kEnd);
}

void trace_instant(Category category, const char* name) noexcept {
  emit_point(category, name, TraceEvent::Phase::kInstant);
}

void trace_instant(Category category, const char* name, const char* key,
                   double value) noexcept {
  if (!tracing_enabled(category)) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = TraceEvent::Phase::kInstant;
  event.ts_us = detail::now_us();
  event.sim_s = detail::sim_clock() != nullptr ? *detail::sim_clock() : -1.0;
  event.args[0] = {key, value};
  event.arg_count = 1;
  detail::emit(event);
}

void trace_instant_text(Category category, const char* name,
                        std::string text) {
  if (!tracing_enabled(category)) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = TraceEvent::Phase::kInstant;
  event.ts_us = detail::now_us();
  event.sim_s = detail::sim_clock() != nullptr ? *detail::sim_clock() : -1.0;
  event.text = std::move(text);
  detail::emit(event);
}

void trace_counter(Category category, const char* name,
                   double value) noexcept {
  if (!tracing_enabled(category)) return;
  TraceEvent event;
  event.category = category;
  event.name = name;
  event.phase = TraceEvent::Phase::kCounter;
  event.ts_us = detail::now_us();
  event.sim_s = detail::sim_clock() != nullptr ? *detail::sim_clock() : -1.0;
  event.args[0] = {"value", value};
  event.arg_count = 1;
  detail::emit(event);
}

std::size_t trace_event_count() {
  BufferRegistry& reg = registry();
  util::MutexLock lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->events.size();
  return total;
}

std::size_t trace_dropped_count() {
  BufferRegistry& reg = registry();
  util::MutexLock lock(reg.mutex);
  std::size_t total = 0;
  for (const auto& buffer : reg.buffers) total += buffer->dropped;
  return total;
}

void clear_trace() {
  BufferRegistry& reg = registry();
  util::MutexLock lock(reg.mutex);
  for (const auto& buffer : reg.buffers) {
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

json::Value trace_to_json() {
  // Snapshot under the registry lock; serialization happens outside it.
  std::vector<std::shared_ptr<ThreadBuffer>> snapshot;
  {
    BufferRegistry& reg = registry();
    util::MutexLock lock(reg.mutex);
    snapshot = reg.buffers;
  }

  json::Array events;
  // Metadata: one process, named threads.
  {
    json::Object meta;
    meta["name"] = "process_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = 0;
    json::Object args;
    args["name"] = "gpu-topo-sched";
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const auto& buffer : snapshot) {
    json::Object meta;
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<long long>(buffer->tid);
    json::Object args;
    args["name"] = "thread-" + std::to_string(buffer->tid);
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }

  for (const auto& buffer : snapshot) {
    for (const TraceEvent& event : buffer->events) {
      json::Object o;
      o["name"] = event.name != nullptr ? event.name : "?";
      o["cat"] = std::string(category_name(event.category));
      o["ph"] = std::string(1, static_cast<char>(event.phase));
      o["ts"] = static_cast<double>(event.ts_us);
      if (event.phase == TraceEvent::Phase::kComplete) {
        o["dur"] = static_cast<double>(event.dur_us);
      }
      if (event.phase == TraceEvent::Phase::kInstant) {
        o["s"] = "t";  // thread-scoped instant
      }
      o["pid"] = 1;
      o["tid"] = static_cast<long long>(buffer->tid);
      json::Object args;
      if (event.sim_s >= 0.0) args["sim_s"] = event.sim_s;
      for (int i = 0; i < event.arg_count; ++i) {
        args[event.args[i].key] = event.args[i].value;
      }
      if (!event.text.empty()) args["text"] = event.text;
      if (!args.empty()) o["args"] = std::move(args);
      events.push_back(std::move(o));
    }
  }

  json::Object doc;
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  const std::size_t dropped = trace_dropped_count();
  if (dropped > 0) {
    json::Object meta;
    meta["dropped_events"] = static_cast<long long>(dropped);
    doc["metadata"] = std::move(meta);
  }
  return doc;
}

util::Status write_trace_json(const std::string& path) {
  json::WriteOptions options;
  options.indent = 0;  // traces are large; compact on purpose
  return json::write_file(trace_to_json(), path, options);
}

util::Status validate_trace_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return util::Error{"trace: document is not an object"};
  }
  const json::Value& events = doc.at("traceEvents");
  if (!events.is_array()) {
    return util::Error{"trace: missing traceEvents array"};
  }
  for (const json::Value& event : events.as_array()) {
    if (!event.is_object()) {
      return util::Error{"trace: event is not an object"};
    }
    if (!event.at("name").is_string() || !event.at("ph").is_string() ||
        event.at("ph").as_string().size() != 1) {
      return util::Error{"trace: event missing name/ph"};
    }
    if (!event.contains("pid") || !event.contains("tid")) {
      return util::Error{"trace: event missing pid/tid"};
    }
    const std::string& phase = event.at("ph").as_string();
    if (phase == "M") continue;  // metadata events carry no ts
    if (!event.at("ts").is_number()) {
      return util::Error{"trace: event missing ts"};
    }
    if (phase == "X" && !event.at("dur").is_number()) {
      return util::Error{"trace: complete event missing dur"};
    }
  }
  return util::Status::ok();
}

}  // namespace gts::obs
