// Low-overhead span recorder exporting Chrome trace_event JSON.
//
// Spans, instants and counters are buffered per thread (no locking on the
// hot path beyond one relaxed atomic check) and exported on demand as a
// Chrome trace_event document loadable in Perfetto / chrome://tracing.
// Events carry wall time (ts/dur, microseconds since the first event) and,
// when a simulation engine is running on the thread, the simulated time as
// an argument ("sim_s").
//
// Event names and argument keys must be string literals (static storage):
// the recorder stores the pointers, not copies.
#pragma once

#include <cstdint>
#include <string>

#include "json/json.hpp"
#include "obs/obs.hpp"
#include "util/expected.hpp"

namespace gts::obs {

/// One buffered event. kComplete events are emitted by SpanGuard with a
/// duration; kBegin/kEnd pair up explicitly; kInstant marks a point.
struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',
    kBegin = 'B',
    kEnd = 'E',
    kInstant = 'i',
    kCounter = 'C',
  };

  static constexpr int kMaxArgs = 4;
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };

  const char* name = nullptr;
  Category category = kSched;
  Phase phase = Phase::kInstant;
  std::int64_t ts_us = 0;   // wall time since trace epoch
  std::int64_t dur_us = 0;  // kComplete only
  double sim_s = -1.0;      // simulated seconds; < 0 = no sim clock
  Arg args[kMaxArgs];
  int arg_count = 0;
  /// Free-form payload exported as args.text (log-line mirroring); empty
  /// for ordinary events.
  std::string text;
};

namespace detail {
/// Per-thread sim-clock pointer installed by sim::Engine while it runs;
/// spans snapshot the pointed-to time when non-null. Behind an accessor
/// (function-local thread_local) rather than an extern thread_local:
/// GCC's cross-TU TLS wrapper for the latter trips a UBSan
/// "store to null pointer" false positive.
const double*& sim_clock() noexcept;

void emit(const TraceEvent& event);
std::int64_t now_us() noexcept;
}  // namespace detail

/// Monotonic wall-clock in microseconds since the process trace epoch —
/// the sanctioned clock read for timing instrumentation. Decision-path
/// code must take timestamps through this helper instead of touching
/// std::chrono directly (gts_lint's wall-clock rule): confining the
/// clock to the obs layer keeps scheduling decisions replayable and
/// gives every subsystem the same epoch as the trace timeline.
std::int64_t wall_now_us() noexcept;

/// Installs `clock` as the thread's simulated-time source for the scope's
/// lifetime (nested scopes restore the previous source).
class SimClockScope {
 public:
  explicit SimClockScope(const double* clock) noexcept
      : previous_(detail::sim_clock()) {
    detail::sim_clock() = clock;
  }
  ~SimClockScope() { detail::sim_clock() = previous_; }
  SimClockScope(const SimClockScope&) = delete;
  SimClockScope& operator=(const SimClockScope&) = delete;

 private:
  const double* previous_;
};

/// RAII span: records a kComplete event covering its lifetime. Costs one
/// branch when the category is disabled. Attach numeric arguments with
/// arg() (kept on the exported event, max TraceEvent::kMaxArgs).
class SpanGuard {
 public:
  SpanGuard(Category category, const char* name) noexcept {
    if (!tracing_enabled(category)) return;
    active_ = true;
    event_.category = category;
    event_.name = name;
    event_.phase = TraceEvent::Phase::kComplete;
    event_.ts_us = detail::now_us();
    event_.sim_s =
        detail::sim_clock() != nullptr ? *detail::sim_clock() : -1.0;
  }
  ~SpanGuard() {
    if (!active_) return;
    event_.dur_us = detail::now_us() - event_.ts_us;
    detail::emit(event_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches a numeric argument; ignored when the span is inactive or
  /// the argument slots are exhausted.
  SpanGuard& arg(const char* key, double value) noexcept {
    if (active_ && event_.arg_count < TraceEvent::kMaxArgs) {
      event_.args[event_.arg_count++] = {key, value};
    }
    return *this;
  }
  bool active() const noexcept { return active_; }

 private:
  bool active_ = false;
  TraceEvent event_;
};

/// Explicit begin/end pair (for spans that cannot be scoped) and instant
/// events. All cost one branch when the category is disabled.
void trace_begin(Category category, const char* name) noexcept;
void trace_end(Category category, const char* name) noexcept;
void trace_instant(Category category, const char* name) noexcept;
void trace_instant(Category category, const char* name, const char* key,
                   double value) noexcept;
/// Instant carrying a free-form text payload (exported as args.text).
void trace_instant_text(Category category, const char* name,
                        std::string text);
void trace_counter(Category category, const char* name,
                   double value) noexcept;

/// Number of buffered events across all thread buffers (plus dropped
/// count diagnostics for tests).
std::size_t trace_event_count();
std::size_t trace_dropped_count();

/// Drops every buffered event (all threads).
void clear_trace();

/// Exports all buffered events as a Chrome trace_event JSON document:
/// {"traceEvents": [...], "displayTimeUnit": "ms"} with process/thread
/// metadata records. Buffers are left intact.
json::Value trace_to_json();

/// Serializes trace_to_json() to `path`.
util::Status write_trace_json(const std::string& path);

/// Structural validation of a Chrome trace_event document: traceEvents
/// array present, every event carries name/ph/ts/pid/tid, complete events
/// carry dur. (tools/validate_trace.py is the out-of-process twin.)
util::Status validate_trace_json(const json::Value& doc);

}  // namespace gts::obs

#define GTS_OBS_CONCAT2(a, b) a##b
#define GTS_OBS_CONCAT(a, b) GTS_OBS_CONCAT2(a, b)

/// RAII span over the enclosing scope: GTS_TRACE_SPAN(kSched, "sched.pass").
/// To attach arguments, bind the guard explicitly instead:
///   obs::SpanGuard span(obs::kSched, "sched.decide");
///   span.arg("job", job.id);
#define GTS_TRACE_SPAN(category, name)                             \
  ::gts::obs::SpanGuard GTS_OBS_CONCAT(gts_obs_span_, __LINE__)( \
      category, name)

#define GTS_TRACE_INSTANT(...) ::gts::obs::trace_instant(__VA_ARGS__)
#define GTS_TRACE_COUNTER(category, name, value) \
  ::gts::obs::trace_counter(category, name, value)
