// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms (metric naming convention: "<component>.<what>[_<unit>]",
// e.g. "sched.decision_latency_us", "fm.passes", "cache.hits").
//
// Registry instruments are thread-safe (atomics; histograms use atomic
// bucket counters) and survive Registry::reset(), which zeroes values but
// keeps references valid — the runner resets between sweeps, not the
// instruments' owners. HistogramData is the plain value-type twin used
// for per-run local recording (e.g. DriverReport's decision-latency
// histogram) and for snapshots of registry histograms.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "obs/obs.hpp"
#include "util/annotations.hpp"
#include "util/expected.hpp"
#include "util/sync.hpp"

namespace gts::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(long long delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Shared bucket layouts. Bounds are ascending inclusive upper edges; an
/// implicit overflow bucket follows the last bound.
std::span<const double> latency_bounds_us();  // 1us .. 1e7us, 1-2-5 series
std::span<const double> depth_bounds();       // 1..24 linear
std::span<const double> cost_bounds();        // 1 .. ~1e6 geometric
std::span<const double> fraction_bounds();    // 0.05..1.0 linear (ratios)

/// Plain (non-atomic) fixed-bucket histogram with value semantics.
class HistogramData {
 public:
  /// Default layout is the decision-latency ladder.
  HistogramData() : HistogramData(latency_bounds_us()) {}
  explicit HistogramData(std::span<const double> bounds);

  void record(double value) noexcept;
  void merge(const HistogramData& other);
  void reset() noexcept;

  long long count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return count_ > 0 ? max_ : 0.0; }
  double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Percentile estimate by linear interpolation inside the owning bucket
  /// (`p` in [0, 1]); the overflow bucket reports the observed max.
  double percentile(double p) const noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  const std::vector<long long>& counts() const noexcept { return counts_; }
  long long bucket_count(std::size_t bucket) const noexcept {
    return bucket < counts_.size() ? counts_[bucket] : 0;
  }

  /// {"count","sum","mean","min","max","p50","p95","bounds":[...],
  ///  "counts":[...]} — counts has bounds.size()+1 entries (overflow last).
  json::Value to_json() const;

 private:
  friend class Histogram;       // snapshot() fills the representation directly
  friend class WindowedStats;   // window-slot merges fill it the same way
  std::vector<double> bounds_;
  std::vector<long long> counts_;  // bounds_.size() + 1 (overflow)
  long long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Thread-safe registry histogram (atomic buckets).
class Histogram {
 public:
  explicit Histogram(std::span<const double> bounds);

  void record(double value) noexcept;
  HistogramData snapshot() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<long long>> counts_;
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// The process-wide instrument registry. Lookup registers on first use;
/// returned references stay valid for the process lifetime (including
/// across reset(), which only zeroes values).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies on first registration only; later lookups of the
  /// same name ignore it. Empty bounds = latency ladder.
  Histogram& histogram(const std::string& name,
                       std::span<const double> bounds = {});

  /// Zeroes every instrument; references remain valid.
  void reset();

  std::size_t instrument_count() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  json::Value snapshot_json() const;

 private:
  Registry() = default;
  // The maps are guarded; the instruments they point to are internally
  // thread-safe (atomics) and may be used lock-free once handed out.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GTS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      GTS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GTS_GUARDED_BY(mutex_);
};

/// The standalone --metrics-out document:
/// {"schema_version":1,"kind":"metrics","metrics":snapshot_json()}.
json::Value metrics_document();
util::Status write_metrics_json(const std::string& path);
util::Status validate_metrics_json(const json::Value& doc);

}  // namespace gts::obs

/// Hot-path macros: one branch when metrics are disabled; instrument
/// lookup happens once per call site (function-local static reference).
#define GTS_METRIC_COUNT(name, delta)                                   \
  do {                                                                  \
    if (::gts::obs::metrics_enabled()) {                                \
      static ::gts::obs::Counter& gts_obs_counter =                     \
          ::gts::obs::Registry::instance().counter(name);               \
      gts_obs_counter.add(delta);                                       \
    }                                                                   \
  } while (0)

#define GTS_METRIC_GAUGE_SET(name, value)                               \
  do {                                                                  \
    if (::gts::obs::metrics_enabled()) {                                \
      static ::gts::obs::Gauge& gts_obs_gauge =                         \
          ::gts::obs::Registry::instance().gauge(name);                 \
      gts_obs_gauge.set(value);                                         \
    }                                                                   \
  } while (0)

#define GTS_METRIC_HISTOGRAM(name, value, bounds)                       \
  do {                                                                  \
    if (::gts::obs::metrics_enabled()) {                                \
      static ::gts::obs::Histogram& gts_obs_histogram =                 \
          ::gts::obs::Registry::instance().histogram(name, bounds);     \
      gts_obs_histogram.record(value);                                  \
    }                                                                   \
  } while (0)
