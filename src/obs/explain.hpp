// Decision-explain records: one JSONL line per scheduling decision, with
// the candidate mappings considered and the Eq. 3/4/5 utility-term
// breakdown behind the chosen one — the post-hoc answer to "why did job J
// land on GPUs {…}".
//
// Flow: the Driver opens a DecisionScope per place() call when explain is
// enabled; schedulers (TopoAwareScheduler, greedy) append candidates to
// the thread-current scope; the Driver fills the outcome and the chosen
// terms and appends the record to the process-wide ExplainLog sink.
// Schedulers touch the scope through DecisionScope::current(), which is a
// single thread-local read (nullptr when explain is off).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/annotations.hpp"
#include "util/expected.hpp"
#include "util/sync.hpp"

namespace gts::obs {

/// The normalized Eq. 2–5 utility terms (mirrors sched::UtilityBreakdown;
/// duplicated here so obs stays below sched in the layering).
struct UtilityTerms {
  double comm_cost = 0.0;     // t, Eq. 3
  double comm_utility = 1.0;  // t_best / t
  double interference = 1.0;  // I, Eq. 4
  double frag_omega = 0.0;    // omega, Eq. 5
  double frag_utility = 1.0;  // 1 - omega
  double comm_weight = 0.0;   // w (job's normalized comm weight)
  double utility = 1.0;       // U, the combined score
  bool has_breakdown = false;  // false: only `utility` is meaningful

  json::Value to_json() const;
};

/// One candidate mapping the scheduler evaluated.
struct ExplainCandidate {
  std::vector<int> gpus;
  UtilityTerms terms;
  /// Where the candidate came from: "drb", "cache", "best-machine:<m>",
  /// "greedy", ...
  std::string source;
};

/// One scheduling decision.
struct DecisionRecord {
  long long sequence = 0;  // assigned by ExplainLog::append
  double sim_time = 0.0;
  std::string policy;
  int job_id = 0;
  int num_gpus = 0;
  double min_utility = 0.0;
  /// "placed" | "declined" | "postponed".
  std::string outcome;
  std::vector<int> gpus;  // chosen mapping (empty unless placed)
  UtilityTerms chosen;
  bool satisfied = true;
  std::vector<ExplainCandidate> candidates;
  double decision_us = 0.0;  // wall-clock cost of the place() call

  json::Value to_json() const;
};

/// Process-wide JSONL sink.
class ExplainLog {
 public:
  static ExplainLog& instance();

  util::Status open(const std::string& path);
  bool is_open() const;
  /// Stamps record.sequence and writes one JSON line. No-op while closed.
  void append(DecisionRecord record);
  void close();
  long long records_written() const;

 private:
  ExplainLog() = default;
  mutable util::Mutex mutex_;
  /// std::FILE*, kept opaque for the header.
  void* file_ GTS_GUARDED_BY(mutex_) = nullptr;
  long long sequence_ GTS_GUARDED_BY(mutex_) = 0;
};

/// The per-decision candidate collector, thread-current while a Driver
/// decision is in flight.
class DecisionScope {
 public:
  DecisionScope(std::string policy, int job_id, int num_gpus,
                double min_utility, double sim_time);
  ~DecisionScope();
  DecisionScope(const DecisionScope&) = delete;
  DecisionScope& operator=(const DecisionScope&) = delete;

  /// The scope currently in flight on this thread; nullptr when explain is
  /// off or no decision is being made.
  static DecisionScope* current() noexcept;

  void add_candidate(ExplainCandidate candidate);
  DecisionRecord& record() noexcept { return record_; }

  /// Finalizes and appends to the ExplainLog.
  void commit();

 private:
  DecisionRecord record_;
  DecisionScope* previous_ = nullptr;
  bool committed_ = false;
};

/// Parses a JSONL explain file back into records (tooling/tests).
util::Expected<std::vector<json::Value>> read_explain_jsonl(
    const std::string& path);

}  // namespace gts::obs
