#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "check/check.hpp"
#include "obs/explain.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "util/annotations.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/sync.hpp"

namespace gts::obs {

namespace detail {
std::atomic<unsigned> trace_mask{0};
std::atomic<bool> metrics_on{false};
std::atomic<bool> explain_on{false};
}  // namespace detail

namespace {

util::Mutex g_config_mutex;
ObsConfig g_config GTS_GUARDED_BY(g_config_mutex);
bool g_log_sink_installed = false;
bool g_check_hook_installed = false;

/// Check-failure hook installed while the flight recorder has a dump
/// path: record the failure as a kError event, dump the ring, then
/// replay the configured FailureMode behaviour (a custom handler
/// replaces it entirely, so the default dispatch is reproduced here).
void flight_check_failure_handler(const check::FailureInfo& info) {
  FlightRecorder::instance().record(FlightKind::kError, -1,
                                    static_cast<double>(info.line), 0.0,
                                    info.condition);
  const std::string path = config().flight_out;
  if (!path.empty()) {
    (void)FlightRecorder::instance().dump_to_file(path);
  }
  std::fprintf(stderr, "[CHECK] %s\n", info.to_string().c_str());
  switch (check::failure_mode()) {
    case check::FailureMode::kThrow:
      throw check::CheckFailedError(info);
    case check::FailureMode::kLogAndCount:
      return;
    case check::FailureMode::kAbort:
      break;
  }
  std::abort();
}

void remove_check_hook() {
  if (!g_check_hook_installed) return;
  check::set_failure_handler(nullptr);
  g_check_hook_installed = false;
}

/// Mirrors every emitted log line into the trace timeline (kLog instants)
/// while keeping the default stderr output.
void install_log_mirror_sink() {
  util::Logger::instance().set_sink(
      [](util::LogLevel level, std::string_view component,
         std::string_view message) {
        util::Logger::write_stderr(level, component, message);
        std::string text;
        text.reserve(component.size() + message.size() + 16);
        text.append("[").append(util::to_string(level)).append("] ");
        text.append(component).append(": ").append(message);
        trace_instant_text(kLog, "log.line", std::move(text));
      });
  g_log_sink_installed = true;
}

void remove_log_mirror_sink() {
  if (!g_log_sink_installed) return;
  util::Logger::instance().set_sink({});
  g_log_sink_installed = false;
}

constexpr struct {
  Category category;
  std::string_view name;
} kCategoryNames[] = {
    {kSched, "sched"},     {kSim, "sim"},         {kDrb, "drb"},
    {kFm, "fm"},           {kCache, "cache"},     {kRunner, "runner"},
    {kCluster, "cluster"}, {kBench, "bench"},     {kLog, "log"},
    {kSvc, "svc"},
};

}  // namespace

std::string_view category_name(Category category) noexcept {
  for (const auto& entry : kCategoryNames) {
    if (entry.category == category) return entry.name;
  }
  return "other";
}

std::string categories_to_string(unsigned mask) {
  if ((mask & kAllCategories) == kAllCategories) return "all";
  std::string spec;
  for (const auto& entry : kCategoryNames) {
    if ((mask & static_cast<unsigned>(entry.category)) == 0u) continue;
    if (!spec.empty()) spec += ',';
    spec += entry.name;
  }
  return spec;
}

util::Expected<unsigned> parse_categories(const std::string& spec) {
  const std::string lower = util::to_lower(spec);
  if (lower.empty() || lower == "all") return kAllCategories;
  unsigned mask = 0;
  for (const std::string& token : util::split(lower, ',')) {
    if (token.empty()) continue;
    bool found = false;
    for (const auto& entry : kCategoryNames) {
      if (entry.name == token) {
        mask |= static_cast<unsigned>(entry.category);
        found = true;
        break;
      }
    }
    if (!found) {
      return util::Error{"unknown obs category '" + token + "'"};
    }
  }
  if (mask == 0) return util::Error{"obs categories: empty selection"};
  return mask;
}

util::Status configure(const ObsConfig& config) {
  ObsConfig effective = config;
  // A non-empty output path implies its pillar.
  if (!effective.trace_out.empty()) effective.tracing = true;
  if (!effective.metrics_out.empty()) effective.metrics = true;
  if (!effective.explain_out.empty()) effective.explain = true;
  if (!effective.prom_out.empty()) effective.metrics = true;
  if (!effective.flight_out.empty()) effective.flight = true;

  if (effective.explain && !effective.explain_out.empty()) {
    if (auto status = ExplainLog::instance().open(effective.explain_out);
        !status) {
      return status;
    }
  }
  {
    util::MutexLock lock(g_config_mutex);
    g_config = effective;
  }
  detail::trace_mask.store(
      effective.tracing ? (effective.categories & kCompiledCategories) : 0u,
      std::memory_order_relaxed);
  detail::metrics_on.store(effective.metrics, std::memory_order_relaxed);
  detail::explain_on.store(
      effective.explain && ExplainLog::instance().is_open(),
      std::memory_order_relaxed);
  detail::windows_on.store(effective.windows, std::memory_order_relaxed);
  if (effective.flight) {
    FlightRecorder::instance().enable(effective.flight_capacity);
  } else {
    FlightRecorder::instance().disable();
  }
  if (effective.flight && !effective.flight_out.empty()) {
    check::set_failure_handler(flight_check_failure_handler);
    g_check_hook_installed = true;
  } else {
    remove_check_hook();
  }
  if (tracing_enabled(kLog)) {
    install_log_mirror_sink();
  } else {
    remove_log_mirror_sink();
  }
  return util::Status::ok();
}

ObsConfig config() {
  util::MutexLock lock(g_config_mutex);
  return g_config;
}

util::Expected<std::vector<std::string>> finalize() {
  const ObsConfig current = config();
  std::vector<std::string> written;
  if (!current.trace_out.empty()) {
    if (auto status = write_trace_json(current.trace_out); !status) {
      return status.error();
    }
    written.push_back(current.trace_out);
  }
  if (!current.metrics_out.empty()) {
    if (auto status = write_metrics_json(current.metrics_out); !status) {
      return status.error();
    }
    written.push_back(current.metrics_out);
  }
  if (ExplainLog::instance().is_open()) {
    ExplainLog::instance().close();
    if (!current.explain_out.empty()) written.push_back(current.explain_out);
  }
  if (!current.prom_out.empty()) {
    std::ofstream out(current.prom_out);
    if (!out) {
      return util::Error{"cannot open " + current.prom_out};
    }
    out << prometheus_text();
    written.push_back(current.prom_out);
  }
  if (!current.flight_out.empty()) {
    if (auto status = FlightRecorder::instance().dump_to_file(
            current.flight_out);
        !status) {
      return status.error();
    }
    written.push_back(current.flight_out);
  }
  return written;
}

void reset() {
  detail::trace_mask.store(0u, std::memory_order_relaxed);
  detail::metrics_on.store(false, std::memory_order_relaxed);
  detail::explain_on.store(false, std::memory_order_relaxed);
  detail::windows_on.store(false, std::memory_order_relaxed);
  {
    util::MutexLock lock(g_config_mutex);
    g_config = ObsConfig{};
  }
  remove_log_mirror_sink();
  remove_check_hook();
  ExplainLog::instance().close();
  clear_trace();
  Registry::instance().reset();
  WindowRegistry::instance().reset();
  FlightRecorder::instance().clear();
  set_window_clock_us(-1);
}

void add_cli_flags(util::CliParser& cli) {
  cli.add_option("trace-out",
                 "write a Chrome trace_event JSON here (enables tracing)",
                 "");
  cli.add_option("metrics-out",
                 "write the metrics-registry snapshot here (enables metrics)",
                 "");
  cli.add_option("explain-out",
                 "write per-decision explain JSONL here (enables explain)",
                 "");
  cli.add_option("obs-categories",
                 "trace categories, e.g. 'sched,drb' (default: all)", "");
  cli.add_option("prom-out",
                 "write a Prometheus text-format snapshot here "
                 "(enables metrics)",
                 "");
  cli.add_option("flight-out",
                 "dump the flight-recorder ring as JSONL here "
                 "(enables the flight recorder)",
                 "");
  cli.add_flag("obs-windows",
               "enable sliding-window aggregates (10s/1m/5m rates and "
               "quantiles)");
}

util::Status configure_from_cli(const util::CliParser& cli) {
  ObsConfig obs_config;
  obs_config.trace_out = cli.get("trace-out");
  obs_config.metrics_out = cli.get("metrics-out");
  obs_config.explain_out = cli.get("explain-out");
  obs_config.prom_out = cli.get("prom-out");
  obs_config.flight_out = cli.get("flight-out");
  obs_config.windows = cli.has("obs-windows");
  const auto mask = parse_categories(cli.get("obs-categories"));
  if (!mask) return mask.error();
  obs_config.categories = *mask;
  if (obs_config.trace_out.empty() && obs_config.metrics_out.empty() &&
      obs_config.explain_out.empty() && obs_config.prom_out.empty() &&
      obs_config.flight_out.empty() && !obs_config.windows) {
    return util::Status::ok();  // observability not requested
  }
  return configure(obs_config);
}

}  // namespace gts::obs
