#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace gts::obs {

namespace {

/// fetch_add for atomic<double> via CAS (portable to pre-C++20 ABIs).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::span<const double> latency_bounds_us() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    b.push_back(1e7);
    return b;
  }();
  return bounds;
}

std::span<const double> depth_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double d = 1.0; d <= 24.0; d += 1.0) b.push_back(d);
    return b;
  }();
  return bounds;
}

std::span<const double> fraction_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (int i = 1; i <= 20; ++i) b.push_back(0.05 * i);
    return b;
  }();
  return bounds;
}

std::span<const double> cost_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double v = 1.0; v <= 1.1e6; v *= 2.0) b.push_back(v);
    return b;
  }();
  return bounds;
}

HistogramData::HistogramData(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()), counts_(bounds.size() + 1, 0) {}

void HistogramData::record(double value) noexcept {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void HistogramData::merge(const HistogramData& other) {
  if (other.count_ == 0) return;
  if (bounds_ == other.bounds_) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return;
  }
  // Layout mismatch: re-bucket by bound midpoints (lossy, diagnostics only).
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    const double representative =
        i < other.bounds_.size() ? other.bounds_[i] : other.max_;
    for (long long k = 0; k < other.counts_[i]; ++k) record(representative);
  }
}

void HistogramData::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double HistogramData::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count_);
  long long cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const long long next = cumulative + counts_[i];
    if (static_cast<double>(next) >= target) {
      if (i >= bounds_.size()) return max_;  // overflow bucket
      const double lower =
          i == 0 ? std::min(min_, bounds_[0]) : bounds_[i - 1];
      const double upper = bounds_[i];
      const double within =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_;
}

json::Value HistogramData::to_json() const {
  json::Object o;
  o["count"] = count_;
  o["sum"] = sum_;
  o["mean"] = mean();
  o["min"] = min();
  o["max"] = max();
  o["p50"] = percentile(0.50);
  o["p95"] = percentile(0.95);
  json::Array bounds;
  for (const double bound : bounds_) bounds.push_back(bound);
  o["bounds"] = std::move(bounds);
  json::Array counts;
  for (const long long count : counts_) counts.push_back(count);
  o["counts"] = std::move(counts);
  return o;
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.empty()
                  ? std::vector<double>(latency_bounds_us().begin(),
                                        latency_bounds_us().end())
                  : std::vector<double>(bounds.begin(), bounds.end())),
      counts_(bounds_.size() + 1) {}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  const long long before = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  if (before == 0) {
    // First sample initializes the extrema (benign race with concurrent
    // first samples: both run the CAS loops below as well).
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramData Histogram::snapshot() const {
  HistogramData data{std::span<const double>(bounds_)};
  long long total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    data.counts_[i] = counts_[i].load(std::memory_order_relaxed);
    total += data.counts_[i];
  }
  data.count_ = total;
  data.sum_ = sum_.load(std::memory_order_relaxed);
  data.min_ = min_.load(std::memory_order_relaxed);
  data.max_ = max_.load(std::memory_order_relaxed);
  return data;
}

void Histogram::reset() noexcept {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::span<const double> bounds) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void Registry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

std::size_t Registry::instrument_count() const {
  util::MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

json::Value Registry::snapshot_json() const {
  util::MutexLock lock(mutex_);
  json::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->value();
  }
  json::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->value();
  }
  json::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram->snapshot().to_json();
  }
  json::Object doc;
  doc["counters"] = std::move(counters);
  doc["gauges"] = std::move(gauges);
  doc["histograms"] = std::move(histograms);
  return doc;
}

json::Value metrics_document() {
  json::Object doc;
  doc["schema_version"] = 1;
  doc["kind"] = "metrics";
  doc["metrics"] = Registry::instance().snapshot_json();
  return doc;
}

util::Status write_metrics_json(const std::string& path) {
  json::WriteOptions options;
  options.indent = 2;
  return json::write_file(metrics_document(), path, options);
}

util::Status validate_metrics_json(const json::Value& doc) {
  if (!doc.is_object()) {
    return util::Error{"metrics: document is not an object"};
  }
  if (doc.at("schema_version").as_int(-1) != 1) {
    return util::Error{"metrics: schema_version missing or unsupported"};
  }
  if (doc.at("kind").as_string() != "metrics") {
    return util::Error{"metrics: kind must be 'metrics'"};
  }
  const json::Value& metrics = doc.at("metrics");
  for (const char* section : {"counters", "gauges", "histograms"}) {
    if (!metrics.at(section).is_object()) {
      return util::Error{std::string("metrics: missing section ") + section};
    }
  }
  for (const auto& [name, histogram] : metrics.at("histograms").as_object()) {
    const std::size_t bounds = histogram.at("bounds").as_array().size();
    const std::size_t counts = histogram.at("counts").as_array().size();
    if (counts != bounds + 1) {
      return util::Error{"metrics: histogram '" + name +
                         "' counts must have bounds+1 entries"};
    }
  }
  return util::Status::ok();
}

}  // namespace gts::obs
