#include "obs/window.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace gts::obs {

namespace detail {
std::atomic<bool> windows_on{false};
std::atomic<std::int64_t> window_clock_us{-1};
}  // namespace detail

namespace {

/// fetch_add / running-extrema for atomic<double> via CAS (portable to
/// pre-C++20 ABIs), mirroring metrics.cpp.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (value < expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double expected = target.load(std::memory_order_relaxed);
  while (value > expected && !target.compare_exchange_weak(
                                 expected, value, std::memory_order_relaxed)) {
  }
}

constexpr WindowSpec kSpans[] = {
    {10.0, 10, "10s"},
    {60.0, 12, "1m"},
    {300.0, 15, "5m"},
};

}  // namespace

std::span<const WindowSpec> window_spans() { return kSpans; }

std::int64_t window_now_us() noexcept {
  const std::int64_t manual =
      detail::window_clock_us.load(std::memory_order_relaxed);
  return manual >= 0 ? manual : wall_now_us();
}

void set_window_clock_us(std::int64_t now_us) noexcept {
  detail::window_clock_us.store(now_us, std::memory_order_relaxed);
}

WindowedStats::WindowedStats(std::span<const double> bounds)
    : bounds_((bounds.empty() ? latency_bounds_us() : bounds).begin(),
              (bounds.empty() ? latency_bounds_us() : bounds).end()) {
  windows_.reserve(std::size(kSpans));
  for (const WindowSpec& spec : kSpans) {
    Window window;
    window.spec = spec;
    window.epoch_us = static_cast<std::int64_t>(spec.span_s * 1e6) /
                      static_cast<std::int64_t>(spec.slots);
    window.slots = std::vector<Slot>(static_cast<std::size_t>(spec.slots));
    for (Slot& slot : window.slots) {
      slot.counts = std::vector<std::atomic<long long>>(bounds_.size() + 1);
    }
    windows_.push_back(std::move(window));
  }
}

void WindowedStats::record_into(Window& window, std::int64_t now_us,
                                double value) noexcept {
  const std::int64_t epoch = now_us / window.epoch_us;
  Slot& slot = window.slots[static_cast<std::size_t>(
      epoch % static_cast<std::int64_t>(window.slots.size()))];
  std::int64_t current = slot.epoch.load(std::memory_order_relaxed);
  if (current != epoch) {
    // Reclaim: first recorder of the new epoch zeroes the slot. A sample
    // racing the reclaim may be dropped or double-counted into the fresh
    // epoch — acceptable for telemetry, and every access stays atomic.
    if (slot.epoch.compare_exchange_strong(current, epoch,
                                           std::memory_order_relaxed)) {
      for (auto& count : slot.counts) {
        count.store(0, std::memory_order_relaxed);
      }
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.min.store(value, std::memory_order_relaxed);
      slot.max.store(value, std::memory_order_relaxed);
    }
  }
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  slot.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(slot.sum, value);
  atomic_min(slot.min, value);
  atomic_max(slot.max, value);
}

void WindowedStats::record(double value) noexcept {
  const std::int64_t now_us = window_now_us();
  for (Window& window : windows_) {
    record_into(window, now_us, value);
  }
}

std::vector<WindowedStats::SpanSnapshot> WindowedStats::snapshot() const {
  const std::int64_t now_us = window_now_us();
  std::vector<SpanSnapshot> spans;
  spans.reserve(windows_.size());
  for (const Window& window : windows_) {
    const std::int64_t epoch = now_us / window.epoch_us;
    const auto live_slots = static_cast<std::int64_t>(window.slots.size());
    SpanSnapshot span;
    span.label = window.spec.label;
    span.span_s = window.spec.span_s;
    span.histogram = HistogramData(bounds_);
    for (const Slot& slot : window.slots) {
      const std::int64_t slot_epoch =
          slot.epoch.load(std::memory_order_relaxed);
      // Live = the current (partial) epoch and the slots-1 before it.
      if (slot_epoch < 0 || slot_epoch > epoch ||
          slot_epoch <= epoch - live_slots) {
        continue;  // empty or expired
      }
      const long long slot_count = slot.count.load(std::memory_order_relaxed);
      if (slot_count <= 0) continue;
      for (std::size_t i = 0; i < slot.counts.size(); ++i) {
        span.histogram.counts_[i] +=
            slot.counts[i].load(std::memory_order_relaxed);
      }
      const double slot_min = slot.min.load(std::memory_order_relaxed);
      const double slot_max = slot.max.load(std::memory_order_relaxed);
      if (span.histogram.count_ == 0) {
        span.histogram.min_ = slot_min;
        span.histogram.max_ = slot_max;
      } else {
        span.histogram.min_ = std::min(span.histogram.min_, slot_min);
        span.histogram.max_ = std::max(span.histogram.max_, slot_max);
      }
      span.histogram.count_ += slot_count;
      span.histogram.sum_ += slot.sum.load(std::memory_order_relaxed);
    }
    span.count = span.histogram.count();
    span.rate_per_s =
        static_cast<double>(span.count) / window.spec.span_s;
    spans.push_back(std::move(span));
  }
  return spans;
}

void WindowedStats::reset() noexcept {
  for (Window& window : windows_) {
    for (Slot& slot : window.slots) {
      slot.epoch.store(-1, std::memory_order_relaxed);
      for (auto& count : slot.counts) {
        count.store(0, std::memory_order_relaxed);
      }
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.min.store(0.0, std::memory_order_relaxed);
      slot.max.store(0.0, std::memory_order_relaxed);
    }
  }
}

WindowRegistry& WindowRegistry::instance() {
  static WindowRegistry* registry = new WindowRegistry();
  return *registry;
}

WindowedStats& WindowRegistry::stats(const std::string& name,
                                     std::span<const double> bounds) {
  util::MutexLock lock(mutex_);
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    it = stats_.emplace(name, std::make_unique<WindowedStats>(bounds)).first;
  }
  return *it->second;
}

void WindowRegistry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, stats] : stats_) stats->reset();
}

std::size_t WindowRegistry::instrument_count() const {
  util::MutexLock lock(mutex_);
  return stats_.size();
}

json::Value WindowRegistry::snapshot_json() const {
  util::MutexLock lock(mutex_);
  json::Value windows;
  for (const auto& [name, stats] : stats_) {
    json::Array spans;
    for (const WindowedStats::SpanSnapshot& span : stats->snapshot()) {
      json::Value entry;
      entry.set("span", span.label);
      entry.set("span_s", span.span_s);
      entry.set("count", span.count);
      entry.set("rate_per_s", span.rate_per_s);
      entry.set("mean", span.histogram.mean());
      entry.set("min", span.histogram.min());
      entry.set("max", span.histogram.max());
      entry.set("p50", span.histogram.percentile(0.50));
      entry.set("p95", span.histogram.percentile(0.95));
      entry.set("p99", span.histogram.percentile(0.99));
      spans.push_back(std::move(entry));
    }
    windows.set(name, std::move(spans));
  }
  json::Value document;
  document.set("windows", std::move(windows));
  return document;
}

}  // namespace gts::obs
