#include "obs/explain.hpp"

#include <cstdio>
#include <fstream>

#include "obs/obs.hpp"

namespace gts::obs {

namespace {

thread_local DecisionScope* g_current_scope = nullptr;

json::Value gpus_to_json(const std::vector<int>& gpus) {
  json::Array out;
  for (const int gpu : gpus) out.push_back(gpu);
  return out;
}

}  // namespace

json::Value UtilityTerms::to_json() const {
  json::Object o;
  o["utility"] = utility;
  o["has_breakdown"] = has_breakdown;
  if (has_breakdown) {
    o["comm_cost"] = comm_cost;
    o["comm_utility"] = comm_utility;
    o["interference"] = interference;
    o["frag_omega"] = frag_omega;
    o["frag_utility"] = frag_utility;
    o["comm_weight"] = comm_weight;
  }
  return o;
}

json::Value DecisionRecord::to_json() const {
  json::Object o;
  o["sequence"] = sequence;
  o["sim_time"] = sim_time;
  o["policy"] = policy;
  o["job_id"] = job_id;
  o["num_gpus"] = num_gpus;
  o["min_utility"] = min_utility;
  o["outcome"] = outcome;
  o["gpus"] = gpus_to_json(gpus);
  o["chosen"] = chosen.to_json();
  o["satisfied"] = satisfied;
  o["decision_us"] = decision_us;
  json::Array cands;
  for (const ExplainCandidate& candidate : candidates) {
    json::Object c;
    c["gpus"] = gpus_to_json(candidate.gpus);
    c["terms"] = candidate.terms.to_json();
    c["source"] = candidate.source;
    cands.push_back(std::move(c));
  }
  o["candidates"] = std::move(cands);
  return o;
}

ExplainLog& ExplainLog::instance() {
  static ExplainLog* log = new ExplainLog();
  return *log;
}

util::Status ExplainLog::open(const std::string& path) {
  util::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::Error{"explain: cannot open '" + path + "' for writing"};
  }
  file_ = file;
  sequence_ = 0;
  return util::Status::ok();
}

bool ExplainLog::is_open() const {
  util::MutexLock lock(mutex_);
  return file_ != nullptr;
}

void ExplainLog::append(DecisionRecord record) {
  util::MutexLock lock(mutex_);
  if (file_ == nullptr) return;
  record.sequence = sequence_++;
  json::WriteOptions options;
  options.indent = 0;
  const std::string line = json::write(record.to_json(), options);
  std::fputs(line.c_str(), static_cast<std::FILE*>(file_));
  std::fputc('\n', static_cast<std::FILE*>(file_));
}

void ExplainLog::close() {
  util::MutexLock lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(static_cast<std::FILE*>(file_));
    file_ = nullptr;
  }
}

long long ExplainLog::records_written() const {
  util::MutexLock lock(mutex_);
  return sequence_;
}

DecisionScope::DecisionScope(std::string policy, int job_id, int num_gpus,
                             double min_utility, double sim_time) {
  record_.policy = std::move(policy);
  record_.job_id = job_id;
  record_.num_gpus = num_gpus;
  record_.min_utility = min_utility;
  record_.sim_time = sim_time;
  previous_ = g_current_scope;
  g_current_scope = this;
}

DecisionScope::~DecisionScope() { g_current_scope = previous_; }

DecisionScope* DecisionScope::current() noexcept {
  if (!explain_enabled()) return nullptr;
  return g_current_scope;
}

void DecisionScope::add_candidate(ExplainCandidate candidate) {
  record_.candidates.push_back(std::move(candidate));
}

void DecisionScope::commit() {
  if (committed_) return;
  committed_ = true;
  ExplainLog::instance().append(record_);
}

util::Expected<std::vector<json::Value>> read_explain_jsonl(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Error{"explain: cannot open '" + path + "'"};
  }
  std::vector<json::Value> records;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto parsed = json::parse(line);
    if (!parsed) {
      return parsed.error().with_context("explain: " + path + ":" +
                                         std::to_string(line_no));
    }
    records.push_back(std::move(*parsed));
  }
  return records;
}

}  // namespace gts::obs
