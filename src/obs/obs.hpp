// Observability core: the process-wide on/off state shared by the three
// pillars (tracing, metrics, decision explain) and their configuration
// plumbing (CLI flags, sys-config.ini [obs], finalize-to-files).
//
// Design contract (DESIGN.md §13): every instrumentation site must be
// provably zero-cost when its pillar is disabled — a compile-time category
// filter (GTS_OBS_CATEGORIES) removes excluded categories entirely, and an
// enabled site costs exactly one relaxed atomic load + branch. Recording
// never influences scheduling decisions: the seeded-trace determinism
// regression in tests/obs_test.cpp enforces this.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace gts::util {
class CliParser;
}  // namespace gts::util

namespace gts::obs {

/// Trace/metric categories, a bitmask. Category names double as the
/// "cat" field of exported trace events.
enum Category : unsigned {
  kSched = 1u << 0,    // scheduler passes & decisions
  kSim = 1u << 1,      // discrete-event engine dispatch
  kDrb = 1u << 2,      // DRB mapper recursion
  kFm = 1u << 3,       // Fiduccia-Mattheyses refinement
  kCache = 1u << 4,    // placement-evaluation cache
  kRunner = 1u << 5,   // sweep replica lifecycle
  kCluster = 1u << 6,  // cluster state transitions
  kBench = 1u << 7,    // bench/example harness phases
  kLog = 1u << 8,      // GTS_LOG_* lines mirrored as instants
  kSvc = 1u << 9,      // scheduler service requests & sessions
  kAllCategories = 0xffffffffu,
};

/// Compile-time category filter: categories outside this mask cost nothing
/// at runtime (the enabled() check folds to `false`). Override with
/// -DGTS_OBS_CATEGORIES=<mask> to strip categories from a build.
#ifndef GTS_OBS_CATEGORIES
#define GTS_OBS_CATEGORIES ::gts::obs::kAllCategories
#endif
inline constexpr unsigned kCompiledCategories = GTS_OBS_CATEGORIES;

/// Short lowercase tag for one category bit ("sched", "drb", ...).
std::string_view category_name(Category category) noexcept;

/// Parses a comma-separated category list ("sched,drb,fm"); empty or
/// "all" selects every category.
util::Expected<unsigned> parse_categories(const std::string& spec);

/// Inverse of parse_categories: "all" for the full mask, else the
/// comma-separated names of the selected categories.
std::string categories_to_string(unsigned mask);

struct ObsConfig {
  bool tracing = false;
  bool metrics = false;
  bool explain = false;
  /// Runtime category mask for tracing (intersected with the compiled
  /// mask); metrics and explain are not category-filtered.
  unsigned categories = kAllCategories;
  /// Output paths consumed by finalize(); empty = do not write. A
  /// non-empty path implies enabling the corresponding pillar.
  std::string trace_out;
  std::string metrics_out;
  std::string explain_out;

  // --- live telemetry (DESIGN.md section 18) -------------------------------
  /// Sliding-window aggregates (obs/window.hpp). Independent of the
  /// cumulative metrics pillar: GTS_METRIC_WINDOW sites check only this.
  bool windows = false;
  /// Crash-safe flight recorder (obs/flight.hpp) and its ring capacity.
  bool flight = false;
  std::size_t flight_capacity = 4096;
  /// Prometheus text-format exposition written by finalize(); non-empty
  /// implies metrics.
  std::string prom_out;
  /// Flight-recorder JSONL dump written by finalize() and on GTS_CHECK
  /// failure; non-empty implies flight.
  std::string flight_out;
};

/// Installs `config` process-wide: flips the pillar switches and opens the
/// explain sink when configured. Never clears already-buffered data.
util::Status configure(const ObsConfig& config);

/// The currently installed configuration.
ObsConfig config();

/// Writes trace_out/metrics_out (when configured), closes the explain
/// sink, and returns the list of files written. Leaves the pillars
/// enabled; call reset() for a clean slate.
util::Expected<std::vector<std::string>> finalize();

/// Test hook: disables all pillars, drops buffered trace events, zeroes
/// the metrics registry, and closes the explain sink.
void reset();

namespace detail {
extern std::atomic<unsigned> trace_mask;  // 0 while tracing is disabled
extern std::atomic<bool> metrics_on;
extern std::atomic<bool> explain_on;
}  // namespace detail

/// The single-branch hot-path checks.
inline bool tracing_enabled(Category category) noexcept {
  if ((kCompiledCategories & static_cast<unsigned>(category)) == 0u) {
    return false;  // compile-time filtered
  }
  return (detail::trace_mask.load(std::memory_order_relaxed) &
          static_cast<unsigned>(category)) != 0u;
}
inline bool metrics_enabled() noexcept {
  return detail::metrics_on.load(std::memory_order_relaxed);
}
inline bool explain_enabled() noexcept {
  return detail::explain_on.load(std::memory_order_relaxed);
}

/// Declares the shared observability flags on a bench/example CLI:
/// --trace-out, --metrics-out, --explain-out, --obs-categories.
void add_cli_flags(util::CliParser& cli);

/// Applies the add_cli_flags() options: any non-empty output path enables
/// its pillar. Leaves obs untouched when no flag was given.
util::Status configure_from_cli(const util::CliParser& cli);

}  // namespace gts::obs
