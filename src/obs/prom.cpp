#include "obs/prom.hpp"

#include <cctype>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace gts::obs {

namespace {

std::string format_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string format_count(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  return buffer;
}

/// The le= label of one inclusive upper bound: integral bounds render
/// without a fraction ("100"), the overflow bucket renders "+Inf".
std::string le_label(double bound) { return format_number(bound); }

void append_help_type(std::string& out, const std::string& name,
                      const std::string& help, const char* type) {
  out += "# HELP " + name + " " + help + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

void append_histogram(std::string& out, const std::string& raw_name,
                      const json::Value& histogram) {
  const std::string name = prometheus_name(raw_name);
  append_help_type(out, name, "histogram of " + raw_name, "histogram");
  const auto& bounds = histogram.at("bounds").as_array();
  const auto& counts = histogram.at("counts").as_array();
  long long cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i].as_int();
    const std::string le =
        i < bounds.size() ? le_label(bounds[i].as_number()) : "+Inf";
    out += name + "_bucket{le=\"" + le + "\"} " + format_count(cumulative) +
           "\n";
  }
  out += name + "_sum " + format_number(histogram.at("sum").as_number()) +
         "\n";
  out += name + "_count " +
         format_count(histogram.at("count").as_int()) + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string sanitized = "gts_";
  sanitized.reserve(name.size() + 4);
  for (const char c : name) {
    const bool valid = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    sanitized.push_back(valid ? c : '_');
  }
  return sanitized;
}

void append_prometheus_gauge(std::string& out, const std::string& name,
                             const std::string& help, double value) {
  const std::string sanitized = prometheus_name(name);
  append_help_type(out, sanitized, help, "gauge");
  out += sanitized + " " + format_number(value) + "\n";
}

void append_prometheus_gauge_labeled(std::string& out,
                                     const std::string& name,
                                     const std::string& help,
                                     const std::string& labels,
                                     double value) {
  const std::string sanitized = prometheus_name(name);
  append_help_type(out, sanitized, help, "gauge");
  out += sanitized + "{" + labels + "} " + format_number(value) + "\n";
}

std::string prometheus_text() {
  std::string out;
  const json::Value registry = Registry::instance().snapshot_json();
  for (const auto& [name, value] : registry.at("counters").as_object()) {
    const std::string sanitized = prometheus_name(name);
    append_help_type(out, sanitized, "counter " + name, "counter");
    out += sanitized + " " + format_count(value.as_int()) + "\n";
  }
  for (const auto& [name, value] : registry.at("gauges").as_object()) {
    const std::string sanitized = prometheus_name(name);
    append_help_type(out, sanitized, "gauge " + name, "gauge");
    out += sanitized + " " + format_number(value.as_number()) + "\n";
  }
  for (const auto& [name, histogram] :
       registry.at("histograms").as_object()) {
    append_histogram(out, name, histogram);
  }

  const json::Value windows = WindowRegistry::instance().snapshot_json();
  const auto& instruments = windows.at("windows").as_object();
  if (!instruments.empty()) {
    append_help_type(out, "gts_window",
                     "windowed statistic (stat over the trailing span)",
                     "gauge");
    append_help_type(out, "gts_window_rate",
                     "windowed sample rate over the trailing span (1/s)",
                     "gauge");
    for (const auto& [name, spans] : instruments) {
      for (const json::Value& span : spans.as_array()) {
        const std::string labels = "metric=\"" + name + "\",span=\"" +
                                   span.at("span").as_string() + "\"";
        for (const char* stat : {"mean", "min", "max", "p50", "p95", "p99"}) {
          out += "gts_window{" + labels + ",stat=\"" + stat + "\"} " +
                 format_number(span.at(stat).as_number()) + "\n";
        }
        out += "gts_window{" + labels + ",stat=\"count\"} " +
               format_count(span.at("count").as_int()) + "\n";
        out += "gts_window_rate{" + labels + "} " +
               format_number(span.at("rate_per_s").as_number()) + "\n";
      }
    }
  }
  return out;
}

}  // namespace gts::obs
