// Discrete-event simulation engine.
//
// A deterministic event queue: events fire in (time, insertion-sequence)
// order, so two events at the same timestamp execute in the order they
// were scheduled. Handlers may schedule and cancel further events. The
// trace-driven simulation (Section 5.3) and the prototype runtime both run
// on this engine; the "prototype" simply executes a single-machine
// scenario in simulated time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace gts::sim {

using Time = double;

/// Identifies a scheduled event; valid until the event fires or is
/// cancelled.
using EventHandle = std::uint64_t;
inline constexpr EventHandle kInvalidEvent = 0;

class Engine {
 public:
  Time now() const noexcept { return now_; }

  /// Schedules `handler` at absolute time `when` (>= now). Returns a handle
  /// usable with cancel().
  EventHandle schedule_at(Time when, std::function<void()> handler);

  /// Schedules `handler` `delay` seconds from now.
  EventHandle schedule_in(Time delay, std::function<void()> handler) {
    return schedule_at(now_ + delay, std::move(handler));
  }

  /// Cancels a pending event; no-op if it already fired or was cancelled.
  void cancel(EventHandle handle);

  /// True if any non-cancelled event is pending.
  bool has_pending() const;

  /// Fires the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `limit` events fired. Returns the
  /// number of events fired.
  std::uint64_t run(std::uint64_t limit = ~0ULL);

  /// Runs until simulated time reaches `until` (events beyond stay queued)
  /// or the queue drains.
  void run_until(Time until);

  /// Moves the clock to `t` (>= now) without firing anything. Restore
  /// seam for the svc snapshot path: a freshly built engine is
  /// fast-forwarded to the snapshot's simulated time before the restored
  /// events are scheduled. Requires an empty event queue.
  void fast_forward(Time t);

  std::uint64_t events_fired() const noexcept { return fired_; }

  /// Installs a hook invoked after every fired event, once its handler has
  /// returned — the seam the Driver's self-audit uses to validate cluster
  /// state at each event boundary. Pass nullptr to clear.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t sequence;
    EventHandle handle;
    // Ordered as a min-heap via operator> below.
    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return sequence > other.sequence;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  std::unordered_set<EventHandle> cancelled_;
  // Handlers stored separately so cancel() can drop them promptly.
  std::unordered_map<EventHandle, std::function<void()>> handlers_;
  std::function<void()> post_event_hook_;
};

}  // namespace gts::sim
