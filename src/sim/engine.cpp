#include "sim/engine.hpp"

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gts::sim {

EventHandle Engine::schedule_at(Time when, std::function<void()> handler) {
  GTS_DCHECK(when >= now_ - 1e-9, "cannot schedule in the past: when=", when,
             " now=", now_);
  if (when < now_) when = now_;
  const EventHandle handle = next_sequence_;
  queue_.push({when, next_sequence_, handle});
  handlers_.emplace(handle, std::move(handler));
  ++next_sequence_;
  return handle;
}

void Engine::cancel(EventHandle handle) {
  if (handlers_.erase(handle) > 0) {
    cancelled_.insert(handle);
  }
}

bool Engine::has_pending() const { return !handlers_.empty(); }

bool Engine::step() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (cancelled_.erase(entry.handle) > 0) continue;  // skip cancelled
    const auto it = handlers_.find(entry.handle);
    if (it == handlers_.end()) continue;
    std::function<void()> handler = std::move(it->second);
    handlers_.erase(it);
    now_ = entry.when;
    ++fired_;
    {
      GTS_TRACE_SPAN(obs::kSim, "sim.event");
      GTS_METRIC_COUNT("sim.events", 1);
      handler();
    }
    if (post_event_hook_) post_event_hook_();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t limit) {
  // Spans recorded while the engine runs carry the simulated time too.
  obs::SimClockScope sim_clock(&now_);
  std::uint64_t count = 0;
  while (count < limit && step()) ++count;
  return count;
}

void Engine::fast_forward(Time t) {
  GTS_CHECK(handlers_.empty(),
            "fast_forward with pending events: ", handlers_.size());
  GTS_CHECK(t >= now_ - 1e-9, "fast_forward into the past: t=", t,
            " now=", now_);
  if (t > now_) now_ = t;
}

void Engine::run_until(Time until) {
  obs::SimClockScope sim_clock(&now_);
  while (!queue_.empty()) {
    // Peek past cancelled entries.
    Entry entry = queue_.top();
    while (cancelled_.count(entry.handle) > 0 ||
           handlers_.count(entry.handle) == 0) {
      cancelled_.erase(entry.handle);
      queue_.pop();
      if (queue_.empty()) {
        now_ = until;
        return;
      }
      entry = queue_.top();
    }
    if (entry.when > until) break;
    step();
  }
  now_ = until;
}

}  // namespace gts::sim
