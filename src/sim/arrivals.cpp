#include "sim/arrivals.hpp"

namespace gts::sim {

std::vector<double> poisson_arrivals(int count, double per_minute,
                                     util::Rng& rng, double start_time) {
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<size_t>(count));
  const double rate_per_second = per_minute / 60.0;
  double t = start_time;
  for (int i = 0; i < count; ++i) {
    t += rng.exponential(rate_per_second);
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace gts::sim
