// Arrival processes for workload generation.
//
// The paper's experiments draw job arrivals from a Poisson process with
// rate lambda = 10 jobs per minute (Sections 5.2.1 and 5.3).
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace gts::sim {

/// Generates `count` arrival timestamps (seconds) of a Poisson process
/// with `per_minute` expected arrivals per minute, starting after
/// `start_time`.
std::vector<double> poisson_arrivals(int count, double per_minute,
                                     util::Rng& rng, double start_time = 0.0);

}  // namespace gts::sim
