// Prototype runtime (Sections 5.1 / 5.2 and the paper's appendix).
//
// Reproduces the prototype's workflow end to end:
//   1. load job manifests (JSON files, Section 5.1),
//   2. discover the topology (builders or nvidia-smi-style text fixtures),
//   3. run the chosen scheduling algorithm against the machine,
//   4. enforce each decision (CUDA_VISIBLE_DEVICES / numactl recipe),
//   5. track executions and collect statistics.
// The single difference from the paper is that "running a Caffe instance"
// is the calibrated performance model instead of a physical Power8.
#pragma once

#include <string>
#include <vector>

#include "proto/enforcement.hpp"
#include "sched/driver.hpp"
#include "sched/scheduler.hpp"

namespace gts::proto {

struct PrototypeConfig {
  sched::Policy policy = sched::Policy::kTopoAwareP;
  sched::UtilityWeights weights{};
  /// Appendix A.3: the system runs in simulation mode or as the real
  /// prototype; here the "real" mode only changes reporting (the execution
  /// substrate is always the model).
  bool simulation = true;
  /// Check-subsystem self-audit after every event (DriverOptions::self_audit).
  bool self_audit = false;
};

struct PrototypeRun {
  sched::DriverReport report;
  /// Enforcement recipe per placed job (job id order of placement events).
  std::vector<std::pair<int, EnforcementPlan>> enforcements;
  std::string policy_name;
};

class PrototypeRuntime {
 public:
  PrototypeRuntime(const topo::TopologyGraph& topology,
                   const perf::DlWorkloadModel& model)
      : topology_(topology), model_(model) {}

  /// Runs a workload under one policy.
  PrototypeRun run(const PrototypeConfig& config,
                   std::vector<jobgraph::JobRequest> jobs) const;

  /// Loads a manifest file and runs it (the prototype's main loop input).
  util::Expected<PrototypeRun> run_manifest(const PrototypeConfig& config,
                                            const std::string& path) const;

 private:
  const topo::TopologyGraph& topology_;
  const perf::DlWorkloadModel& model_;
};

}  // namespace gts::proto
