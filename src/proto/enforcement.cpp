#include "proto/enforcement.hpp"

#include <set>
#include <sstream>

namespace gts::proto {

EnforcementPlan make_enforcement_plan(const topo::TopologyGraph& topology,
                                      const std::vector<int>& gpus) {
  EnforcementPlan plan;
  plan.environment.push_back("CUDA_DEVICE_ORDER=PCI_BUS_ID");

  std::ostringstream visible;
  std::set<int> sockets;
  bool single_machine = true;
  int machine = -1;
  for (size_t i = 0; i < gpus.size(); ++i) {
    if (i > 0) visible << ",";
    visible << topology.node(topology.gpu_node(gpus[i])).local_gpu;
    sockets.insert(topology.socket_of_gpu(gpus[i]));
    const int m = topology.machine_of_gpu(gpus[i]);
    if (machine >= 0 && m != machine) single_machine = false;
    machine = m;
  }
  plan.environment.push_back("CUDA_VISIBLE_DEVICES=" + visible.str());

  // "applications with only GPUs in the same socket are bound to the
  // socket using numactl" (Section 5.1).
  if (single_machine && sockets.size() == 1) {
    const int socket = *sockets.begin();
    std::ostringstream cmd;
    cmd << "numactl --cpunodebind=" << socket << " --membind=" << socket;
    plan.command_prefix = cmd.str();
  }
  return plan;
}

}  // namespace gts::proto
