#include "proto/runtime.hpp"

#include "jobgraph/manifest.hpp"
#include "perf/profile.hpp"

namespace gts::proto {

PrototypeRun PrototypeRuntime::run(const PrototypeConfig& config,
                                   std::vector<jobgraph::JobRequest> jobs) const {
  // Ensure profiles exist (manifest-loaded jobs arrive unprofiled).
  for (jobgraph::JobRequest& job : jobs) {
    if (job.profile.solo_time_pack <= 0.0) {
      perf::fill_profile(job, model_, topology_);
    }
  }

  const std::unique_ptr<sched::Scheduler> scheduler =
      sched::make_scheduler(config.policy, config.weights);

  sched::DriverOptions options;
  options.utility_weights = config.weights;
  options.self_audit = config.self_audit;
  sched::Driver driver(topology_, model_, *scheduler, options);

  PrototypeRun run;
  run.policy_name = scheduler->name();
  run.report = driver.run(jobs);
  for (const cluster::JobRecord& record : run.report.recorder.records()) {
    if (record.placed()) {
      run.enforcements.emplace_back(
          record.id, make_enforcement_plan(topology_, record.gpus));
    }
  }
  return run;
}

util::Expected<PrototypeRun> PrototypeRuntime::run_manifest(
    const PrototypeConfig& config, const std::string& path) const {
  auto jobs = jobgraph::load_manifest_file(path);
  if (!jobs) return jobs.error();
  return run(config, std::move(*jobs));
}

}  // namespace gts::proto
