// Placement enforcement (Section 5.1).
//
// The paper's prototype enforces decisions by exporting
// CUDA_DEVICE_ORDER=PCI_BUS_ID, exposing only the allocated GPUs through
// CUDA_VISIBLE_DEVICES, and binding single-socket jobs with numactl to
// avoid remote NUMA accesses. We generate exactly that launch recipe for
// every placement — on a real machine the strings below are the command
// environment; in the simulation they are recorded for inspection.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace gts::proto {

struct EnforcementPlan {
  /// Environment assignments, e.g. "CUDA_DEVICE_ORDER=PCI_BUS_ID".
  std::vector<std::string> environment;
  /// Command prefix, e.g. "numactl --cpunodebind=0 --membind=0".
  std::string command_prefix;
};

/// Builds the launch recipe for a job placed on `gpus` (machine-local GPU
/// indices are used for CUDA_VISIBLE_DEVICES, as the prototype does).
EnforcementPlan make_enforcement_plan(const topo::TopologyGraph& topology,
                                      const std::vector<int>& gpus);

}  // namespace gts::proto
