// Kubernetes scheduler-framework shim (the paper's Section 7 future work:
// "we plan to ... test the implementation of our algorithm in popular
// resource management systems such as Kubernetes and Mesos").
//
// Models the K8s scheduling-framework contract a device-aware plugin
// implements: pods request "nvidia.com/gpu" extended resources and carry
// the job profile as annotations; the plugin exposes the Filter phase
// (node feasibility), the Score phase (0..100 per node), and Bind (GPU
// device selection on the chosen node). Filter/Score map onto Algorithm
// 1's host filtering and the placement utility; Bind runs the DRB mapper
// inside the node and emits the CUDA_VISIBLE_DEVICES binding the paper's
// prototype enforces.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/state.hpp"
#include "sched/topo_aware.hpp"
#include "util/expected.hpp"

namespace gts::k8s {

/// The subset of a pod spec a GPU-topology plugin consumes.
struct GpuPodSpec {
  std::string name;
  /// requests["nvidia.com/gpu"] — the extended-resource GPU count.
  int gpu_request = 1;
  /// Annotations, using the "gts.io/" prefix:
  ///   gts.io/nn            AlexNet | CaffeRef | GoogLeNet
  ///   gts.io/batch-size    per-GPU batch size (int)
  ///   gts.io/min-utility   SLO threshold in [0,1]
  ///   gts.io/iterations    training iterations (int)
  ///   gts.io/multi-node    "true" to drop the single-node constraint
  ///   gts.io/anti-affinity "true" for one task per node
  std::map<std::string, std::string> annotations;
};

/// Result of the Bind phase: node plus the device plugin's allocation.
struct Binding {
  int node = -1;                       // machine index
  std::vector<int> device_ids;         // machine-local GPU indices
  std::vector<int> global_gpu_ids;     // library-level GPU indices
  std::vector<std::string> environment;  // CUDA_* launch recipe
  double score = 0.0;                  // the winning node's score
};

class KubeTopologyScheduler {
 public:
  KubeTopologyScheduler(const topo::TopologyGraph& topology,
                        const perf::DlWorkloadModel& model,
                        sched::UtilityWeights weights = {})
      : topology_(topology), model_(model), weights_(weights) {}

  /// Translates a pod spec into the library's job request (profiles
  /// filled). Fails on malformed annotations.
  util::Expected<jobgraph::JobRequest> pod_to_job(const GpuPodSpec& pod,
                                                  int job_id) const;

  /// Filter phase: can `node` host the pod right now (GPU count, host
  /// bandwidth, constraints)?
  bool filter(const jobgraph::JobRequest& job,
              const cluster::ClusterState& state, int node) const;

  /// Score phase: 0..100 — scaled placement utility of the best DRB
  /// mapping inside `node`; 0 when Filter fails.
  int score(const jobgraph::JobRequest& job,
            const cluster::ClusterState& state, int node) const;

  /// Bind phase: pick the highest-scoring feasible node (ties to the
  /// lowest node id, as kube-scheduler does), map GPUs inside it, and
  /// return the device allocation. nullopt when no node is feasible or —
  /// mirroring TOPO-AWARE-P — the achievable utility is below the pod's
  /// min-utility annotation.
  std::optional<Binding> bind(const jobgraph::JobRequest& job,
                              const cluster::ClusterState& state) const;

 private:
  /// Best placement within one node via the DRB mapper.
  std::optional<sched::Placement> place_in_node(
      const jobgraph::JobRequest& job, const cluster::ClusterState& state,
      int node) const;

  const topo::TopologyGraph& topology_;
  const perf::DlWorkloadModel& model_;
  sched::UtilityWeights weights_;
};

}  // namespace gts::k8s
