#include "k8s/shim.hpp"

#include <algorithm>
#include <cmath>

#include "perf/profile.hpp"
#include "proto/enforcement.hpp"
#include "util/strings.hpp"

namespace gts::k8s {

namespace {

std::string annotation_or(const GpuPodSpec& pod, const std::string& key,
                          const std::string& fallback) {
  const auto it = pod.annotations.find(key);
  return it == pod.annotations.end() ? fallback : it->second;
}

bool annotation_bool(const GpuPodSpec& pod, const std::string& key) {
  return util::to_lower(annotation_or(pod, key, "false")) == "true";
}

}  // namespace

util::Expected<jobgraph::JobRequest> KubeTopologyScheduler::pod_to_job(
    const GpuPodSpec& pod, int job_id) const {
  if (pod.gpu_request < 1) {
    return util::Error{
        util::fmt("pod {}: nvidia.com/gpu request must be >= 1", pod.name)};
  }
  const auto nn = jobgraph::neural_net_from_string(
      annotation_or(pod, "gts.io/nn", "AlexNet"));
  if (!nn) {
    return util::Error{util::fmt("pod {}: unknown gts.io/nn '{}'", pod.name,
                                 annotation_or(pod, "gts.io/nn", ""))};
  }
  const auto batch =
      util::parse_int(annotation_or(pod, "gts.io/batch-size", "1"));
  if (!batch || *batch < 1) {
    return util::Error{
        util::fmt("pod {}: bad gts.io/batch-size", pod.name)};
  }
  const auto min_utility =
      util::parse_double(annotation_or(pod, "gts.io/min-utility", "0"));
  if (!min_utility || *min_utility < 0.0 || *min_utility > 1.0) {
    return util::Error{
        util::fmt("pod {}: gts.io/min-utility must be in [0,1]", pod.name)};
  }
  const auto iterations =
      util::parse_int(annotation_or(pod, "gts.io/iterations", "4000"));
  if (!iterations || *iterations < 1) {
    return util::Error{util::fmt("pod {}: bad gts.io/iterations", pod.name)};
  }

  jobgraph::JobRequest job = perf::make_profiled_dl(
      job_id, /*arrival=*/0.0, *nn, static_cast<int>(*batch),
      pod.gpu_request, *min_utility, model_, topology_, *iterations);
  job.profile.single_node = !annotation_bool(pod, "gts.io/multi-node");
  job.profile.anti_collocate = annotation_bool(pod, "gts.io/anti-affinity");
  return job;
}

bool KubeTopologyScheduler::filter(const jobgraph::JobRequest& job,
                                   const cluster::ClusterState& state,
                                   int node) const {
  if (node < 0 || node >= topology_.machine_count()) return false;
  // Section 4.3 capacity constraints, per node.
  if (!state.host_bw_available(node, job.profile.host_bw_demand_gbps)) {
    return false;
  }
  const int free =
      static_cast<int>(state.free_gpus_of_machine(node).size());
  if (job.profile.anti_collocate) return free >= 1;
  return free >= job.num_gpus;
}

std::optional<sched::Placement> KubeTopologyScheduler::place_in_node(
    const jobgraph::JobRequest& job, const cluster::ClusterState& state,
    int node) const {
  // One utility-driven DRB mapping restricted to the node's free GPUs —
  // exactly what the TOPO-AWARE scheduler's scalable path evaluates per
  // candidate machine.
  const std::vector<int> free = state.free_gpus_of_machine(node);
  if (static_cast<int>(free.size()) < job.num_gpus) return std::nullopt;
  const sched::UtilityModel utility(weights_);
  return sched::drb_place(job, free, state, utility);
}

int KubeTopologyScheduler::score(const jobgraph::JobRequest& job,
                                 const cluster::ClusterState& state,
                                 int node) const {
  if (!filter(job, state, node)) return 0;
  const auto placement = place_in_node(job, state, node);
  if (!placement) return 0;
  return static_cast<int>(std::lround(placement->utility * 100.0));
}

std::optional<Binding> KubeTopologyScheduler::bind(
    const jobgraph::JobRequest& job,
    const cluster::ClusterState& state) const {
  int best_node = -1;
  std::optional<sched::Placement> best_placement;
  for (int node = 0; node < topology_.machine_count(); ++node) {
    if (!filter(job, state, node)) continue;
    auto placement = place_in_node(job, state, node);
    if (!placement) continue;
    if (!best_placement || placement->utility > best_placement->utility) {
      best_placement = std::move(placement);
      best_node = node;
    }
  }
  if (!best_placement) return std::nullopt;
  if (!best_placement->satisfied) {
    // TOPO-AWARE-P semantics: leave the pod Pending rather than bind a
    // below-SLO allocation.
    return std::nullopt;
  }

  Binding binding;
  binding.node = best_node;
  binding.global_gpu_ids = best_placement->gpus;
  binding.score =
      std::lround(best_placement->utility * 100.0);
  for (const int gpu : best_placement->gpus) {
    binding.device_ids.push_back(
        topology_.node(topology_.gpu_node(gpu)).local_gpu);
  }
  binding.environment =
      proto::make_enforcement_plan(topology_, best_placement->gpus)
          .environment;
  return binding;
}

}  // namespace gts::k8s
