#include "cluster/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace gts::cluster {

void Recorder::on_submit(const jobgraph::JobRequest& request) {
  JobRecord record;
  record.id = request.id;
  record.nn = request.profile.nn;
  record.batch = request.profile.batch;
  record.num_gpus = request.num_gpus;
  record.min_utility = request.min_utility;
  record.arrival = request.arrival_time;
  record.best_solo_time = request.profile.solo_time_pack;
  index_.emplace(record.id, records_.size());
  records_.push_back(std::move(record));
}

void Recorder::import_record(JobRecord record) {
  index_.emplace(record.id, records_.size());
  records_.push_back(std::move(record));
}

JobRecord* Recorder::find(int job_id) {
  const auto it = index_.find(job_id);
  return it == index_.end() ? nullptr : &records_[it->second];
}

const JobRecord* Recorder::find(int job_id) const {
  const auto it = index_.find(job_id);
  return it == index_.end() ? nullptr : &records_[it->second];
}

void Recorder::on_place(int job_id, double t, const std::vector<int>& gpus,
                        double utility, bool p2p) {
  if (JobRecord* record = find(job_id)) {
    record->start = t;
    record->gpus = gpus;
    record->placement_utility = utility;
    record->p2p = p2p;
    if (utility + 1e-9 < record->min_utility) ++record->degradation_events;
  }
}

void Recorder::on_postpone(int job_id) {
  if (JobRecord* record = find(job_id)) ++record->postponements;
}

void Recorder::on_finish(int job_id, double t) {
  if (JobRecord* record = find(job_id)) {
    record->end = t;
  }
}

void Recorder::on_cancel(int job_id, double t) {
  if (JobRecord* record = find(job_id)) {
    record->end = t;
    record->cancelled = true;
  }
}

void Recorder::sample(const ClusterState& state, double t) {
  double p2p_gbps = 0.0;
  double host_gbps = 0.0;
  double utility_sum = 0.0;
  int running = 0;
  for (const auto& [id, job] : state.running_jobs()) {
    const double bw = state.model().average_link_bandwidth(
        job.request, job.gpus, state.topology());
    (job.p2p ? p2p_gbps : host_gbps) += bw;
    utility_sum += job.placement_utility;
    ++running;
  }
  p2p_bw_.push_back({t, p2p_gbps});
  host_bw_.push_back({t, host_gbps});
  mean_utility_.push_back({t, running > 0 ? utility_sum / running : 0.0});
}

double Recorder::makespan() const {
  double makespan = 0.0;
  for (const JobRecord& record : records_) {
    if (record.finished()) makespan = std::max(makespan, record.end);
  }
  return makespan;
}

int Recorder::slo_violations() const {
  int violations = 0;
  for (const JobRecord& record : records_) {
    if (record.slo_violated()) ++violations;
  }
  return violations;
}

long long Recorder::total_postponements() const {
  long long total = 0;
  for (const JobRecord& record : records_) total += record.postponements;
  return total;
}

int Recorder::total_degradations() const {
  int total = 0;
  for (const JobRecord& record : records_) total += record.degradation_events;
  return total;
}

double Recorder::mean_jct_slowdown() const {
  double total = 0.0;
  int count = 0;
  for (const JobRecord& record : records_) {
    const double slowdown = record.jct_slowdown();
    if (slowdown >= 0.0) {
      total += slowdown;
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / count;
}

std::vector<double> Recorder::sorted_qos_slowdowns() const {
  std::vector<double> slowdowns;
  for (const JobRecord& record : records_) {
    if (record.finished()) slowdowns.push_back(record.qos_slowdown());
  }
  std::sort(slowdowns.rbegin(), slowdowns.rend());
  return slowdowns;
}

std::vector<double> Recorder::sorted_qos_wait_slowdowns() const {
  std::vector<double> slowdowns;
  for (const JobRecord& record : records_) {
    if (record.finished()) slowdowns.push_back(record.qos_wait_slowdown());
  }
  std::sort(slowdowns.rbegin(), slowdowns.rend());
  return slowdowns;
}

double Recorder::mean_waiting_time() const {
  double total = 0.0;
  int count = 0;
  for (const JobRecord& record : records_) {
    if (record.placed()) {
      total += record.waiting_time();
      ++count;
    }
  }
  return count == 0 ? 0.0 : total / count;
}

std::string Recorder::render_timeline(const topo::TopologyGraph& topology,
                                      double t_end, int columns) const {
  // One text row per GPU; cells show the job id occupying the GPU in that
  // time bucket ('.' = idle). Mirrors Fig. 8(a)-(d).
  std::ostringstream os;
  if (t_end <= 0.0) t_end = makespan();
  if (t_end <= 0.0) return "(empty timeline)\n";
  const double dt = t_end / columns;
  for (int gpu = 0; gpu < topology.gpu_count(); ++gpu) {
    os << "GPU" << gpu << " |";
    for (int c = 0; c < columns; ++c) {
      const double t = (c + 0.5) * dt;
      char cell = '.';
      for (const JobRecord& record : records_) {
        if (!record.placed()) continue;
        const double end = record.end >= 0.0 ? record.end : t_end;
        if (t >= record.start && t < end &&
            std::find(record.gpus.begin(), record.gpus.end(), gpu) !=
                record.gpus.end()) {
          cell = static_cast<char>('0' + record.id % 10);
          break;
        }
      }
      os << cell;
    }
    os << "|\n";
  }
  os << "      0s" << std::string(static_cast<size_t>(std::max(0, columns - 14)), ' ')
     << util::format_double(t_end, 1) << "s\n";
  return os.str();
}

}  // namespace gts::cluster
