// Metrics recorder: the simulated stand-in for the prototype's telemetry
// (nvprof, nvidia-smi nvlink counters, Perfmon2 DRAM counters).
//
// Records the per-job lifecycle (Fig. 8/9 timelines, QoS slowdowns,
// waiting times, SLO violations) and piecewise time series of aggregate
// P2P vs host-routed link bandwidth and of mean running-job utility.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/state.hpp"

namespace gts::cluster {

struct JobRecord {
  int id = 0;
  jobgraph::NeuralNet nn = jobgraph::NeuralNet::kAlexNet;
  jobgraph::BatchClass batch = jobgraph::BatchClass::kTiny;
  int num_gpus = 1;
  double min_utility = 0.0;
  double arrival = 0.0;
  double start = -1.0;  // placement time, -1 while queued
  double end = -1.0;    // completion / cancellation time, -1 while running
  /// Cancelled via the svc `cancel` verb (or Driver::cancel): the job was
  /// withdrawn while queued or running. Cancelled jobs carry no QoS
  /// slowdown and are excluded from makespan and the Fig. 10/11 curves.
  bool cancelled = false;
  std::vector<int> gpus;
  double placement_utility = 0.0;
  bool p2p = false;
  /// Ideal (best-placement, solo) completion time from the profile.
  double best_solo_time = 0.0;
  /// Scheduling passes that offered this job to the scheduler and were
  /// declined (Algorithm 1 re-offers after every capacity change).
  int postponements = 0;
  /// Placements enacted below the job's declared minimum utility (the
  /// job accepted a degraded mapping rather than keep waiting).
  int degradation_events = 0;

  bool placed() const noexcept { return start >= 0.0; }
  bool finished() const noexcept { return end >= 0.0 && !cancelled; }
  double waiting_time() const { return placed() ? start - arrival : -1.0; }
  double execution_time() const { return finished() ? end - start : -1.0; }

  /// Fractional slowdown vs the ideal run, placement effects only
  /// (Fig. 8e "JOB'S QOS").
  double qos_slowdown() const {
    if (!finished() || best_solo_time <= 0.0) return 0.0;
    return std::max(0.0, execution_time() / best_solo_time - 1.0);
  }
  /// Slowdown including scheduler queue time (Fig. 8f).
  double qos_wait_slowdown() const {
    if (!finished() || best_solo_time <= 0.0) return 0.0;
    return std::max(0.0, (end - arrival) / best_solo_time - 1.0);
  }
  /// SLO violated when the job was forced onto a placement below its
  /// declared minimum utility.
  bool slo_violated() const {
    return placed() && !cancelled && placement_utility + 1e-9 < min_utility;
  }
  /// Realized JCT (arrival to finish) over the ideal solo JCT; >= 1 for
  /// finished jobs, -1 while unknown. The live-telemetry SLO figure
  /// surfaced by the `status`/`list` verbs (DESIGN.md section 18.4).
  double jct_slowdown() const {
    if (!finished() || best_solo_time <= 0.0) return -1.0;
    return (end - arrival) / best_solo_time;
  }
};

struct SeriesPoint {
  double t = 0.0;
  double value = 0.0;
};

class Recorder {
 public:
  void on_submit(const jobgraph::JobRequest& request);
  void on_place(int job_id, double t, const std::vector<int>& gpus,
                double utility, bool p2p);
  /// Counts one declined scheduler offer for a still-queued job.
  void on_postpone(int job_id);
  void on_finish(int job_id, double t);
  /// Marks a queued or running job withdrawn at `t`.
  void on_cancel(int job_id, double t);

  /// Appends one sample of the aggregate bandwidth (P2P and host-routed,
  /// GB/s) and mean running-job utility series. Call at every state change.
  void sample(const ClusterState& state, double t);

  /// Appends one fully formed record (the sharded driver merges per-cell
  /// recorders into a facade report this way). The id must be unused.
  void import_record(JobRecord record);

  const std::vector<JobRecord>& records() const noexcept { return records_; }
  JobRecord* find(int job_id);
  const JobRecord* find(int job_id) const;

  const std::vector<SeriesPoint>& p2p_bandwidth() const noexcept {
    return p2p_bw_;
  }
  const std::vector<SeriesPoint>& host_bandwidth() const noexcept {
    return host_bw_;
  }
  const std::vector<SeriesPoint>& mean_utility() const noexcept {
    return mean_utility_;
  }

  // --- summary -------------------------------------------------------------
  /// Time the last job finished ("cumulative execution time", Section 5.2.2).
  double makespan() const;
  int slo_violations() const;
  /// Declined offers summed over all jobs (live-telemetry SLO summary).
  long long total_postponements() const;
  /// Below-minimum-utility placements summed over all jobs.
  int total_degradations() const;
  /// Mean jct_slowdown() over finished jobs with a known solo time
  /// (0 when no job qualifies).
  double mean_jct_slowdown() const;
  /// QoS slowdowns sorted descending (the Fig. 8e/9e/10/11 curves).
  std::vector<double> sorted_qos_slowdowns() const;
  std::vector<double> sorted_qos_wait_slowdowns() const;
  double mean_waiting_time() const;

  /// Multi-line ASCII GPU-occupancy timeline (Fig. 8a-d style).
  std::string render_timeline(const topo::TopologyGraph& topology,
                              double t_end, int columns = 72) const;

 private:
  std::vector<JobRecord> records_;
  std::unordered_map<int, size_t> index_;  // job id -> records_ position
  std::vector<SeriesPoint> p2p_bw_;
  std::vector<SeriesPoint> host_bw_;
  std::vector<SeriesPoint> mean_utility_;
};

}  // namespace gts::cluster
