// Cluster state: GPU allocations, per-link traffic flows, and the
// progress of running jobs under time-varying conditions.
//
// Jobs execute at a rate of 1 / iteration_time, where iteration_time comes
// from the performance model and depends on everything else running (link
// sharing + machine interference). Whenever the set of running jobs
// changes, the state banks the progress of every job whose rate changes at
// its old rate, then enters the new rate regime; completion estimates are
// therefore exact piecewise integration, not approximations.
//
// The event path (place/remove) costs O(touched state), not O(cluster):
// only jobs sharing a machine or a link with the changed placement are
// re-rated (their inputs are the only ones that changed — DESIGN.md
// section 20 gives the FP-exactness argument), "what a job sees as foreign
// flows" is the global flow table minus the job's own contribution
// subtracted on read (perf::FlowDelta, no per-query copy), and the next
// completion comes from an indexed finish-time min-heap maintained at rate
// changes instead of a scan over every running job.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"
#include "util/annotations.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace gts::cluster {

struct RunningJob {
  jobgraph::JobRequest request;
  std::vector<int> gpus;          // one global GPU id per task
  double start_time = 0.0;
  double progress_iterations = 0.0;
  double last_update = 0.0;       // time progress was last banked
  double rate = 0.0;              // iterations per second, current regime
  double placement_utility = 0.0; // utility the scheduler attributed
  bool p2p = false;               // all communicating pairs have P2P paths
  /// Execution-speed multiplier drawn at placement when noise is enabled
  /// (cloud variability, Section 4.2); 1.0 = deterministic.
  double noise_factor = 1.0;

  // Placement-time caches for the Eq. 4 hot path. All are constants for
  // the job's lifetime (the solo anchor ignores cluster load and the flow
  // links depend only on the fixed placement + topology), so no
  // invalidation beyond the job's removal is needed.
  /// Solo best-case iteration time (profile anchor or pack prediction).
  double solo_iteration_s = 0.0;
  /// Every link of every comm edge's routing path, flattened with
  /// multiplicity — add_flows / flows_excluding / interference walk this
  /// instead of re-running edges x gpu_path.
  std::vector<topo::LinkId> flow_links;
  /// flow_links condensed to sorted unique (link, multiplicity) pairs —
  /// the perf::FlowDelta the model subtracts on read when evaluating this
  /// job against the global flow table, and the key set of the cluster's
  /// link -> jobs interference index.
  std::vector<std::pair<topo::LinkId, int>> flow_link_counts;

  /// Absolute completion time under the current rate regime, recorded when
  /// the rate last changed (+inf while the rate is zero); the key of the
  /// cluster's finish-time min-heap.
  double finish_time = std::numeric_limits<double>::infinity();
  /// Index into the cluster's finish-time heap, -1 while absent (rate 0).
  int heap_pos = -1;

  double remaining_iterations() const {
    return static_cast<double>(request.iterations) - progress_iterations;
  }

  /// Progress extrapolated to `now` at the current rate — the exact
  /// piecewise-integration value. (progress_iterations, last_update) is
  /// only rewritten when the rate changes, so this is a pure function of
  /// the current rate regime: it does not depend on how many intermediate
  /// events banked *other* jobs, which is what makes scoped (O(touched))
  /// event updates byte-identical to full-cluster ones.
  double progress_at(double now) const {
    return std::min(progress_iterations + rate * (now - last_update),
                    static_cast<double>(request.iterations));
  }
};

class ClusterState {
 public:
  ClusterState(const topo::TopologyGraph& topology,
               const perf::DlWorkloadModel& model);

  /// Enables lognormal execution noise: each placed job's iteration time
  /// is multiplied by exp(sigma * N(0,1)), drawn deterministically from
  /// `seed`. Models the cloud variability the paper cites as the reason
  /// profiles need only be "high-quality", not optimal; the schedulers
  /// keep predicting with the noise-free model.
  void set_execution_noise(double sigma, std::uint64_t seed = 1234);

  const topo::TopologyGraph& topology() const noexcept { return *topology_; }
  const perf::DlWorkloadModel& model() const noexcept { return *model_; }

  // --- allocation ----------------------------------------------------------
  bool gpu_free(int gpu) const { return owner_[static_cast<size_t>(gpu)] < 0; }
  /// Job id occupying `gpu`, or -1.
  int gpu_owner(int gpu) const { return owner_[static_cast<size_t>(gpu)]; }
  std::vector<int> free_gpus() const;
  std::vector<int> free_gpus_of_machine(int machine) const;
  /// O(1): maintained incrementally from allocation deltas.
  int free_gpu_count() const noexcept { return free_gpu_count_; }
  int running_job_count() const { return static_cast<int>(jobs_.size()); }

  /// Monotonic counter bumped by every allocation-relevant mutation
  /// (place, remove, test-only corruption). Schedulers memoizing placement
  /// evaluations key their cache validity on it: two calls observing the
  /// same version see the same GPU ownership, co-runners and link flows.
  std::uint64_t allocation_version() const noexcept { return version_; }

  /// Process-unique id of this state instance, so a cache keyed on
  /// (instance, version) can never confuse two states that happen to share
  /// an address (e.g. a scheduler reused across Driver runs).
  std::uint64_t instance_id() const noexcept { return instance_id_; }

  /// Observer of allocation mutations. Fired synchronously after place()
  /// and restore_job() with allocated=true and after remove() with
  /// allocated=false, carrying the job's GPU ids. The sharded scheduler's
  /// per-cell routing summaries subscribe here so they update in
  /// O(gpus-of-job) per event instead of rescanning the state. At most one
  /// listener; install it before any traffic. Not fired by
  /// corrupt_gpu_owner_for_test (the fault injector deliberately
  /// desynchronizes state).
  using AllocationListener =
      std::function<void(std::span<const int> gpus, bool allocated)>;
  void set_allocation_listener(AllocationListener listener) {
    allocation_listener_ = std::move(listener);
  }

  /// Places a job: banks progress of affected jobs, allocates GPUs,
  /// registers link flows, recomputes rates. `gpus` must all be free.
  void place(const jobgraph::JobRequest& request, std::vector<int> gpus,
             double now, double placement_utility = 0.0);

  /// Removes a finished/cancelled job and recomputes the others' rates.
  void remove(int job_id, double now);

  /// Snapshot-restore seam (svc subsystem): re-registers a job captured by
  /// a snapshot. Equivalent to place() at `now` followed by overwriting
  /// the recorded start time, banked progress, and execution-noise factor,
  /// then recomputing every rate — so the restored regime is exactly the
  /// piecewise-integration state the snapshot saw. `gpus` must be free;
  /// callers audit feasibility first (check::audit_placement).
  void restore_job(const jobgraph::JobRequest& request,
                   std::vector<int> gpus, double start_time,
                   double progress_iterations, double placement_utility,
                   double noise_factor, double now);

  const RunningJob* find(int job_id) const;
  const std::map<int, RunningJob>& running_jobs() const { return jobs_; }

  /// Oracle switch for differential tests: when true, every place/remove
  /// re-rates ALL running jobs (the pre-scoping full recompute) instead of
  /// the machine/link-scoped touched set. State writes are identical
  /// either way — an untouched job's rate inputs are unchanged, so its
  /// recomputed rate is bitwise-equal and the skip-on-equal-rate update
  /// leaves it alone — the flag only changes how much redundant model work
  /// is done. tests/event_path_test.cpp asserts byte-equality of the two
  /// modes; bench_advance_micro quantifies the gap.
  void set_full_event_recompute(bool on) noexcept {
    full_event_recompute_ = on;
  }
  bool full_event_recompute() const noexcept { return full_event_recompute_; }

  // --- execution model -----------------------------------------------------
  /// Checkpoints every job at `now`: banks progress, rebases last_update,
  /// and refreshes the stored finish times from the banked values. Called
  /// by the driver before snapshots so the snapshotting process and a
  /// process restored from the snapshot continue with bitwise-identical
  /// progress arithmetic. O(jobs) by design — per-event updates go through
  /// the scoped rate recompute instead.
  void bank_progress(double now);

  /// (job id, absolute completion time) of the job finishing next, given
  /// current rates; nullopt when nothing runs. O(1): the heap top. The
  /// returned time is the finish time stored when the job's rate last
  /// changed — the same piecewise-exact value the pre-heap scan
  /// recomputed per query, modulo query-point rounding.
  std::optional<std::pair<int, double>> next_completion(double now) const;

  /// Job ids whose stored finish time has been reached at `now`
  /// (ascending). The driver's completion event consumes this instead of
  /// banking and scanning every running job; cost is O(due · log jobs).
  std::vector<int> due_completions(double now) const;

  /// Link flow counts from all running jobs (index = LinkId).
  const perf::LinkFlows& link_flows() const noexcept { return flows_; }

  /// Flow counts excluding one job — what that job sees as foreign flows.
  perf::LinkFlows flows_excluding(int job_id) const;

  /// Running jobs (excluding `exclude_job_id`) sharing any machine with a
  /// hypothetical placement on `gpus`, with same-socket contention flagged.
  std::vector<perf::CoRunner> co_runners(std::span<const int> gpus,
                                         int exclude_job_id) const;

  /// Machines a GPU list touches (sorted, unique).
  std::vector<int> machines_of(std::span<const int> gpus) const;

  // --- Eq. 5 fragmentation -------------------------------------------------
  /// Average free fraction across all sockets of the cluster.
  double fragmentation() const;
  /// Average free fraction across the sockets of one machine.
  double fragmentation_of_machine(int machine) const;
  /// Fragmentation if `gpus` were additionally allocated (whole cluster).
  double fragmentation_after(std::span<const int> gpus) const;

  /// Predicted iteration time for a hypothetical placement of `request`
  /// on `gpus` given everything currently running (used by schedulers for
  /// Eq. 4 interference estimates).
  perf::IterationBreakdown predict_iteration(
      const jobgraph::JobRequest& request, std::span<const int> gpus) const;

  /// Solo best-case iteration time of a request: profile anchor when
  /// available, else the model's pack-placement prediction on an idle
  /// machine. Independent of current allocations; cached per running job
  /// as RunningJob::solo_iteration_s.
  double solo_iteration_time(const jobgraph::JobRequest& request) const;

  /// Current iteration breakdown of a *running* job.
  perf::IterationBreakdown current_iteration(const RunningJob& job) const;

 /// Job ids currently occupying GPUs on `machine` (ascending).
  const std::vector<int>& jobs_of_machine(int machine) const {
    return jobs_by_machine_[static_cast<size_t>(machine)];
  }

  /// Job ids with at least one comm flow routed over `link` (ascending) —
  /// the interference index the scoped rate recompute and the check
  /// subsystem's audit read.
  const std::vector<int>& jobs_of_link(topo::LinkId link) const {
    return jobs_by_link_[static_cast<size_t>(link)];
  }

  /// One finish-time heap slot: (stored finish time, job id), min-heap on
  /// (time, id) so ties resolve to the smallest id like the pre-heap
  /// ordered-map scan did. Exposed for the check subsystem's audit.
  struct FinishEntry {
    double time = 0.0;
    int id = -1;
  };
  std::span<const FinishEntry> finish_heap() const noexcept {
    return finish_heap_;
  }

  /// Machines currently holding a strict subset of their GPUs free —
  /// maintained incrementally per allocation delta (the numerator of the
  /// occupancy gauge published to obs).
  int fragmented_machine_count() const noexcept {
    return fragmented_machines_;
  }

  /// Host-bandwidth demand (GB/s) of the jobs on `machine` (Section 4.3's
  /// t_bw accounting; capacity is model().params().host_bw_capacity_gbps).
  double host_bw_used(int machine) const {
    return host_bw_used_[static_cast<size_t>(machine)];
  }
  /// True when `machine` can additionally absorb `demand_gbps`.
  bool host_bw_available(int machine, double demand_gbps) const {
    return host_bw_used(machine) + demand_gbps <=
           model_->params().host_bw_capacity_gbps + 1e-9;
  }

  /// Fault injection for the check subsystem's tests: overwrites the owner
  /// of `gpu` with `job_id` (or -1) without any of the job-table
  /// bookkeeping place() performs, deliberately desynchronizing the
  /// ownership table from the job table so check::validate /
  /// check::audit_placement can be shown to catch corruption. The
  /// owner-derived occupancy counters ARE kept in sync with the corrupted
  /// table — they are a projection of owner_, and keeping them consistent
  /// preserves the audit's ability to pinpoint the job/owner mismatch
  /// itself. Never call outside tests.
  void corrupt_gpu_owner_for_test(int gpu, int job_id);

 private:
  /// Scratch for co-runner gathering on the serial mutation path (the
  /// public co_runners() allocates instead, staying safe under the
  /// schedulers' parallel candidate scoring).
  struct CoRunnerScratch {
    std::vector<std::pair<int, int>> sockets;  // (machine, socket), sorted
    std::vector<int> ids;
    std::vector<perf::CoRunner> co;
  };

  /// Fills `scratch.co` with the co-runners of `gpus` (excluding
  /// `exclude_job_id`); shared core of the public co_runners().
  void co_runners_into(std::span<const int> gpus, int exclude_job_id,
                       CoRunnerScratch& scratch) const;

  /// Re-rates one job at `now`: recomputes its iteration time from current
  /// flows and co-runners, and — only when the rate value actually changed
  /// bitwise — banks progress at the old rate, rebases last_update, and
  /// refreshes the stored finish time + heap slot. The bitwise
  /// skip-on-equal-rate is what makes full and scoped recomputes write
  /// identical state (DESIGN.md section 20).
  void update_job_rate(RunningJob& job, double now);
  /// update_job_rate over every running job (oracle mode, restore path).
  void recompute_all(double now);
  /// Job ids sharing a machine in `machines` or a link in `links` with a
  /// changed placement (sorted, unique) — the exact set whose rate inputs
  /// the change can have altered.
  void gather_touched(const std::vector<int>& machines,
                      std::span<const std::pair<topo::LinkId, int>> links,
                      std::vector<int>& ids) const;
  /// Recomputes `job`'s stored finish time from its banked progress and
  /// current rate at `now`, and re-seats its heap slot.
  void refresh_finish(RunningJob& job, double now);

  // Finish-time min-heap plumbing; entries order by (time, id).
  static bool finish_less(const FinishEntry& a, const FinishEntry& b) {
    return a.time < b.time || (a.time == b.time && a.id < b.id);
  }
  void heap_place(size_t i, const FinishEntry& entry);
  void heap_sift_up(size_t i);
  void heap_sift_down(size_t i);
  /// Inserts/moves/erases `job`'s heap slot to match its rate and stored
  /// finish time.
  void heap_update(RunningJob& job);
  void heap_erase(RunningJob& job);

  void add_flows(const RunningJob& job, int delta);
  void index_job(const RunningJob& job, bool insert);
  /// Maintains the O(1) occupancy counters across one GPU's
  /// allocation-state flip.
  void track_gpu(int gpu, bool allocated);
  /// Updates the obs gauges / trace counters that track occupancy from the
  /// incrementally maintained counters; a single branch (and O(1) work)
  /// when neither metrics nor cluster tracing is enabled.
  void publish_occupancy_metrics() const;

  const topo::TopologyGraph* topology_;
  const perf::DlWorkloadModel* model_;
  std::vector<int> owner_;    // per GPU: job id or -1
  perf::LinkFlows flows_;     // per link: number of comm flows
  std::map<int, RunningJob> jobs_;  // ordered for deterministic iteration
  std::vector<std::vector<int>> jobs_by_machine_;
  std::vector<std::vector<int>> jobs_by_link_;  // link -> job ids, ascending
  std::vector<double> host_bw_used_;  // per machine, GB/s
  std::vector<FinishEntry> finish_heap_;  // jobs with rate > 0
  // Occupancy counters, updated per GPU flip (publish_occupancy_metrics
  // and free_gpu_count read them in O(1)).
  std::vector<int> machine_free_;  // free GPUs per machine
  int free_gpu_count_ = 0;
  int fragmented_machines_ = 0;
  bool full_event_recompute_ = false;
  std::uint64_t version_ = 0;
  std::uint64_t instance_id_ = 0;
  double noise_sigma_ = 0.0;
  util::Rng noise_rng_{1234};
  AllocationListener allocation_listener_;
  // Mutation-path scratch (serial by the state's confinement contract;
  // const readers never touch these).
  CoRunnerScratch scratch_;
  std::vector<int> touched_ids_;
  /// solo_iteration_time's pack-placement fallback, keyed by num_gpus (the
  /// topology is fixed for the state's lifetime, so no epoch in the key).
  /// Mutex-guarded because const prediction paths run under the
  /// schedulers' parallel candidate scoring.
  mutable util::Mutex pack_cache_mutex_;
  mutable std::map<int, std::vector<int>> pack_cache_
      GTS_GUARDED_BY(pack_cache_mutex_);
};

}  // namespace gts::cluster
