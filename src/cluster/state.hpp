// Cluster state: GPU allocations, per-link traffic flows, and the
// progress of running jobs under time-varying conditions.
//
// Jobs execute at a rate of 1 / iteration_time, where iteration_time comes
// from the performance model and depends on everything else running (link
// sharing + machine interference). Whenever the set of running jobs
// changes, the state first banks each job's progress at the old rate, then
// recomputes rates; completion estimates are therefore exact piecewise
// integration, not approximations.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "jobgraph/jobgraph.hpp"
#include "perf/model.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace gts::cluster {

struct RunningJob {
  jobgraph::JobRequest request;
  std::vector<int> gpus;          // one global GPU id per task
  double start_time = 0.0;
  double progress_iterations = 0.0;
  double last_update = 0.0;       // time progress was last banked
  double rate = 0.0;              // iterations per second, current regime
  double placement_utility = 0.0; // utility the scheduler attributed
  bool p2p = false;               // all communicating pairs have P2P paths
  /// Execution-speed multiplier drawn at placement when noise is enabled
  /// (cloud variability, Section 4.2); 1.0 = deterministic.
  double noise_factor = 1.0;

  // Placement-time caches for the Eq. 4 hot path. Both are constants for
  // the job's lifetime (the solo anchor ignores cluster load and the flow
  // links depend only on the fixed placement + topology), so no
  // invalidation beyond the job's removal is needed.
  /// Solo best-case iteration time (profile anchor or pack prediction).
  double solo_iteration_s = 0.0;
  /// Every link of every comm edge's routing path, flattened with
  /// multiplicity — add_flows / flows_excluding / interference walk this
  /// instead of re-running edges x gpu_path.
  std::vector<topo::LinkId> flow_links;

  double remaining_iterations() const {
    return static_cast<double>(request.iterations) - progress_iterations;
  }
};

class ClusterState {
 public:
  ClusterState(const topo::TopologyGraph& topology,
               const perf::DlWorkloadModel& model);

  /// Enables lognormal execution noise: each placed job's iteration time
  /// is multiplied by exp(sigma * N(0,1)), drawn deterministically from
  /// `seed`. Models the cloud variability the paper cites as the reason
  /// profiles need only be "high-quality", not optimal; the schedulers
  /// keep predicting with the noise-free model.
  void set_execution_noise(double sigma, std::uint64_t seed = 1234);

  const topo::TopologyGraph& topology() const noexcept { return *topology_; }
  const perf::DlWorkloadModel& model() const noexcept { return *model_; }

  // --- allocation ----------------------------------------------------------
  bool gpu_free(int gpu) const { return owner_[static_cast<size_t>(gpu)] < 0; }
  /// Job id occupying `gpu`, or -1.
  int gpu_owner(int gpu) const { return owner_[static_cast<size_t>(gpu)]; }
  std::vector<int> free_gpus() const;
  std::vector<int> free_gpus_of_machine(int machine) const;
  int free_gpu_count() const;
  int running_job_count() const { return static_cast<int>(jobs_.size()); }

  /// Monotonic counter bumped by every allocation-relevant mutation
  /// (place, remove, test-only corruption). Schedulers memoizing placement
  /// evaluations key their cache validity on it: two calls observing the
  /// same version see the same GPU ownership, co-runners and link flows.
  std::uint64_t allocation_version() const noexcept { return version_; }

  /// Process-unique id of this state instance, so a cache keyed on
  /// (instance, version) can never confuse two states that happen to share
  /// an address (e.g. a scheduler reused across Driver runs).
  std::uint64_t instance_id() const noexcept { return instance_id_; }

  /// Observer of allocation mutations. Fired synchronously after place()
  /// and restore_job() with allocated=true and after remove() with
  /// allocated=false, carrying the job's GPU ids. The sharded scheduler's
  /// per-cell routing summaries subscribe here so they update in
  /// O(gpus-of-job) per event instead of rescanning the state. At most one
  /// listener; install it before any traffic. Not fired by
  /// corrupt_gpu_owner_for_test (the fault injector deliberately
  /// desynchronizes state).
  using AllocationListener =
      std::function<void(std::span<const int> gpus, bool allocated)>;
  void set_allocation_listener(AllocationListener listener) {
    allocation_listener_ = std::move(listener);
  }

  /// Places a job: banks progress of affected jobs, allocates GPUs,
  /// registers link flows, recomputes rates. `gpus` must all be free.
  void place(const jobgraph::JobRequest& request, std::vector<int> gpus,
             double now, double placement_utility = 0.0);

  /// Removes a finished/cancelled job and recomputes the others' rates.
  void remove(int job_id, double now);

  /// Snapshot-restore seam (svc subsystem): re-registers a job captured by
  /// a snapshot. Equivalent to place() at `now` followed by overwriting
  /// the recorded start time, banked progress, and execution-noise factor,
  /// then recomputing every rate — so the restored regime is exactly the
  /// piecewise-integration state the snapshot saw. `gpus` must be free;
  /// callers audit feasibility first (check::audit_placement).
  void restore_job(const jobgraph::JobRequest& request,
                   std::vector<int> gpus, double start_time,
                   double progress_iterations, double placement_utility,
                   double noise_factor, double now);

  const RunningJob* find(int job_id) const;
  const std::map<int, RunningJob>& running_jobs() const { return jobs_; }

  // --- execution model -----------------------------------------------------
  /// Advances every job's progress to `now` at its current rate.
  void bank_progress(double now);

  /// (job id, absolute completion time) of the job finishing next, given
  /// current rates; nullopt when nothing runs.
  std::optional<std::pair<int, double>> next_completion(double now) const;

  /// Link flow counts from all running jobs (index = LinkId).
  const perf::LinkFlows& link_flows() const noexcept { return flows_; }

  /// Flow counts excluding one job — what that job sees as foreign flows.
  perf::LinkFlows flows_excluding(int job_id) const;

  /// Running jobs (excluding `exclude_job_id`) sharing any machine with a
  /// hypothetical placement on `gpus`, with same-socket contention flagged.
  std::vector<perf::CoRunner> co_runners(std::span<const int> gpus,
                                         int exclude_job_id) const;

  /// Machines a GPU list touches (sorted, unique).
  std::vector<int> machines_of(std::span<const int> gpus) const;

  // --- Eq. 5 fragmentation -------------------------------------------------
  /// Average free fraction across all sockets of the cluster.
  double fragmentation() const;
  /// Average free fraction across the sockets of one machine.
  double fragmentation_of_machine(int machine) const;
  /// Fragmentation if `gpus` were additionally allocated (whole cluster).
  double fragmentation_after(std::span<const int> gpus) const;

  /// Predicted iteration time for a hypothetical placement of `request`
  /// on `gpus` given everything currently running (used by schedulers for
  /// Eq. 4 interference estimates).
  perf::IterationBreakdown predict_iteration(
      const jobgraph::JobRequest& request, std::span<const int> gpus) const;

  /// Solo best-case iteration time of a request: profile anchor when
  /// available, else the model's pack-placement prediction on an idle
  /// machine. Independent of current allocations; cached per running job
  /// as RunningJob::solo_iteration_s.
  double solo_iteration_time(const jobgraph::JobRequest& request) const;

  /// Current iteration breakdown of a *running* job.
  perf::IterationBreakdown current_iteration(const RunningJob& job) const;

 /// Job ids currently occupying GPUs on `machine` (ascending).
  const std::vector<int>& jobs_of_machine(int machine) const {
    return jobs_by_machine_[static_cast<size_t>(machine)];
  }

  /// Host-bandwidth demand (GB/s) of the jobs on `machine` (Section 4.3's
  /// t_bw accounting; capacity is model().params().host_bw_capacity_gbps).
  double host_bw_used(int machine) const {
    return host_bw_used_[static_cast<size_t>(machine)];
  }
  /// True when `machine` can additionally absorb `demand_gbps`.
  bool host_bw_available(int machine, double demand_gbps) const {
    return host_bw_used(machine) + demand_gbps <=
           model_->params().host_bw_capacity_gbps + 1e-9;
  }

  /// Fault injection for the check subsystem's tests: overwrites the owner
  /// of `gpu` with `job_id` (or -1) without any of the bookkeeping place()
  /// performs, deliberately desynchronizing the ownership table from the
  /// job table so check::validate / check::audit_placement can be shown to
  /// catch corruption. Never call outside tests.
  void corrupt_gpu_owner_for_test(int gpu, int job_id) {
    owner_[static_cast<size_t>(gpu)] = job_id;
    ++version_;
  }

 private:
  /// Recomputes rates for every job, or — when `touched_machines` is given
  /// and no multi-machine job is involved — only for jobs on those
  /// machines (interference and link sharing are machine-local for
  /// single-node jobs, which keeps large-cluster updates O(1 machine)).
  void recompute_rates(double now,
                       const std::vector<int>* touched_machines = nullptr);
  void add_flows(const RunningJob& job, int delta);
  void index_job(const RunningJob& job, bool insert);
  /// Updates the obs gauges / trace counters that track occupancy; a
  /// single branch when neither metrics nor cluster tracing is enabled.
  void publish_occupancy_metrics() const;

  const topo::TopologyGraph* topology_;
  const perf::DlWorkloadModel* model_;
  std::vector<int> owner_;    // per GPU: job id or -1
  perf::LinkFlows flows_;     // per link: number of comm flows
  std::map<int, RunningJob> jobs_;  // ordered for deterministic iteration
  std::vector<std::vector<int>> jobs_by_machine_;
  std::vector<double> host_bw_used_;  // per machine, GB/s
  bool any_multi_machine_job_ = false;
  std::uint64_t version_ = 0;
  std::uint64_t instance_id_ = 0;
  double noise_sigma_ = 0.0;
  util::Rng noise_rng_{1234};
  AllocationListener allocation_listener_;
};

}  // namespace gts::cluster
