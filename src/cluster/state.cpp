#include "cluster/state.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/profile.hpp"

namespace gts::cluster {

namespace {
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}

/// Condenses a flattened link list (with multiplicity) into sorted unique
/// (link, count) pairs — the perf::FlowDelta shape.
std::vector<std::pair<topo::LinkId, int>> condense_links(
    std::vector<topo::LinkId> links) {
  std::sort(links.begin(), links.end());
  std::vector<std::pair<topo::LinkId, int>> counts;
  for (size_t i = 0; i < links.size();) {
    size_t j = i;
    while (j < links.size() && links[j] == links[i]) ++j;
    counts.emplace_back(links[i], static_cast<int>(j - i));
    i = j;
  }
  return counts;
}
}  // namespace

ClusterState::ClusterState(const topo::TopologyGraph& topology,
                           const perf::DlWorkloadModel& model)
    : topology_(&topology),
      model_(&model),
      owner_(static_cast<size_t>(topology.gpu_count()), -1),
      flows_(static_cast<size_t>(topology.link_count()), 0),
      jobs_by_machine_(static_cast<size_t>(topology.machine_count())),
      jobs_by_link_(static_cast<size_t>(topology.link_count())),
      host_bw_used_(static_cast<size_t>(topology.machine_count()), 0.0),
      machine_free_(static_cast<size_t>(topology.machine_count()), 0),
      free_gpu_count_(topology.gpu_count()),
      instance_id_(next_instance_id()) {
  for (int machine = 0; machine < topology.machine_count(); ++machine) {
    machine_free_[static_cast<size_t>(machine)] =
        static_cast<int>(topology.gpus_of_machine(machine).size());
  }
}

void ClusterState::set_execution_noise(double sigma, std::uint64_t seed) {
  noise_sigma_ = sigma;
  noise_rng_.reseed(seed);
}

void ClusterState::index_job(const RunningJob& job, bool insert) {
  const std::vector<int> machines = machines_of(job.gpus);
  // A multi-machine job's bandwidth demand is split evenly across its
  // machines; single-node jobs (the common case) charge one machine.
  const double demand = job.request.profile.host_bw_demand_gbps /
                        static_cast<double>(machines.size());
  for (const int machine : machines) {
    std::vector<int>& list = jobs_by_machine_[static_cast<size_t>(machine)];
    if (insert) {
      list.insert(std::upper_bound(list.begin(), list.end(), job.request.id),
                  job.request.id);
      host_bw_used_[static_cast<size_t>(machine)] += demand;
    } else {
      list.erase(std::remove(list.begin(), list.end(), job.request.id),
                 list.end());
      host_bw_used_[static_cast<size_t>(machine)] =
          std::max(0.0, host_bw_used_[static_cast<size_t>(machine)] - demand);
    }
  }
  // The link -> jobs interference index: one entry per unique link the
  // job's comm flows traverse, so a changed placement can find every job
  // whose foreign-flow inputs it altered without a cluster scan.
  for (const auto& [link, count] : job.flow_link_counts) {
    std::vector<int>& list = jobs_by_link_[static_cast<size_t>(link)];
    if (insert) {
      list.insert(std::upper_bound(list.begin(), list.end(), job.request.id),
                  job.request.id);
    } else {
      list.erase(std::remove(list.begin(), list.end(), job.request.id),
                 list.end());
    }
  }
}

std::vector<int> ClusterState::free_gpus() const {
  std::vector<int> gpus;
  for (int g = 0; g < topology_->gpu_count(); ++g) {
    if (gpu_free(g)) gpus.push_back(g);
  }
  return gpus;
}

std::vector<int> ClusterState::free_gpus_of_machine(int machine) const {
  const std::vector<int>& machine_gpus = topology_->gpus_of_machine(machine);
  std::vector<int> gpus;
  gpus.reserve(machine_gpus.size());
  for (const int g : machine_gpus) {
    if (gpu_free(g)) gpus.push_back(g);
  }
  return gpus;
}

void ClusterState::track_gpu(int gpu, bool allocated) {
  const int machine = topology_->machine_of_gpu(gpu);
  int& free = machine_free_[static_cast<size_t>(machine)];
  const int total =
      static_cast<int>(topology_->gpus_of_machine(machine).size());
  const bool was_fragmented = free > 0 && free < total;
  const int delta = allocated ? -1 : 1;
  free += delta;
  free_gpu_count_ += delta;
  GTS_DCHECK(free >= 0 && free <= total, "machine ", machine,
             " free-GPU counter out of range: ", free);
  const bool is_fragmented = free > 0 && free < total;
  fragmented_machines_ +=
      (is_fragmented ? 1 : 0) - (was_fragmented ? 1 : 0);
}

void ClusterState::corrupt_gpu_owner_for_test(int gpu, int job_id) {
  const int old_owner = owner_[static_cast<size_t>(gpu)];
  owner_[static_cast<size_t>(gpu)] = job_id;
  // Keep the owner-derived occupancy counters consistent with the
  // (corrupted) ownership table; see the header comment.
  if ((old_owner < 0) != (job_id < 0)) {
    track_gpu(gpu, /*allocated=*/job_id >= 0);
  }
  ++version_;
}

void ClusterState::add_flows(const RunningJob& job, int delta) {
  for (const topo::LinkId link : job.flow_links) {
    flows_[static_cast<size_t>(link)] += delta;
    GTS_DCHECK_GE(flows_[static_cast<size_t>(link)], 0);
  }
}

void ClusterState::place(const jobgraph::JobRequest& request,
                         std::vector<int> gpus, double now,
                         double placement_utility) {
  GTS_CHECK_EQ(static_cast<int>(gpus.size()), request.num_gpus);

  RunningJob job;
  job.request = request;
  job.gpus = std::move(gpus);
  job.start_time = now;
  job.last_update = now;
  job.placement_utility = placement_utility;
  if (noise_sigma_ > 0.0) {
    job.noise_factor = std::exp(noise_rng_.normal(0.0, noise_sigma_));
  }
  job.p2p = true;
  for (const jobgraph::CommEdge& edge : job.request.comm_graph.edges()) {
    const topo::GpuPath& path =
        topology_->gpu_path(job.gpus[static_cast<size_t>(edge.a)],
                            job.gpus[static_cast<size_t>(edge.b)]);
    if (!path.peer_to_peer) job.p2p = false;
    job.flow_links.insert(job.flow_links.end(), path.links.begin(),
                          path.links.end());
  }
  job.flow_link_counts = condense_links(job.flow_links);
  job.solo_iteration_s = solo_iteration_time(job.request);
  for (const int gpu : job.gpus) {
    GTS_CHECK(gpu_free(gpu), "job ", request.id, " placed on busy GPU ",
              gpu, " owned by job ", gpu_owner(gpu));
    owner_[static_cast<size_t>(gpu)] = request.id;
    track_gpu(gpu, /*allocated=*/true);
  }
  add_flows(job, +1);
  index_job(job, /*insert=*/true);
  const std::vector<int> touched = machines_of(job.gpus);
  const auto inserted = jobs_.emplace(request.id, std::move(job));
  RunningJob& placed = inserted.first->second;
  ++version_;
  if (full_event_recompute_) {
    recompute_all(now);
  } else {
    // Exactly the jobs whose rate inputs this placement changed: sharers
    // of a touched machine (interference term) or of a traversed link
    // (flow sharing) — including the new job itself via the indices.
    gather_touched(touched, placed.flow_link_counts, touched_ids_);
    for (const int id : touched_ids_) update_job_rate(jobs_.at(id), now);
  }
  if (allocation_listener_) {
    allocation_listener_(placed.gpus, /*allocated=*/true);
  }
  GTS_METRIC_COUNT("cluster.placements", 1);
  GTS_TRACE_INSTANT(obs::kCluster, "cluster.place", "job", request.id);
  publish_occupancy_metrics();
}

void ClusterState::restore_job(const jobgraph::JobRequest& request,
                               std::vector<int> gpus, double start_time,
                               double progress_iterations,
                               double placement_utility, double noise_factor,
                               double now) {
  GTS_CHECK(start_time <= now + 1e-9, "restored job ", request.id,
            " starts in the future: start=", start_time, " now=", now);
  GTS_CHECK(progress_iterations >= 0.0 &&
                progress_iterations <=
                    static_cast<double>(request.iterations) + 1e-6,
            "restored job ", request.id,
            " progress out of bounds: ", progress_iterations);
  place(request, std::move(gpus), now, placement_utility);
  RunningJob& job = jobs_.at(request.id);
  job.start_time = start_time;
  job.progress_iterations = progress_iterations;
  job.noise_factor = noise_factor;
  job.last_update = now;
  ++version_;
  // The noise factor scales the job's rate; recompute with it in effect.
  recompute_all(now);
  // The overwritten progress moves the stored finish time even when the
  // rate itself came out unchanged (noise_factor 1), so refresh it
  // unconditionally from the restored progress.
  refresh_finish(job, now);
}

void ClusterState::remove(int job_id, double now) {
  const auto it = jobs_.find(job_id);
  GTS_CHECK(it != jobs_.end(), "removing unknown job ", job_id);
  RunningJob& job = it->second;
  add_flows(job, -1);
  index_job(job, /*insert=*/false);
  const std::vector<int> touched = machines_of(job.gpus);
  for (const int gpu : job.gpus) {
    owner_[static_cast<size_t>(gpu)] = -1;
    track_gpu(gpu, /*allocated=*/false);
  }
  const std::vector<int> freed = std::move(job.gpus);
  const std::vector<std::pair<topo::LinkId, int>> links =
      std::move(job.flow_link_counts);
  heap_erase(job);
  jobs_.erase(it);
  ++version_;
  if (full_event_recompute_) {
    recompute_all(now);
  } else {
    // The removed job is already unindexed, so the gather yields only the
    // surviving machine/link sharers whose inputs the removal changed.
    gather_touched(touched, links, touched_ids_);
    for (const int id : touched_ids_) update_job_rate(jobs_.at(id), now);
  }
  if (allocation_listener_) {
    allocation_listener_(freed, /*allocated=*/false);
  }
  GTS_METRIC_COUNT("cluster.releases", 1);
  GTS_TRACE_INSTANT(obs::kCluster, "cluster.release", "job", job_id);
  publish_occupancy_metrics();
}

void ClusterState::publish_occupancy_metrics() const {
  if (!obs::metrics_enabled() && !obs::tracing_enabled(obs::kCluster)) {
    return;
  }
  // Fragmentation: fraction of machines left partially occupied — free
  // GPUs stranded next to co-runners, the condition Eq. 5 penalizes.
  // Both counters are maintained per allocation delta, so publishing is
  // O(1) instead of a machines x GPUs rescan.
  const int machine_count = topology_->machine_count();
  const double fragmentation =
      machine_count > 0 ? static_cast<double>(fragmented_machines_) /
                              static_cast<double>(machine_count)
                        : 0.0;
  GTS_METRIC_GAUGE_SET("cluster.free_gpus",
                       static_cast<double>(free_gpu_count_));
  GTS_METRIC_GAUGE_SET("cluster.fragmentation", fragmentation);
  GTS_TRACE_COUNTER(obs::kCluster, "cluster.free_gpus",
                    static_cast<double>(free_gpu_count_));
  GTS_TRACE_COUNTER(obs::kCluster, "cluster.fragmentation", fragmentation);
}

const RunningJob* ClusterState::find(int job_id) const {
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void ClusterState::bank_progress(double now) {
  for (auto& [id, job] : jobs_) {
    job.progress_iterations = job.progress_at(now);
    job.last_update = now;
    if (job.heap_pos >= 0) {
      // Rebase the stored finish time on the banked progress — the same
      // value next_completion used to recompute per query. Snapshot
      // restore re-derives finish times from (progress, now) too, so
      // checkpointing here keeps the original and a restored process
      // bitwise-identical afterwards.
      job.finish_time =
          now + std::max(0.0, job.remaining_iterations()) / job.rate;
      finish_heap_[static_cast<size_t>(job.heap_pos)].time = job.finish_time;
    }
  }
  // Keys moved (by rounding only), so re-establish the heap invariant.
  for (size_t i = finish_heap_.size() / 2; i-- > 0;) {
    heap_sift_down(i);
  }
}

perf::LinkFlows ClusterState::flows_excluding(int job_id) const {
  perf::LinkFlows flows = flows_;
  const RunningJob* job = find(job_id);
  if (job != nullptr) {
    for (const topo::LinkId link : job->flow_links) {
      --flows[static_cast<size_t>(link)];
    }
  }
  return flows;
}

std::vector<int> ClusterState::machines_of(std::span<const int> gpus) const {
  // Sorted + deduped via a small vector; the sets here are tiny (one
  // machine per task at most), so sort beats a node-based set.
  std::vector<int> machines;
  machines.reserve(gpus.size());
  for (const int gpu : gpus) {
    machines.push_back(topology_->machine_of_gpu(gpu));
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()),
                 machines.end());
  return machines;
}

void ClusterState::co_runners_into(std::span<const int> gpus,
                                   int exclude_job_id,
                                   CoRunnerScratch& scratch) const {
  // (machine, socket) pairs the placement touches, sorted for binary
  // search; machine list derived from it (same first components).
  std::vector<std::pair<int, int>>& sockets = scratch.sockets;
  sockets.clear();
  for (const int gpu : gpus) {
    sockets.emplace_back(topology_->machine_of_gpu(gpu),
                         topology_->socket_of_gpu(gpu));
  }
  std::sort(sockets.begin(), sockets.end());
  sockets.erase(std::unique(sockets.begin(), sockets.end()), sockets.end());
  // Candidate co-runners come from the per-machine index so the scan cost
  // is proportional to the touched machines, not the whole cluster.
  std::vector<int>& candidate_ids = scratch.ids;
  candidate_ids.clear();
  int last_machine = -1;
  for (const auto& [machine, socket] : sockets) {
    if (machine == last_machine) continue;  // sockets sorted by machine
    last_machine = machine;
    const std::vector<int>& ids =
        jobs_by_machine_[static_cast<size_t>(machine)];
    candidate_ids.insert(candidate_ids.end(), ids.begin(), ids.end());
  }
  std::sort(candidate_ids.begin(), candidate_ids.end());
  candidate_ids.erase(
      std::unique(candidate_ids.begin(), candidate_ids.end()),
      candidate_ids.end());
  std::vector<perf::CoRunner>& out = scratch.co;
  out.clear();
  out.reserve(candidate_ids.size());
  for (const int id : candidate_ids) {
    if (id == exclude_job_id) continue;
    const RunningJob& job = jobs_.at(id);
    bool shares_socket = false;
    for (const int gpu : job.gpus) {
      if (std::binary_search(
              sockets.begin(), sockets.end(),
              std::pair<int, int>{topology_->machine_of_gpu(gpu),
                                  topology_->socket_of_gpu(gpu)})) {
        shares_socket = true;
        break;
      }
    }
    out.push_back({job.request.profile.batch, shares_socket});
  }
}

std::vector<perf::CoRunner> ClusterState::co_runners(
    std::span<const int> gpus, int exclude_job_id) const {
  CoRunnerScratch scratch;
  co_runners_into(gpus, exclude_job_id, scratch);
  return std::move(scratch.co);
}

double ClusterState::fragmentation() const {
  // Eq. 5: average over sockets of freeGPUs/totalGPUs.
  double total = 0.0;
  int sockets = 0;
  for (int machine = 0; machine < topology_->machine_count(); ++machine) {
    const int socket_count = topology_->sockets_of_machine(machine);
    for (int socket = 0; socket < socket_count; ++socket) {
      const std::vector<int>& gpus = topology_->gpus_of_socket(machine, socket);
      if (gpus.empty()) continue;
      const int free = static_cast<int>(
          std::count_if(gpus.begin(), gpus.end(),
                        [&](int g) { return gpu_free(g); }));
      total += static_cast<double>(free) / static_cast<double>(gpus.size());
      ++sockets;
    }
  }
  return sockets == 0 ? 0.0 : total / sockets;
}

double ClusterState::fragmentation_of_machine(int machine) const {
  double total = 0.0;
  int sockets = 0;
  const int socket_count = topology_->sockets_of_machine(machine);
  for (int socket = 0; socket < socket_count; ++socket) {
    const std::vector<int>& gpus = topology_->gpus_of_socket(machine, socket);
    if (gpus.empty()) continue;
    const int free = static_cast<int>(std::count_if(
        gpus.begin(), gpus.end(), [&](int g) { return gpu_free(g); }));
    total += static_cast<double>(free) / static_cast<double>(gpus.size());
    ++sockets;
  }
  return sockets == 0 ? 0.0 : total / sockets;
}

double ClusterState::fragmentation_after(std::span<const int> gpus) const {
  // Temporarily mark, compute, restore — const_cast-free via copy of the
  // small owner vector.
  double total = 0.0;
  int sockets = 0;
  for (int machine = 0; machine < topology_->machine_count(); ++machine) {
    const int socket_count = topology_->sockets_of_machine(machine);
    for (int socket = 0; socket < socket_count; ++socket) {
      const std::vector<int>& socket_gpus =
          topology_->gpus_of_socket(machine, socket);
      if (socket_gpus.empty()) continue;
      int free = 0;
      for (const int g : socket_gpus) {
        const bool newly_taken =
            std::find(gpus.begin(), gpus.end(), g) != gpus.end();
        if (gpu_free(g) && !newly_taken) ++free;
      }
      total +=
          static_cast<double>(free) / static_cast<double>(socket_gpus.size());
      ++sockets;
    }
  }
  return sockets == 0 ? 0.0 : total / sockets;
}

double ClusterState::solo_iteration_time(
    const jobgraph::JobRequest& request) const {
  if (request.profile.solo_time_pack > 0.0 && request.iterations > 0) {
    return request.profile.solo_time_pack /
           static_cast<double>(request.iterations);
  }
  // Fallback for unprofiled jobs: evaluate the model on an idle packed
  // placement. The pack itself depends only on (topology, num_gpus), so it
  // is memoized per state instead of being rebuilt on every placement.
  std::vector<int> pack;
  bool cached = false;
  {
    util::MutexLock lock(pack_cache_mutex_);
    const auto it = pack_cache_.find(request.num_gpus);
    if (it != pack_cache_.end()) {
      pack = it->second;
      cached = true;
    }
  }
  if (!cached) {
    pack = perf::pack_placement(*topology_, request.num_gpus);
    util::MutexLock lock(pack_cache_mutex_);
    pack_cache_.emplace(request.num_gpus, pack);
  }
  if (static_cast<int>(pack.size()) != request.num_gpus) return 0.0;
  return model_->iteration(request, pack, *topology_).total_s;
}

perf::IterationBreakdown ClusterState::predict_iteration(
    const jobgraph::JobRequest& request, std::span<const int> gpus) const {
  const std::vector<perf::CoRunner> co = co_runners(gpus, request.id);
  return model_->iteration(request, gpus, *topology_, &flows_, co);
}

perf::IterationBreakdown ClusterState::current_iteration(
    const RunningJob& job) const {
  const std::vector<perf::CoRunner> co = co_runners(job.gpus, job.request.id);
  // The job's own flows are subtracted from the global table on read
  // (FlowDelta) — bitwise-equal to the flows_excluding copy it replaces:
  // the subtraction happens in integers before any division.
  return model_->iteration(job.request, job.gpus, *topology_, &flows_, co,
                           job.flow_link_counts);
}

void ClusterState::gather_touched(
    const std::vector<int>& machines,
    std::span<const std::pair<topo::LinkId, int>> links,
    std::vector<int>& ids) const {
  ids.clear();
  for (const int machine : machines) {
    const std::vector<int>& list =
        jobs_by_machine_[static_cast<size_t>(machine)];
    ids.insert(ids.end(), list.begin(), list.end());
  }
  for (const auto& [link, count] : links) {
    const std::vector<int>& list = jobs_by_link_[static_cast<size_t>(link)];
    ids.insert(ids.end(), list.begin(), list.end());
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

void ClusterState::update_job_rate(RunningJob& job, double now) {
  co_runners_into(job.gpus, job.request.id, scratch_);
  const perf::IterationBreakdown step =
      model_->iteration(job.request, job.gpus, *topology_, &flows_,
                        scratch_.co, job.flow_link_counts);
  const double iter = step.total_s * job.noise_factor;
  const double rate = iter > 0.0 ? 1.0 / iter : 0.0;
  if (rate == job.rate) {
    // Bitwise-equal rate: the regime is unchanged, so banking now or later
    // integrates to the same progress. Leaving the anchor alone is what
    // makes the full recompute (which evaluates every job) and the scoped
    // one (which only evaluates the touched set) write identical state.
    return;
  }
  // Bank at the old rate before entering the new regime.
  job.progress_iterations = job.progress_at(now);
  job.last_update = now;
  job.rate = rate;
  refresh_finish(job, now);
}

void ClusterState::recompute_all(double now) {
  for (auto& [id, job] : jobs_) update_job_rate(job, now);
}

void ClusterState::refresh_finish(RunningJob& job, double now) {
  job.finish_time =
      job.rate > 0.0
          ? now + std::max(0.0, job.remaining_iterations()) / job.rate
          : std::numeric_limits<double>::infinity();
  heap_update(job);
}

void ClusterState::heap_place(size_t i, const FinishEntry& entry) {
  finish_heap_[i] = entry;
  jobs_.at(entry.id).heap_pos = static_cast<int>(i);
}

void ClusterState::heap_sift_up(size_t i) {
  const FinishEntry entry = finish_heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!finish_less(entry, finish_heap_[parent])) break;
    heap_place(i, finish_heap_[parent]);
    i = parent;
  }
  heap_place(i, entry);
}

void ClusterState::heap_sift_down(size_t i) {
  const size_t n = finish_heap_.size();
  const FinishEntry entry = finish_heap_[i];
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        finish_less(finish_heap_[child + 1], finish_heap_[child])) {
      ++child;
    }
    if (!finish_less(finish_heap_[child], entry)) break;
    heap_place(i, finish_heap_[child]);
    i = child;
  }
  heap_place(i, entry);
}

void ClusterState::heap_update(RunningJob& job) {
  const bool wants_slot = job.rate > 0.0 && std::isfinite(job.finish_time);
  if (!wants_slot) {
    heap_erase(job);
    return;
  }
  if (job.heap_pos < 0) {
    finish_heap_.push_back({job.finish_time, job.request.id});
    job.heap_pos = static_cast<int>(finish_heap_.size()) - 1;
    heap_sift_up(static_cast<size_t>(job.heap_pos));
    return;
  }
  const size_t i = static_cast<size_t>(job.heap_pos);
  finish_heap_[i].time = job.finish_time;
  heap_sift_up(i);
  heap_sift_down(static_cast<size_t>(job.heap_pos));
}

void ClusterState::heap_erase(RunningJob& job) {
  if (job.heap_pos < 0) return;
  const size_t i = static_cast<size_t>(job.heap_pos);
  job.heap_pos = -1;
  const FinishEntry last = finish_heap_.back();
  finish_heap_.pop_back();
  if (i < finish_heap_.size()) {
    heap_place(i, last);
    heap_sift_up(i);
    heap_sift_down(
        static_cast<size_t>(jobs_.at(last.id).heap_pos));
  }
}

std::optional<std::pair<int, double>> ClusterState::next_completion(
    double /*now*/) const {
  if (finish_heap_.empty()) return std::nullopt;
  const FinishEntry& top = finish_heap_.front();
  return std::make_pair(top.id, top.time);
}

std::vector<int> ClusterState::due_completions(double now) const {
  std::vector<int> due;
  if (finish_heap_.empty() || finish_heap_.front().time > now) return due;
  // BFS over the heap array, pruning subtrees whose root is beyond `now`
  // (children can only finish later); O(due) heap slots visited.
  std::vector<size_t> stack{0};
  while (!stack.empty()) {
    const size_t i = stack.back();
    stack.pop_back();
    if (i >= finish_heap_.size() || finish_heap_[i].time > now) continue;
    due.push_back(finish_heap_[i].id);
    stack.push_back(2 * i + 1);
    stack.push_back(2 * i + 2);
  }
  std::sort(due.begin(), due.end());
  return due;
}

}  // namespace gts::cluster
