#include "cluster/state.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "check/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perf/profile.hpp"

namespace gts::cluster {

namespace {
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{0};
  return ++counter;
}
}  // namespace

ClusterState::ClusterState(const topo::TopologyGraph& topology,
                           const perf::DlWorkloadModel& model)
    : topology_(&topology),
      model_(&model),
      owner_(static_cast<size_t>(topology.gpu_count()), -1),
      flows_(static_cast<size_t>(topology.link_count()), 0),
      jobs_by_machine_(static_cast<size_t>(topology.machine_count())),
      host_bw_used_(static_cast<size_t>(topology.machine_count()), 0.0),
      instance_id_(next_instance_id()) {}

void ClusterState::set_execution_noise(double sigma, std::uint64_t seed) {
  noise_sigma_ = sigma;
  noise_rng_.reseed(seed);
}

void ClusterState::index_job(const RunningJob& job, bool insert) {
  const std::vector<int> machines = machines_of(job.gpus);
  // A multi-machine job's bandwidth demand is split evenly across its
  // machines; single-node jobs (the common case) charge one machine.
  const double demand = job.request.profile.host_bw_demand_gbps /
                        static_cast<double>(machines.size());
  for (const int machine : machines) {
    std::vector<int>& list = jobs_by_machine_[static_cast<size_t>(machine)];
    if (insert) {
      list.insert(std::upper_bound(list.begin(), list.end(), job.request.id),
                  job.request.id);
      host_bw_used_[static_cast<size_t>(machine)] += demand;
    } else {
      list.erase(std::remove(list.begin(), list.end(), job.request.id),
                 list.end());
      host_bw_used_[static_cast<size_t>(machine)] =
          std::max(0.0, host_bw_used_[static_cast<size_t>(machine)] - demand);
    }
  }
}

std::vector<int> ClusterState::free_gpus() const {
  std::vector<int> gpus;
  for (int g = 0; g < topology_->gpu_count(); ++g) {
    if (gpu_free(g)) gpus.push_back(g);
  }
  return gpus;
}

std::vector<int> ClusterState::free_gpus_of_machine(int machine) const {
  const std::vector<int>& machine_gpus = topology_->gpus_of_machine(machine);
  std::vector<int> gpus;
  gpus.reserve(machine_gpus.size());
  for (const int g : machine_gpus) {
    if (gpu_free(g)) gpus.push_back(g);
  }
  return gpus;
}

int ClusterState::free_gpu_count() const {
  return static_cast<int>(
      std::count(owner_.begin(), owner_.end(), -1));
}

void ClusterState::add_flows(const RunningJob& job, int delta) {
  for (const topo::LinkId link : job.flow_links) {
    flows_[static_cast<size_t>(link)] += delta;
    GTS_DCHECK_GE(flows_[static_cast<size_t>(link)], 0);
  }
}

void ClusterState::place(const jobgraph::JobRequest& request,
                         std::vector<int> gpus, double now,
                         double placement_utility) {
  GTS_CHECK_EQ(static_cast<int>(gpus.size()), request.num_gpus);
  bank_progress(now);

  RunningJob job;
  job.request = request;
  job.gpus = std::move(gpus);
  job.start_time = now;
  job.last_update = now;
  job.placement_utility = placement_utility;
  if (noise_sigma_ > 0.0) {
    job.noise_factor = std::exp(noise_rng_.normal(0.0, noise_sigma_));
  }
  job.p2p = true;
  for (const jobgraph::CommEdge& edge : job.request.comm_graph.edges()) {
    const topo::GpuPath& path =
        topology_->gpu_path(job.gpus[static_cast<size_t>(edge.a)],
                            job.gpus[static_cast<size_t>(edge.b)]);
    if (!path.peer_to_peer) job.p2p = false;
    job.flow_links.insert(job.flow_links.end(), path.links.begin(),
                          path.links.end());
  }
  job.solo_iteration_s = solo_iteration_time(job.request);
  for (const int gpu : job.gpus) {
    GTS_CHECK(gpu_free(gpu), "job ", request.id, " placed on busy GPU ",
              gpu, " owned by job ", gpu_owner(gpu));
    owner_[static_cast<size_t>(gpu)] = request.id;
  }
  add_flows(job, +1);
  index_job(job, /*insert=*/true);
  const std::vector<int> touched = machines_of(job.gpus);
  if (touched.size() > 1) any_multi_machine_job_ = true;
  const auto inserted = jobs_.emplace(request.id, std::move(job));
  ++version_;
  recompute_rates(now, &touched);
  if (allocation_listener_) {
    allocation_listener_(inserted.first->second.gpus, /*allocated=*/true);
  }
  GTS_METRIC_COUNT("cluster.placements", 1);
  GTS_TRACE_INSTANT(obs::kCluster, "cluster.place", "job", request.id);
  publish_occupancy_metrics();
}

void ClusterState::restore_job(const jobgraph::JobRequest& request,
                               std::vector<int> gpus, double start_time,
                               double progress_iterations,
                               double placement_utility, double noise_factor,
                               double now) {
  GTS_CHECK(start_time <= now + 1e-9, "restored job ", request.id,
            " starts in the future: start=", start_time, " now=", now);
  GTS_CHECK(progress_iterations >= 0.0 &&
                progress_iterations <=
                    static_cast<double>(request.iterations) + 1e-6,
            "restored job ", request.id,
            " progress out of bounds: ", progress_iterations);
  place(request, std::move(gpus), now, placement_utility);
  RunningJob& job = jobs_.at(request.id);
  job.start_time = start_time;
  job.progress_iterations = progress_iterations;
  job.noise_factor = noise_factor;
  job.last_update = now;
  ++version_;
  // The noise factor scales the job's rate; recompute with it in effect.
  recompute_rates(now);
}

void ClusterState::remove(int job_id, double now) {
  const auto it = jobs_.find(job_id);
  GTS_CHECK(it != jobs_.end(), "removing unknown job ", job_id);
  bank_progress(now);
  add_flows(it->second, -1);
  index_job(it->second, /*insert=*/false);
  const std::vector<int> touched = machines_of(it->second.gpus);
  for (const int gpu : it->second.gpus) {
    owner_[static_cast<size_t>(gpu)] = -1;
  }
  const std::vector<int> freed = std::move(it->second.gpus);
  jobs_.erase(it);
  ++version_;
  recompute_rates(now, &touched);
  if (allocation_listener_) {
    allocation_listener_(freed, /*allocated=*/false);
  }
  GTS_METRIC_COUNT("cluster.releases", 1);
  GTS_TRACE_INSTANT(obs::kCluster, "cluster.release", "job", job_id);
  publish_occupancy_metrics();
}

void ClusterState::publish_occupancy_metrics() const {
  if (!obs::metrics_enabled() && !obs::tracing_enabled(obs::kCluster)) {
    return;
  }
  const int free = free_gpu_count();
  // Fragmentation: fraction of machines left partially occupied — free
  // GPUs stranded next to co-runners, the condition Eq. 5 penalizes.
  int fragmented = 0;
  const int machine_count = topology_->machine_count();
  for (int machine = 0; machine < machine_count; ++machine) {
    const std::vector<int>& gpus = topology_->gpus_of_machine(machine);
    int machine_free = 0;
    for (const int gpu : gpus) {
      if (gpu_free(gpu)) ++machine_free;
    }
    if (machine_free > 0 && machine_free < static_cast<int>(gpus.size())) {
      ++fragmented;
    }
  }
  const double fragmentation =
      machine_count > 0
          ? static_cast<double>(fragmented) / static_cast<double>(machine_count)
          : 0.0;
  GTS_METRIC_GAUGE_SET("cluster.free_gpus", static_cast<double>(free));
  GTS_METRIC_GAUGE_SET("cluster.fragmentation", fragmentation);
  GTS_TRACE_COUNTER(obs::kCluster, "cluster.free_gpus",
                    static_cast<double>(free));
  GTS_TRACE_COUNTER(obs::kCluster, "cluster.fragmentation", fragmentation);
}

const RunningJob* ClusterState::find(int job_id) const {
  const auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void ClusterState::bank_progress(double now) {
  for (auto& [id, job] : jobs_) {
    const double elapsed = now - job.last_update;
    if (elapsed > 0.0) {
      job.progress_iterations += job.rate * elapsed;
      job.progress_iterations =
          std::min(job.progress_iterations,
                   static_cast<double>(job.request.iterations));
    }
    job.last_update = now;
  }
}

perf::LinkFlows ClusterState::flows_excluding(int job_id) const {
  perf::LinkFlows flows = flows_;
  const RunningJob* job = find(job_id);
  if (job != nullptr) {
    for (const topo::LinkId link : job->flow_links) {
      --flows[static_cast<size_t>(link)];
    }
  }
  return flows;
}

std::vector<int> ClusterState::machines_of(std::span<const int> gpus) const {
  // Sorted + deduped via a small vector; the sets here are tiny (one
  // machine per task at most), so sort beats a node-based set.
  std::vector<int> machines;
  machines.reserve(gpus.size());
  for (const int gpu : gpus) {
    machines.push_back(topology_->machine_of_gpu(gpu));
  }
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()),
                 machines.end());
  return machines;
}

std::vector<perf::CoRunner> ClusterState::co_runners(
    std::span<const int> gpus, int exclude_job_id) const {
  // (machine, socket) pairs the placement touches, sorted for binary
  // search; machine list derived from it (same first components).
  std::vector<std::pair<int, int>> sockets;
  sockets.reserve(gpus.size());
  for (const int gpu : gpus) {
    sockets.emplace_back(topology_->machine_of_gpu(gpu),
                         topology_->socket_of_gpu(gpu));
  }
  std::sort(sockets.begin(), sockets.end());
  sockets.erase(std::unique(sockets.begin(), sockets.end()), sockets.end());
  // Candidate co-runners come from the per-machine index so the scan cost
  // is proportional to the touched machines, not the whole cluster.
  std::vector<int> candidate_ids;
  int last_machine = -1;
  for (const auto& [machine, socket] : sockets) {
    if (machine == last_machine) continue;  // sockets sorted by machine
    last_machine = machine;
    const std::vector<int>& ids = jobs_by_machine_[static_cast<size_t>(machine)];
    candidate_ids.insert(candidate_ids.end(), ids.begin(), ids.end());
  }
  std::sort(candidate_ids.begin(), candidate_ids.end());
  candidate_ids.erase(
      std::unique(candidate_ids.begin(), candidate_ids.end()),
      candidate_ids.end());
  std::vector<perf::CoRunner> out;
  out.reserve(candidate_ids.size());
  for (const int id : candidate_ids) {
    if (id == exclude_job_id) continue;
    const RunningJob& job = jobs_.at(id);
    bool shares_socket = false;
    for (const int gpu : job.gpus) {
      if (std::binary_search(
              sockets.begin(), sockets.end(),
              std::pair<int, int>{topology_->machine_of_gpu(gpu),
                                  topology_->socket_of_gpu(gpu)})) {
        shares_socket = true;
        break;
      }
    }
    out.push_back({job.request.profile.batch, shares_socket});
  }
  return out;
}

double ClusterState::fragmentation() const {
  // Eq. 5: average over sockets of freeGPUs/totalGPUs.
  double total = 0.0;
  int sockets = 0;
  for (int machine = 0; machine < topology_->machine_count(); ++machine) {
    const int socket_count = topology_->sockets_of_machine(machine);
    for (int socket = 0; socket < socket_count; ++socket) {
      const std::vector<int>& gpus = topology_->gpus_of_socket(machine, socket);
      if (gpus.empty()) continue;
      const int free = static_cast<int>(
          std::count_if(gpus.begin(), gpus.end(),
                        [&](int g) { return gpu_free(g); }));
      total += static_cast<double>(free) / static_cast<double>(gpus.size());
      ++sockets;
    }
  }
  return sockets == 0 ? 0.0 : total / sockets;
}

double ClusterState::fragmentation_of_machine(int machine) const {
  double total = 0.0;
  int sockets = 0;
  const int socket_count = topology_->sockets_of_machine(machine);
  for (int socket = 0; socket < socket_count; ++socket) {
    const std::vector<int>& gpus = topology_->gpus_of_socket(machine, socket);
    if (gpus.empty()) continue;
    const int free = static_cast<int>(std::count_if(
        gpus.begin(), gpus.end(), [&](int g) { return gpu_free(g); }));
    total += static_cast<double>(free) / static_cast<double>(gpus.size());
    ++sockets;
  }
  return sockets == 0 ? 0.0 : total / sockets;
}

double ClusterState::fragmentation_after(std::span<const int> gpus) const {
  // Temporarily mark, compute, restore — const_cast-free via copy of the
  // small owner vector.
  double total = 0.0;
  int sockets = 0;
  for (int machine = 0; machine < topology_->machine_count(); ++machine) {
    const int socket_count = topology_->sockets_of_machine(machine);
    for (int socket = 0; socket < socket_count; ++socket) {
      const std::vector<int>& socket_gpus =
          topology_->gpus_of_socket(machine, socket);
      if (socket_gpus.empty()) continue;
      int free = 0;
      for (const int g : socket_gpus) {
        const bool newly_taken =
            std::find(gpus.begin(), gpus.end(), g) != gpus.end();
        if (gpu_free(g) && !newly_taken) ++free;
      }
      total +=
          static_cast<double>(free) / static_cast<double>(socket_gpus.size());
      ++sockets;
    }
  }
  return sockets == 0 ? 0.0 : total / sockets;
}

double ClusterState::solo_iteration_time(
    const jobgraph::JobRequest& request) const {
  if (request.profile.solo_time_pack > 0.0 && request.iterations > 0) {
    return request.profile.solo_time_pack /
           static_cast<double>(request.iterations);
  }
  const std::vector<int> pack =
      perf::pack_placement(*topology_, request.num_gpus);
  if (static_cast<int>(pack.size()) != request.num_gpus) return 0.0;
  return model_->iteration(request, pack, *topology_).total_s;
}

perf::IterationBreakdown ClusterState::predict_iteration(
    const jobgraph::JobRequest& request, std::span<const int> gpus) const {
  const std::vector<perf::CoRunner> co = co_runners(gpus, request.id);
  return model_->iteration(request, gpus, *topology_, &flows_, co);
}

perf::IterationBreakdown ClusterState::current_iteration(
    const RunningJob& job) const {
  const perf::LinkFlows foreign = flows_excluding(job.request.id);
  const std::vector<perf::CoRunner> co = co_runners(job.gpus, job.request.id);
  return model_->iteration(job.request, job.gpus, *topology_, &foreign, co);
}

void ClusterState::recompute_rates(double now,
                                   const std::vector<int>* touched_machines) {
  const auto update = [&](RunningJob& job) {
    GTS_DCHECK(job.last_update == now || job.rate == 0.0,
               "rate recompute without banked progress for job ",
               job.request.id);
    (void)now;
    const perf::IterationBreakdown step = current_iteration(job);
    const double iter = step.total_s * job.noise_factor;
    job.rate = iter > 0.0 ? 1.0 / iter : 0.0;
  };
  if (touched_machines != nullptr && !any_multi_machine_job_) {
    std::vector<int> ids;
    for (const int machine : *touched_machines) {
      const std::vector<int>& list =
          jobs_by_machine_[static_cast<size_t>(machine)];
      ids.insert(ids.end(), list.begin(), list.end());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (const int id : ids) update(jobs_.at(id));
    return;
  }
  for (auto& [id, job] : jobs_) update(job);
}

std::optional<std::pair<int, double>> ClusterState::next_completion(
    double now) const {
  std::optional<std::pair<int, double>> best;
  for (const auto& [id, job] : jobs_) {
    if (job.rate <= 0.0) continue;
    const double pending = now - job.last_update;
    const double done = job.progress_iterations + job.rate * pending;
    const double remaining =
        static_cast<double>(job.request.iterations) - done;
    const double finish = now + std::max(0.0, remaining) / job.rate;
    if (!best || finish < best->second) best = {id, finish};
  }
  return best;
}

}  // namespace gts::cluster
