// The paper's configuration workflow (Appendix A.3):
//
//   * `etc/configs/sys-config.ini` selects simulation vs prototype mode,
//     the machine shape / cluster size, and the workload source (a JSON
//     manifest or the Section 5.3 generator with its arrival rate and
//     distribution parameters);
//   * one `etc/configs/<algo>-config.ini` per scheduling algorithm ("if
//     many are provided, the system will execute multiple runs configured
//     with different schedule algorithms"), carrying the policy and its
//     utility weights;
//   * "to execute the system is only required to run the main file" — the
//     `gts_system` example binary plays that role.
#pragma once

#include <string>
#include <vector>

#include "config/ini.hpp"
#include "obs/obs.hpp"
#include "sched/scheduler.hpp"
#include "topo/builders.hpp"
#include "trace/generator.hpp"
#include "util/expected.hpp"

namespace gts::config {

/// [service] section of sys-config.ini: the long-running scheduler
/// daemon (src/svc/, DESIGN.md section 14). Every field has a CLI
/// override on gts_schedd.
struct ServiceConfig {
  /// Placement policy the admission queue feeds.
  sched::Policy policy = sched::Policy::kTopoAwareP;
  /// Admission-queue bound; submits beyond it get a backpressure error
  /// with a retry_after_ms hint.
  int max_queue = 256;
  double retry_after_ms = 50.0;
  /// Unix-domain socket path the daemon listens on ("" = TCP only).
  std::string socket;
  /// TCP bind "host:port" ("" = Unix socket only).
  std::string listen;
  /// Periodic crash-recovery snapshot target ("" = disabled).
  std::string snapshot_path;
  double snapshot_every_s = 0.0;
  /// Requests dispatched per reactor round (Server batching): complete
  /// lines are framed first, parsed off the decision thread, then
  /// dispatched in arrival order as one batch. 1 = the legacy
  /// one-request-at-a-time path (the oracle).
  int batch_max = 1;
  /// Protocol-parse workers for batches (0 = parse inline on the reactor
  /// thread; only meaningful with batch_max > 1).
  int parse_threads = 0;
  /// Parallel candidate scoring inside the placement policy
  /// (sched::DriverOptions::parallel_scoring); decisions stay
  /// byte-identical to the serial path.
  bool parallel_scoring = false;
  /// Scoring workers when parallel_scoring is on; 0 = all cores.
  int scoring_threads = 0;
  /// Prometheus scrape listener port (HTTP GET /metrics, DESIGN.md
  /// section 18.2); 0 = ephemeral, -1 = disabled.
  int prom_port = -1;
  std::string prom_host = "127.0.0.1";
  /// Cells the cluster is partitioned into (shard::ShardedDriver,
  /// DESIGN.md section 19); 1 = the classic single-driver daemon.
  int shard_count = 1;
  /// Worker threads advancing cells concurrently; <= 1 advances serially.
  /// Any value produces byte-identical decisions.
  int shard_threads = 1;
};

/// Parsed sys-config.ini.
struct SystemConfig {
  bool simulation = true;
  /// "minsky" | "pcie" | "dgx1".
  std::string machine_shape = "minsky";
  int machines = 1;
  /// Path to a JSON workload manifest; empty means "use the generator".
  std::string workload_manifest;
  trace::GeneratorOptions generator;
  /// Lognormal execution-noise sigma (0 disables).
  double noise_sigma = 0.0;
  /// Run the check-subsystem self-audit after every simulated event
  /// (sched::DriverOptions::self_audit).
  bool self_audit = false;
  /// [obs] observability sinks (DESIGN.md section 13): trace_out,
  /// metrics_out, explain_out, categories. Empty paths leave every pillar
  /// off; the caller applies this with obs::configure().
  obs::ObsConfig obs;
  /// [service] scheduler-daemon settings (DESIGN.md section 14).
  ServiceConfig service;

  static util::Expected<SystemConfig> from_ini(const Ini& ini);
  Ini to_ini() const;
};

/// Parsed <algo>-config.ini.
struct AlgoConfig {
  std::string name;  // file stem, e.g. "topo-aware-p"
  sched::Policy policy = sched::Policy::kTopoAwareP;
  sched::UtilityWeights weights{};

  static util::Expected<AlgoConfig> from_ini(const std::string& name,
                                             const Ini& ini);
  Ini to_ini() const;
};

/// Resolves the machine shape string.
util::Expected<topo::builders::MachineShape> parse_machine_shape(
    const std::string& name);

/// Resolves a scheduler policy name ("fcfs", "bf"/"best-fit",
/// "topo-aware", "topo-aware-p"); shared by the algo configs, the
/// [service] section, and gts_schedd --policy.
util::Expected<sched::Policy> parse_policy(const std::string& name);

/// Builds the topology a SystemConfig describes.
util::Expected<topo::TopologyGraph> build_topology(const SystemConfig& config);

/// Loads sys-config.ini plus every *-config.ini algorithm file given.
struct LoadedConfiguration {
  SystemConfig system;
  std::vector<AlgoConfig> algorithms;
};
util::Expected<LoadedConfiguration> load_configuration(
    const std::string& sys_config_path,
    const std::vector<std::string>& algo_config_paths);

/// Writes the sample configuration files the paper ships ("samples of all
/// configuration files and workload manifest are provided in the source
/// code") into `directory`. Returns the paths written.
util::Expected<std::vector<std::string>> write_sample_configs(
    const std::string& directory);

}  // namespace gts::config
