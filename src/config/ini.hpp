// Minimal INI parser for the paper's configuration files (Appendix A.3):
// the system reads `etc/configs/sys-config.ini` plus one
// `etc/configs/<algo-name>-config.ini` per scheduling algorithm.
//
// Supported: [sections], key = value pairs, '#' and ';' comments, blank
// lines. Keys outside any section land in the "" section. Values keep
// inner whitespace but are trimmed at the ends.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace gts::config {

class Ini {
 public:
  /// Parses INI text; duplicate keys keep the last value.
  static util::Expected<Ini> parse(std::string_view text);
  static util::Expected<Ini> parse_file(const std::string& path);

  bool has(const std::string& section, const std::string& key) const;
  /// Raw string lookup; nullopt when absent.
  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;
  std::string get_or(const std::string& section, const std::string& key,
                     std::string fallback) const;
  long long get_int(const std::string& section, const std::string& key,
                    long long fallback) const;
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  /// Accepts true/false, yes/no, on/off, 1/0 (case-insensitive).
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;

  /// Sections present, in sorted order.
  std::vector<std::string> sections() const;

  /// Serializes back to INI text (round-trips through parse()).
  std::string write() const;

  void set(const std::string& section, const std::string& key,
           std::string value) {
    values_[section][key] = std::move(value);
  }

 private:
  // section -> key -> value
  std::map<std::string, std::map<std::string, std::string>> values_;
};

}  // namespace gts::config
