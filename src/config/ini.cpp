#include "config/ini.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace gts::config {

util::Expected<Ini> Ini::parse(std::string_view text) {
  Ini ini;
  std::string section;
  int line_number = 0;
  for (const std::string& raw_line : util::split(text, '\n')) {
    ++line_number;
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 2) {
        return util::Error{
            util::fmt("ini: line {}: malformed section header", line_number)};
      }
      section = std::string(util::trim(line.substr(1, line.size() - 2)));
      // Ensure the section exists even if empty.
      ini.values_[section];
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return util::Error{
          util::fmt("ini: line {}: expected 'key = value'", line_number)};
    }
    const std::string key(util::trim(line.substr(0, eq)));
    const std::string value(util::trim(line.substr(eq + 1)));
    if (key.empty()) {
      return util::Error{util::fmt("ini: line {}: empty key", line_number)};
    }
    ini.values_[section][key] = value;
  }
  return ini;
}

util::Expected<Ini> Ini::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Error{util::fmt("cannot open {}", path)};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto result = parse(buffer.str());
  if (!result) return result.error().with_context(path);
  return result;
}

bool Ini::has(const std::string& section, const std::string& key) const {
  const auto s = values_.find(section);
  return s != values_.end() && s->second.count(key) > 0;
}

std::optional<std::string> Ini::get(const std::string& section,
                                    const std::string& key) const {
  const auto s = values_.find(section);
  if (s == values_.end()) return std::nullopt;
  const auto k = s->second.find(key);
  if (k == s->second.end()) return std::nullopt;
  return k->second;
}

std::string Ini::get_or(const std::string& section, const std::string& key,
                        std::string fallback) const {
  return get(section, key).value_or(std::move(fallback));
}

long long Ini::get_int(const std::string& section, const std::string& key,
                       long long fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  return util::parse_int(*value).value_or(fallback);
}

double Ini::get_double(const std::string& section, const std::string& key,
                       double fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  return util::parse_double(*value).value_or(fallback);
}

bool Ini::get_bool(const std::string& section, const std::string& key,
                   bool fallback) const {
  const auto value = get(section, key);
  if (!value) return fallback;
  const std::string lower = util::to_lower(util::trim(*value));
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
    return false;
  }
  return fallback;
}

std::vector<std::string> Ini::sections() const {
  std::vector<std::string> names;
  for (const auto& [name, keys] : values_) names.push_back(name);
  return names;
}

std::string Ini::write() const {
  std::ostringstream os;
  for (const auto& [section, keys] : values_) {
    if (!section.empty()) os << '[' << section << "]\n";
    for (const auto& [key, value] : keys) {
      os << key << " = " << value << '\n';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace gts::config
